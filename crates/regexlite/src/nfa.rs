//! Compilation of ASTs into NFA programs (Thompson construction over a
//! bytecode of the kind popularized by Pike/Janson VMs).

use std::collections::HashMap;

use crate::ast::Ast;
use crate::classes::CharClass;

/// One VM instruction.
#[derive(Debug, Clone)]
pub enum Inst {
    /// Consume one character matching the class.
    Char(CharClass),
    /// Fork execution: try `prefer` first, then `alt` (thread priority
    /// encodes greediness).
    Split { prefer: usize, alt: usize },
    /// Unconditional jump.
    Jmp(usize),
    /// Record the current input position in capture slot `slot`.
    Save(usize),
    /// Succeed.
    Match,
    /// Zero-width assertion: start of input.
    AssertStart,
    /// Zero-width assertion: end of input.
    AssertEnd,
}

/// A compiled NFA program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Instruction sequence; entry point is index 0.
    pub insts: Vec<Inst>,
    /// Number of capture groups including group 0; slots = 2 * n_groups.
    pub n_groups: usize,
    /// Map from group name to group index.
    pub group_names: HashMap<String, usize>,
}

impl Program {
    /// Number of capture slots carried by each VM thread.
    pub fn n_slots(&self) -> usize {
        2 * self.n_groups
    }
}

/// Compile `ast`. When `fold_case` is set, every character class is widened
/// with [`CharClass::ascii_fold`].
pub fn compile(ast: &Ast, fold_case: bool) -> Program {
    let n_groups = 1 + ast.group_count();
    let mut c = Compiler {
        insts: Vec::new(),
        group_names: HashMap::new(),
        fold_case,
    };
    // Group 0 wraps the whole pattern: save slots 0 and 1.
    c.push(Inst::Save(0));
    c.emit(ast);
    c.push(Inst::Save(1));
    c.push(Inst::Match);
    Program {
        insts: c.insts,
        n_groups,
        group_names: c.group_names,
    }
}

struct Compiler {
    insts: Vec<Inst>,
    group_names: HashMap<String, usize>,
    fold_case: bool,
}

impl Compiler {
    fn push(&mut self, i: Inst) -> usize {
        self.insts.push(i);
        self.insts.len() - 1
    }

    fn here(&self) -> usize {
        self.insts.len()
    }

    fn emit(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Class(c) => {
                let c = if self.fold_case {
                    c.clone().ascii_fold()
                } else {
                    c.clone()
                };
                self.push(Inst::Char(c));
            }
            Ast::Concat(parts) => {
                for p in parts {
                    self.emit(p);
                }
            }
            Ast::Alternate(branches) => {
                // Chain of splits; each branch jumps to the common end.
                let mut jmp_fixups = Vec::new();
                for (i, b) in branches.iter().enumerate() {
                    if i + 1 < branches.len() {
                        let split = self.push(Inst::Split { prefer: 0, alt: 0 });
                        let branch_start = self.here();
                        self.emit(b);
                        jmp_fixups.push(self.push(Inst::Jmp(0)));
                        let next_branch = self.here();
                        self.insts[split] = Inst::Split {
                            prefer: branch_start,
                            alt: next_branch,
                        };
                    } else {
                        self.emit(b);
                    }
                }
                let end = self.here();
                for j in jmp_fixups {
                    self.insts[j] = Inst::Jmp(end);
                }
            }
            Ast::Repeat {
                inner,
                min,
                max,
                greedy,
            } => self.emit_repeat(inner, *min, *max, *greedy),
            Ast::Group { index, name, inner } => {
                if let Some(n) = name {
                    self.group_names.insert(n.clone(), *index);
                }
                self.push(Inst::Save(2 * index));
                self.emit(inner);
                self.push(Inst::Save(2 * index + 1));
            }
            Ast::NonCapturing(inner) => self.emit(inner),
            Ast::AssertStart => {
                self.push(Inst::AssertStart);
            }
            Ast::AssertEnd => {
                self.push(Inst::AssertEnd);
            }
        }
    }

    /// `e{min,max}` desugars into `min` mandatory copies followed by either
    /// a star (max = None) or `max - min` optional copies. Reusing the same
    /// save slots across copies yields the standard "last iteration wins"
    /// capture semantics.
    fn emit_repeat(&mut self, inner: &Ast, min: u32, max: Option<u32>, greedy: bool) {
        for _ in 0..min {
            self.emit(inner);
        }
        match max {
            None => {
                // star: L: split(body, end); body; jmp L; end:
                let l = self.push(Inst::Split { prefer: 0, alt: 0 });
                let body = self.here();
                self.emit(inner);
                self.push(Inst::Jmp(l));
                let end = self.here();
                self.insts[l] = if greedy {
                    Inst::Split {
                        prefer: body,
                        alt: end,
                    }
                } else {
                    Inst::Split {
                        prefer: end,
                        alt: body,
                    }
                };
            }
            Some(mx) => {
                // (mx - min) nested optionals; each may bail to the end.
                let mut splits = Vec::new();
                for _ in 0..(mx - min) {
                    let s = self.push(Inst::Split { prefer: 0, alt: 0 });
                    let body = self.here();
                    splits.push((s, body));
                    self.emit(inner);
                }
                let end = self.here();
                for (s, body) in splits {
                    self.insts[s] = if greedy {
                        Inst::Split {
                            prefer: body,
                            alt: end,
                        }
                    } else {
                        Inst::Split {
                            prefer: end,
                            alt: body,
                        }
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn prog(p: &str) -> Program {
        compile(&parse(p).unwrap(), false)
    }

    #[test]
    fn program_always_ends_with_match() {
        let p = prog("a(b|c)*d");
        assert!(matches!(p.insts.last(), Some(Inst::Match)));
    }

    #[test]
    fn group_zero_is_counted() {
        assert_eq!(prog("abc").n_groups, 1);
        assert_eq!(prog("(a)(b)").n_groups, 3);
    }

    #[test]
    fn named_groups_recorded() {
        let p = prog("(?P<x>a)");
        assert_eq!(p.group_names.get("x"), Some(&1));
    }

    #[test]
    fn counted_repetition_expands_linear_in_count() {
        let small = prog("a{2}").insts.len();
        let large = prog("a{40}").insts.len();
        assert!(large > small);
        assert!(large < 200, "expansion should stay modest: {large}");
    }
}
