//! # lixto-regexlite
//!
//! A small regular-expression engine written from scratch for `lixto-rs`.
//!
//! Elog (Section 3.3 of the PODS 2004 Lixto paper) leans on regular
//! expressions in three places: the `subtext` extraction predicate ("a
//! regular expression specifying which substrings of the element texts to
//! be extracted"), *syntactic concept* predicates such as `isDate` which
//! "are created as regular expressions", and element-path expressions where
//! attribute values are matched against patterns possibly binding regex
//! variables (`\var[Y]`).
//!
//! The sanctioned offline dependency set does not include a regex crate, so
//! this crate implements the classical pipeline
//!
//! ```text
//! pattern --parse--> AST --compile--> NFA program --run--> Pike VM
//! ```
//!
//! giving linear-time matching in the product of input length and program
//! size, with capture groups (the Pike VM carries save-slots per thread).
//! Supported syntax:
//!
//! * literals, `.` (any char), escapes `\d \D \w \W \s \S \n \t \r` and
//!   escaped metacharacters;
//! * classes `[a-z0-9_]`, negated classes `[^…]`, ranges and escapes inside
//!   classes;
//! * alternation `|`, grouping `(...)`, non-capturing `(?:...)`, named
//!   groups `(?P<name>...)`;
//! * quantifiers `* + ?` and bounded repetition `{m} {m,} {m,n}`, each with
//!   a non-greedy variant (`*?` etc.);
//! * anchors `^` and `$` (whole-input, not multi-line).
//!
//! # Example
//!
//! ```
//! use lixto_regexlite::Regex;
//! let re = Regex::new(r"(\d+)\s*bids?").unwrap();
//! let caps = re.captures("   17 bids so far").unwrap();
//! assert_eq!(caps.get(1).unwrap().text, "17");
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod classes;
pub mod nfa;
pub mod parser;
pub mod pike;

use std::fmt;

pub use ast::Ast;
pub use classes::CharClass;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: nfa::Program,
}

/// A single capture: the matched span and its text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match<'t> {
    /// Byte offset of the match start in the haystack.
    pub start: usize,
    /// Byte offset one past the match end.
    pub end: usize,
    /// The matched text.
    pub text: &'t str,
}

/// The result of a successful capturing match.
#[derive(Debug, Clone)]
pub struct Captures<'t> {
    groups: Vec<Option<Match<'t>>>,
    names: std::collections::HashMap<String, usize>,
}

impl<'t> Captures<'t> {
    /// Group 0 is the whole match; groups 1.. are parenthesized groups in
    /// order of their opening parenthesis.
    pub fn get(&self, i: usize) -> Option<&Match<'t>> {
        self.groups.get(i).and_then(|g| g.as_ref())
    }

    /// Look up a named group `(?P<name>…)`.
    pub fn name(&self, name: &str) -> Option<&Match<'t>> {
        self.names.get(name).and_then(|&i| self.get(i))
    }

    /// Number of groups including group 0.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if there are no groups at all (never the case for a successful
    /// match, which always has group 0).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// Error produced when a pattern fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Char position in the pattern.
    pub at: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at {}: {}", self.at, self.message)
    }
}

impl std::error::Error for Error {}

impl Regex {
    /// Compile `pattern` with default options (case-sensitive).
    pub fn new(pattern: &str) -> Result<Regex, Error> {
        Self::with_options(pattern, false)
    }

    /// Compile `pattern`; when `case_insensitive`, ASCII letters match both
    /// cases (sufficient for HTML attribute/concept matching).
    pub fn with_options(pattern: &str, case_insensitive: bool) -> Result<Regex, Error> {
        let ast = parser::parse(pattern)?;
        let program = nfa::compile(&ast, case_insensitive);
        Ok(Regex {
            pattern: pattern.to_string(),
            program,
        })
    }

    /// The source pattern.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// Number of capture groups, including the implicit group 0.
    pub fn group_count(&self) -> usize {
        self.program.n_groups
    }

    /// Can this pattern only ever match the empty string?
    ///
    /// True when the compiled program contains no character test: every
    /// match then consumes zero input. Callers that discard empty matches
    /// (e.g. text tokenizers) can skip scanning entirely — iterating empty
    /// matches costs a VM run per char position for nothing.
    pub fn matches_only_empty(&self) -> bool {
        !self
            .program
            .insts
            .iter()
            .any(|i| matches!(i, nfa::Inst::Char(_)))
    }

    /// Does the pattern match anywhere in `haystack`?
    pub fn is_match(&self, haystack: &str) -> bool {
        pike::run(&self.program, haystack, false).is_some()
    }

    /// Does the pattern match the *entire* `haystack`?
    pub fn is_full_match(&self, haystack: &str) -> bool {
        match pike::run(&self.program, haystack, true) {
            Some(slots) => slots[0] == Some(0) && slots[1] == Some(haystack.len()),
            None => false,
        }
    }

    /// Leftmost match, if any.
    pub fn find<'t>(&self, haystack: &'t str) -> Option<Match<'t>> {
        let slots = pike::run(&self.program, haystack, false)?;
        let (s, e) = (slots[0]?, slots[1]?);
        Some(Match {
            start: s,
            end: e,
            text: &haystack[s..e],
        })
    }

    /// Leftmost match with capture groups.
    pub fn captures<'t>(&self, haystack: &'t str) -> Option<Captures<'t>> {
        let slots = pike::run(&self.program, haystack, false)?;
        Some(self.captures_from_slots(haystack, &slots))
    }

    /// All non-overlapping matches, left to right.
    pub fn find_iter<'r, 't>(&'r self, haystack: &'t str) -> FindIter<'r, 't> {
        FindIter {
            re: self,
            haystack,
            at: 0,
        }
    }

    /// All non-overlapping capturing matches, left to right.
    pub fn captures_iter<'r, 't>(
        &'r self,
        haystack: &'t str,
    ) -> impl Iterator<Item = Captures<'t>> + 'r
    where
        't: 'r,
    {
        CapturesIter {
            re: self,
            haystack,
            at: 0,
        }
    }

    fn captures_from_slots<'t>(&self, haystack: &'t str, slots: &[Option<usize>]) -> Captures<'t> {
        let mut groups = Vec::with_capacity(self.program.n_groups);
        for g in 0..self.program.n_groups {
            let m = match (
                slots.get(2 * g).copied().flatten(),
                slots.get(2 * g + 1).copied().flatten(),
            ) {
                (Some(s), Some(e)) if s <= e => Some(Match {
                    start: s,
                    end: e,
                    text: &haystack[s..e],
                }),
                _ => None,
            };
            groups.push(m);
        }
        Captures {
            groups,
            names: self.program.group_names.clone(),
        }
    }

    fn find_at<'t>(&self, haystack: &'t str, at: usize) -> Option<(Match<'t>, Captures<'t>)> {
        let slots = pike::run(&self.program, &haystack[at..], false)?;
        let (s, e) = (slots[0]?, slots[1]?);
        let shifted: Vec<Option<usize>> = slots.iter().map(|o| o.map(|p| p + at)).collect();
        let caps = self.captures_from_slots(haystack, &shifted);
        Some((
            Match {
                start: at + s,
                end: at + e,
                text: &haystack[at + s..at + e],
            },
            caps,
        ))
    }
}

/// Iterator over non-overlapping matches (see [`Regex::find_iter`]).
pub struct FindIter<'r, 't> {
    re: &'r Regex,
    haystack: &'t str,
    at: usize,
}

impl<'t> Iterator for FindIter<'_, 't> {
    type Item = Match<'t>;
    fn next(&mut self) -> Option<Match<'t>> {
        if self.at > self.haystack.len() {
            return None;
        }
        let (m, _) = self.re.find_at(self.haystack, self.at)?;
        // Advance past the match; for empty matches step one char to
        // guarantee progress.
        self.at = if m.end > m.start {
            m.end
        } else {
            next_char_boundary(self.haystack, m.end)
        };
        Some(m)
    }
}

struct CapturesIter<'r, 't> {
    re: &'r Regex,
    haystack: &'t str,
    at: usize,
}

impl<'t> Iterator for CapturesIter<'_, 't> {
    type Item = Captures<'t>;
    fn next(&mut self) -> Option<Captures<'t>> {
        if self.at > self.haystack.len() {
            return None;
        }
        let (m, caps) = self.re.find_at(self.haystack, self.at)?;
        self.at = if m.end > m.start {
            m.end
        } else {
            next_char_boundary(self.haystack, m.end)
        };
        Some(caps)
    }
}

fn next_char_boundary(s: &str, mut i: usize) -> usize {
    i += 1;
    while i < s.len() && !s.is_char_boundary(i) {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_dot() {
        let re = Regex::new("a.c").unwrap();
        assert!(re.is_match("xxabcxx"));
        assert!(re.is_match("a€c"));
        assert!(!re.is_match("ac"));
    }

    #[test]
    fn alternation_and_groups() {
        let re = Regex::new("(cat|dog)s?").unwrap();
        let caps = re.captures("two dogs").unwrap();
        assert_eq!(caps.get(0).unwrap().text, "dogs");
        assert_eq!(caps.get(1).unwrap().text, "dog");
    }

    #[test]
    fn quantifiers() {
        let re = Regex::new("ab*c+").unwrap();
        assert!(re.is_match("ac"));
        assert!(re.is_match("abbbccc"));
        assert!(!re.is_match("ab"));
        let re = Regex::new("a{2,3}").unwrap();
        assert!(!re.is_full_match("a"));
        assert!(re.is_full_match("aa"));
        assert!(re.is_full_match("aaa"));
        assert!(!re.is_full_match("aaaa"));
        let re = Regex::new("x{3}").unwrap();
        assert!(re.is_full_match("xxx"));
        assert!(!re.is_full_match("xx"));
        let re = Regex::new("y{2,}").unwrap();
        assert!(re.is_full_match("yyyyy"));
        assert!(!re.is_full_match("y"));
    }

    #[test]
    fn greedy_vs_lazy() {
        let re = Regex::new("<(.*)>").unwrap();
        assert_eq!(re.captures("<a><b>").unwrap().get(1).unwrap().text, "a><b");
        let re = Regex::new("<(.*?)>").unwrap();
        assert_eq!(re.captures("<a><b>").unwrap().get(1).unwrap().text, "a");
    }

    #[test]
    fn classes_and_escapes() {
        let re = Regex::new(r"[A-Za-z_]\w*").unwrap();
        assert_eq!(re.find("  my_var9 = 3").unwrap().text, "my_var9");
        let re = Regex::new(r"[^0-9]+").unwrap();
        assert_eq!(re.find("123abc456").unwrap().text, "abc");
        let re = Regex::new(r"\$\s*\d+\.\d{2}").unwrap();
        assert!(re.is_match("price: $ 12.99!"));
    }

    #[test]
    fn anchors() {
        let re = Regex::new("^abc$").unwrap();
        assert!(re.is_match("abc"));
        assert!(!re.is_match("xabc"));
        assert!(!re.is_match("abcx"));
        let re = Regex::new("^ab").unwrap();
        assert!(re.is_match("abx"));
        assert!(!re.is_match("xab"));
    }

    #[test]
    fn named_groups() {
        let re = Regex::new(r"(?P<cur>\$|EUR|DM)\s*(?P<amt>\d+)").unwrap();
        let caps = re.captures("costs EUR 45 today").unwrap();
        assert_eq!(caps.name("cur").unwrap().text, "EUR");
        assert_eq!(caps.name("amt").unwrap().text, "45");
        assert!(caps.name("missing").is_none());
    }

    #[test]
    fn find_iter_non_overlapping() {
        let re = Regex::new(r"\d+").unwrap();
        let all: Vec<_> = re.find_iter("a1b22c333").map(|m| m.text).collect();
        assert_eq!(all, vec!["1", "22", "333"]);
    }

    #[test]
    fn empty_match_progress() {
        let re = Regex::new("a*").unwrap();
        // Must terminate even though it can match the empty string.
        let n = re.find_iter("bbb").count();
        assert_eq!(n, 4); // empty matches at 0,1,2,3
    }

    #[test]
    fn case_insensitive_option() {
        let re = Regex::with_options("euro?", true).unwrap();
        assert!(re.is_match("EURO"));
        assert!(re.is_match("Eur"));
        assert!(!re.is_match("exr"));
    }

    #[test]
    fn leftmost_semantics() {
        let re = Regex::new("b+").unwrap();
        let m = re.find("abbbcbb").unwrap();
        assert_eq!((m.start, m.end), (1, 4));
    }

    #[test]
    fn unicode_haystack() {
        let re = Regex::new("é+").unwrap();
        let m = re.find("caféé!").unwrap();
        assert_eq!(m.text, "éé");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Regex::new("(").is_err());
        assert!(Regex::new("a{3,1}").is_err());
        assert!(Regex::new("[z-a]").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a\\").is_err());
    }

    #[test]
    fn nongreedy_plus_and_question() {
        let re = Regex::new("a+?").unwrap();
        assert_eq!(re.find("aaa").unwrap().text, "a");
        let re = Regex::new("a??b").unwrap();
        assert_eq!(re.find("ab").unwrap().text, "ab");
    }

    #[test]
    fn repeated_group_keeps_last_iteration() {
        let re = Regex::new("(?:(a|b)x)+").unwrap();
        let caps = re.captures("axbx").unwrap();
        assert_eq!(caps.get(0).unwrap().text, "axbx");
        assert_eq!(caps.get(1).unwrap().text, "b");
    }

    #[test]
    fn pathological_pattern_is_still_linear() {
        // (a*)*b against aaaa...a — catastrophic for backtrackers, fine for
        // a Pike VM. 10k 'a's should finish quickly.
        let re = Regex::new("(a*)*b").unwrap();
        let hay = "a".repeat(10_000);
        assert!(!re.is_match(&hay));
    }

    #[test]
    fn matches_only_empty_detects_charless_programs() {
        assert!(Regex::new("").unwrap().matches_only_empty());
        assert!(Regex::new("()*").unwrap().matches_only_empty());
        assert!(!Regex::new("a?").unwrap().matches_only_empty());
        assert!(!Regex::new(r"\d+").unwrap().matches_only_empty());
    }

    #[test]
    fn captures_iter_yields_all() {
        let re = Regex::new(r"(\w+)=(\d+)").unwrap();
        let pairs: Vec<(String, String)> = re
            .captures_iter("a=1; bb=22; c=3")
            .map(|c| {
                (
                    c.get(1).unwrap().text.to_string(),
                    c.get(2).unwrap().text.to_string(),
                )
            })
            .collect();
        assert_eq!(
            pairs,
            vec![
                ("a".into(), "1".into()),
                ("bb".into(), "22".into()),
                ("c".into(), "3".into())
            ]
        );
    }
}
