//! Character classes.

/// A set of characters, represented as sorted disjoint inclusive ranges
/// with an optional negation flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharClass {
    /// Sorted, coalesced, inclusive ranges.
    ranges: Vec<(char, char)>,
    /// If true the class matches characters *not* in `ranges`.
    negated: bool,
}

impl CharClass {
    /// The class matching exactly one character.
    pub fn single(c: char) -> CharClass {
        CharClass {
            ranges: vec![(c, c)],
            negated: false,
        }
    }

    /// The class matching any character (`.`). We follow the common regex
    /// default of letting `.` match everything including newlines; wrapper
    /// text is whitespace-normalized anyway.
    pub fn any() -> CharClass {
        CharClass {
            ranges: vec![('\0', char::MAX)],
            negated: false,
        }
    }

    /// Build from raw ranges (inclusive). Ranges are sorted and coalesced.
    pub fn from_ranges(mut ranges: Vec<(char, char)>, negated: bool) -> CharClass {
        ranges.sort_unstable();
        let mut coalesced: Vec<(char, char)> = Vec::with_capacity(ranges.len());
        for (lo, hi) in ranges {
            match coalesced.last_mut() {
                Some((_, phi)) if (*phi as u32) + 1 >= lo as u32 => {
                    if hi > *phi {
                        *phi = hi;
                    }
                }
                _ => coalesced.push((lo, hi)),
            }
        }
        CharClass {
            ranges: coalesced,
            negated,
        }
    }

    /// Perl `\d`.
    pub fn digit() -> CharClass {
        CharClass::from_ranges(vec![('0', '9')], false)
    }

    /// Perl `\w`.
    pub fn word() -> CharClass {
        CharClass::from_ranges(vec![('0', '9'), ('A', 'Z'), ('a', 'z'), ('_', '_')], false)
    }

    /// Perl `\s`.
    pub fn space() -> CharClass {
        CharClass::from_ranges(
            vec![
                (' ', ' '),
                ('\t', '\t'),
                ('\n', '\n'),
                ('\r', '\r'),
                ('\x0b', '\x0c'),
            ],
            false,
        )
    }

    /// The negation of this class.
    pub fn negate(mut self) -> CharClass {
        self.negated = !self.negated;
        self
    }

    /// Membership test.
    #[inline]
    pub fn matches(&self, c: char) -> bool {
        let inside = self
            .ranges
            .binary_search_by(|&(lo, hi)| {
                if c < lo {
                    std::cmp::Ordering::Greater
                } else if c > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok();
        inside != self.negated
    }

    /// Widen the class so ASCII letters match case-insensitively.
    pub fn ascii_fold(self) -> CharClass {
        let negated = self.negated;
        let mut ranges = self.ranges.clone();
        for &(lo, hi) in &self.ranges {
            // Add the case-swapped image of the ASCII-letter intersection.
            let (lo, hi) = (lo as u32, hi as u32);
            for (a, b, delta) in [
                ('A' as u32, 'Z' as u32, 32i32),
                ('a' as u32, 'z' as u32, -32),
            ] {
                let s = lo.max(a);
                let e = hi.min(b);
                if s <= e {
                    let s2 = char::from_u32((s as i32 + delta) as u32).unwrap();
                    let e2 = char::from_u32((e as i32 + delta) as u32).unwrap();
                    ranges.push((s2, e2));
                }
            }
        }
        CharClass::from_ranges(ranges, negated)
    }

    /// The ranges (for inspection/printing).
    pub fn ranges(&self) -> &[(char, char)] {
        &self.ranges
    }

    /// Whether the class is negated.
    pub fn is_negated(&self) -> bool {
        self.negated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_any() {
        assert!(CharClass::single('x').matches('x'));
        assert!(!CharClass::single('x').matches('y'));
        assert!(CharClass::any().matches('€'));
        assert!(CharClass::any().matches('\n'));
    }

    #[test]
    fn coalescing_adjacent_ranges() {
        let c = CharClass::from_ranges(vec![('a', 'c'), ('d', 'f'), ('x', 'z')], false);
        assert_eq!(c.ranges(), &[('a', 'f'), ('x', 'z')]);
    }

    #[test]
    fn negation() {
        let c = CharClass::digit().negate();
        assert!(!c.matches('5'));
        assert!(c.matches('a'));
        assert!(c.negate().matches('5'));
    }

    #[test]
    fn perl_classes() {
        assert!(CharClass::word().matches('_'));
        assert!(!CharClass::word().matches('-'));
        assert!(CharClass::space().matches('\t'));
        assert!(!CharClass::space().matches('x'));
    }

    #[test]
    fn ascii_fold_covers_both_cases() {
        let c = CharClass::from_ranges(vec![('a', 'c')], false).ascii_fold();
        assert!(c.matches('B'));
        assert!(c.matches('b'));
        assert!(!c.matches('d'));
        // folding a negated class keeps negation over the widened set
        let n = CharClass::from_ranges(vec![('a', 'a')], true).ascii_fold();
        assert!(!n.matches('a'));
        assert!(!n.matches('A'));
        assert!(n.matches('b'));
    }

    #[test]
    fn overlapping_ranges_merge() {
        let c = CharClass::from_ranges(vec![('a', 'm'), ('g', 'z')], false);
        assert_eq!(c.ranges(), &[('a', 'z')]);
    }
}
