//! Recursive-descent pattern parser.
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! alternation := concat ('|' concat)*
//! concat      := repeat*
//! repeat      := atom ('*'|'+'|'?'|'{m}'|'{m,}'|'{m,n}') '?'?
//! atom        := literal | '.' | class | '(' ... ')' | '^' | '$' | escape
//! ```

use crate::ast::Ast;
use crate::classes::CharClass;
use crate::Error;

/// Parse a pattern into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, Error> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut p = Parser {
        chars: &chars,
        pos: 0,
        next_group: 1,
    };
    let ast = p.alternation()?;
    if p.pos != p.chars.len() {
        return Err(p.err("unexpected ')'"));
    }
    Ok(ast)
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
    next_group: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error {
            at: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternation(&mut self) -> Result<Ast, Error> {
        let mut branches = vec![self.concat()?];
        while self.eat('|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alternate(branches)
        })
    }

    fn concat(&mut self) -> Result<Ast, Error> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().unwrap(),
            _ => Ast::Concat(parts),
        })
    }

    fn repeat(&mut self) -> Result<Ast, Error> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => {
                // Try to parse {m}, {m,}, {m,n}; a '{' that is not a valid
                // counted repetition is treated as a literal, like most
                // engines do.
                if let Some((min, max, consumed)) = self.try_counted() {
                    self.pos += consumed;
                    if let Some(mx) = max {
                        if mx < min {
                            return Err(self.err("repetition {m,n} with n < m"));
                        }
                    }
                    (min, max)
                } else {
                    return Ok(atom);
                }
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::AssertStart | Ast::AssertEnd) {
            return Err(self.err("cannot repeat an anchor"));
        }
        if matches!(atom, Ast::Empty) {
            return Err(self.err("nothing to repeat"));
        }
        let greedy = !self.eat('?');
        Ok(Ast::Repeat {
            inner: Box::new(atom),
            min,
            max,
            greedy,
        })
    }

    /// Attempt to read `{m}`, `{m,}` or `{m,n}` starting at the current
    /// `{`. Returns (min, max, chars consumed) without consuming on failure.
    fn try_counted(&self) -> Option<(u32, Option<u32>, usize)> {
        let rest = &self.chars[self.pos..];
        debug_assert_eq!(rest.first(), Some(&'{'));
        let mut i = 1;
        let mut min = String::new();
        while i < rest.len() && rest[i].is_ascii_digit() {
            min.push(rest[i]);
            i += 1;
        }
        if min.is_empty() {
            return None;
        }
        let min: u32 = min.parse().ok()?;
        match rest.get(i) {
            Some('}') => Some((min, Some(min), i + 1)),
            Some(',') => {
                i += 1;
                let mut max = String::new();
                while i < rest.len() && rest[i].is_ascii_digit() {
                    max.push(rest[i]);
                    i += 1;
                }
                if rest.get(i) != Some(&'}') {
                    return None;
                }
                let max = if max.is_empty() {
                    None
                } else {
                    Some(max.parse().ok()?)
                };
                Some((min, max, i + 1))
            }
            _ => None,
        }
    }

    fn atom(&mut self) -> Result<Ast, Error> {
        match self.peek() {
            Some('(') => self.group(),
            Some('[') => {
                let class = self.class()?;
                Ok(Ast::Class(class))
            }
            Some('.') => {
                self.bump();
                Ok(Ast::Class(CharClass::any()))
            }
            Some('^') => {
                self.bump();
                Ok(Ast::AssertStart)
            }
            Some('$') => {
                self.bump();
                Ok(Ast::AssertEnd)
            }
            Some('\\') => {
                self.bump();
                let class = self.escape()?;
                Ok(Ast::Class(class))
            }
            Some(c @ ('*' | '+' | '?')) => Err(self.err(&format!("dangling quantifier '{c}'"))),
            Some(c) => {
                self.bump();
                Ok(Ast::Class(CharClass::single(c)))
            }
            None => Ok(Ast::Empty),
        }
    }

    fn group(&mut self) -> Result<Ast, Error> {
        assert!(self.eat('('));
        // (?: ...) or (?P<name> ...) ?
        let mut name = None;
        let mut capturing = true;
        if self.eat('?') {
            match self.peek() {
                Some(':') => {
                    self.bump();
                    capturing = false;
                }
                Some('P') => {
                    self.bump();
                    if !self.eat('<') {
                        return Err(self.err("expected '<' after (?P"));
                    }
                    let mut n = String::new();
                    while let Some(c) = self.peek() {
                        if c == '>' {
                            break;
                        }
                        if !(c.is_alphanumeric() || c == '_') {
                            return Err(self.err("invalid group name character"));
                        }
                        n.push(c);
                        self.bump();
                    }
                    if !self.eat('>') {
                        return Err(self.err("unterminated group name"));
                    }
                    if n.is_empty() {
                        return Err(self.err("empty group name"));
                    }
                    name = Some(n);
                }
                _ => return Err(self.err("unsupported group flag")),
            }
        }
        let index = if capturing {
            let i = self.next_group;
            self.next_group += 1;
            i
        } else {
            0
        };
        let inner = self.alternation()?;
        if !self.eat(')') {
            return Err(self.err("missing ')'"));
        }
        Ok(if capturing {
            Ast::Group {
                index,
                name,
                inner: Box::new(inner),
            }
        } else {
            Ast::NonCapturing(Box::new(inner))
        })
    }

    fn class(&mut self) -> Result<CharClass, Error> {
        assert!(self.eat('['));
        let negated = self.eat('^');
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut first = true;
        loop {
            let c = match self.peek() {
                None => return Err(self.err("unterminated character class")),
                Some(']') if !first => {
                    self.bump();
                    break;
                }
                Some(c) => c,
            };
            first = false;
            self.bump();
            let lo = if c == '\\' {
                let class = self.escape()?;
                // A multi-char escape inside a class contributes its ranges
                // directly and cannot form a range with '-'.
                if class.ranges().len() != 1 || class.ranges()[0].0 != class.ranges()[0].1 {
                    ranges.extend_from_slice(class.ranges());
                    continue;
                }
                class.ranges()[0].0
            } else {
                c
            };
            // Possible range lo-hi?
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump(); // '-'
                let hi_c = self
                    .bump()
                    .ok_or_else(|| self.err("unterminated character class"))?;
                let hi = if hi_c == '\\' {
                    let class = self.escape()?;
                    if class.ranges().len() != 1 || class.ranges()[0].0 != class.ranges()[0].1 {
                        return Err(self.err("class escape cannot end a range"));
                    }
                    class.ranges()[0].0
                } else {
                    hi_c
                };
                if hi < lo {
                    return Err(self.err("invalid range: end before start"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        Ok(CharClass::from_ranges(ranges, negated))
    }

    fn escape(&mut self) -> Result<CharClass, Error> {
        let c = self
            .bump()
            .ok_or_else(|| self.err("dangling escape at end of pattern"))?;
        Ok(match c {
            'd' => CharClass::digit(),
            'D' => CharClass::digit().negate(),
            'w' => CharClass::word(),
            'W' => CharClass::word().negate(),
            's' => CharClass::space(),
            'S' => CharClass::space().negate(),
            'n' => CharClass::single('\n'),
            't' => CharClass::single('\t'),
            'r' => CharClass::single('\r'),
            '0' => CharClass::single('\0'),
            // Any punctuation escapes itself: \. \* \( \[ \\ \$ …
            c if !c.is_alphanumeric() => CharClass::single(c),
            _ => return Err(self.err(&format!("unknown escape '\\{c}'"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_concat() {
        let ast = parse("ab").unwrap();
        assert!(matches!(ast, Ast::Concat(ref v) if v.len() == 2));
    }

    #[test]
    fn precedence_alternation_lowest() {
        let ast = parse("ab|c").unwrap();
        assert!(matches!(ast, Ast::Alternate(ref v) if v.len() == 2));
    }

    #[test]
    fn counted_repetition_forms() {
        assert!(matches!(
            parse("a{3}").unwrap(),
            Ast::Repeat {
                min: 3,
                max: Some(3),
                ..
            }
        ));
        assert!(matches!(
            parse("a{2,}").unwrap(),
            Ast::Repeat {
                min: 2,
                max: None,
                ..
            }
        ));
        assert!(matches!(
            parse("a{2,5}").unwrap(),
            Ast::Repeat {
                min: 2,
                max: Some(5),
                ..
            }
        ));
    }

    #[test]
    fn brace_literal_when_not_counted() {
        // '{' not followed by digits is a literal.
        let ast = parse("a{x}").unwrap();
        assert!(matches!(ast, Ast::Concat(_)));
    }

    #[test]
    fn group_indices_assigned_left_to_right() {
        let ast = parse("((a)(b))").unwrap();
        if let Ast::Group { index, inner, .. } = &ast {
            assert_eq!(*index, 1);
            if let Ast::Concat(parts) = inner.as_ref() {
                assert!(matches!(parts[0], Ast::Group { index: 2, .. }));
                assert!(matches!(parts[1], Ast::Group { index: 3, .. }));
            } else {
                panic!("expected concat inside group");
            }
        } else {
            panic!("expected outer group");
        }
    }

    #[test]
    fn class_with_escapes_and_ranges() {
        let ast = parse(r"[\d\-a-f]").unwrap();
        if let Ast::Class(c) = ast {
            assert!(c.matches('3'));
            assert!(c.matches('-'));
            assert!(c.matches('e'));
            assert!(!c.matches('g'));
        } else {
            panic!("expected class");
        }
    }

    #[test]
    fn dash_at_end_of_class_is_literal() {
        let ast = parse("[a-]").unwrap();
        if let Ast::Class(c) = ast {
            assert!(c.matches('a'));
            assert!(c.matches('-'));
        } else {
            panic!("expected class");
        }
    }

    #[test]
    fn anchors_cannot_be_repeated() {
        assert!(parse("^*").is_err());
        assert!(parse("$+").is_err());
    }

    #[test]
    fn closing_bracket_first_is_literal() {
        let ast = parse("[]a]").unwrap();
        if let Ast::Class(c) = ast {
            assert!(c.matches(']'));
            assert!(c.matches('a'));
        } else {
            panic!("expected class");
        }
    }
}
