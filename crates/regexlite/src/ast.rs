//! Abstract syntax of patterns.

use crate::classes::CharClass;

/// A parsed regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// The empty pattern (matches the empty string).
    Empty,
    /// A single character class (literals are singleton classes).
    Class(CharClass),
    /// Concatenation, in order.
    Concat(Vec<Ast>),
    /// Alternation, in priority order (leftmost branch preferred).
    Alternate(Vec<Ast>),
    /// Repetition of the inner pattern.
    Repeat {
        /// The repeated subpattern.
        inner: Box<Ast>,
        /// Minimum number of iterations.
        min: u32,
        /// Maximum number of iterations, `None` = unbounded.
        max: Option<u32>,
        /// Greedy (prefer more) or lazy (prefer fewer).
        greedy: bool,
    },
    /// A capturing group with index (1-based; 0 is the implicit whole
    /// match) and optional name.
    Group {
        /// Capture index.
        index: usize,
        /// Name from `(?P<name>…)`, if given.
        name: Option<String>,
        /// Group body.
        inner: Box<Ast>,
    },
    /// Non-capturing group `(?:…)`. Kept distinct so the pretty-printer can
    /// round-trip, but compiles identically to its body.
    NonCapturing(Box<Ast>),
    /// `^` — start of input.
    AssertStart,
    /// `$` — end of input.
    AssertEnd,
}

impl Ast {
    /// Number of capturing groups contained in this AST (not counting the
    /// implicit group 0).
    pub fn group_count(&self) -> usize {
        match self {
            Ast::Empty | Ast::Class(_) | Ast::AssertStart | Ast::AssertEnd => 0,
            Ast::Concat(parts) | Ast::Alternate(parts) => parts.iter().map(Ast::group_count).sum(),
            Ast::Repeat { inner, .. } | Ast::NonCapturing(inner) => inner.group_count(),
            Ast::Group { inner, .. } => 1 + inner.group_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    #[test]
    fn group_count_counts_nested() {
        let ast = parse("((a)(b(c)))").unwrap();
        assert_eq!(ast.group_count(), 4);
    }

    #[test]
    fn group_count_ignores_noncapturing() {
        let ast = parse("(?:a(b))").unwrap();
        assert_eq!(ast.group_count(), 1);
    }
}
