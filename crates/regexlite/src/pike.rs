//! The Pike VM: breadth-first NFA simulation with capture slots.
//!
//! Time complexity is O(|input| · |program|): each input position processes
//! each instruction at most once (the `added` generation marks guarantee
//! that). This is what makes `(a*)*b`-style patterns harmless here while
//! they are catastrophic for backtracking engines.

use crate::nfa::{Inst, Program};

type Slots = Box<[Option<usize>]>;

/// A runnable list of threads, deduplicated by program counter.
struct ThreadList {
    /// (pc, slots) in priority order.
    threads: Vec<(usize, Slots)>,
    /// Generation marks: `seen[pc] == gen` means pc already queued.
    seen: Vec<u32>,
    gen: u32,
}

impl ThreadList {
    fn new(n: usize) -> ThreadList {
        ThreadList {
            threads: Vec::new(),
            seen: vec![0; n],
            gen: 0,
        }
    }

    fn clear(&mut self) {
        self.threads.clear();
        self.gen += 1;
    }
}

/// Run `prog` against `haystack`.
///
/// If `anchored` is true the match must start at position 0 (the caller
/// checks the end position for full matches). Returns the capture slots of
/// the highest-priority matching thread, or `None`.
///
/// Positions stored in slots are byte offsets into `haystack`.
pub fn run(prog: &Program, haystack: &str, anchored: bool) -> Option<Slots> {
    let n = prog.insts.len();
    let mut clist = ThreadList::new(n);
    let mut nlist = ThreadList::new(n);
    let mut matched: Option<Slots> = None;

    // Iterate over char boundaries; `pos` is the byte offset, `ch` the char
    // at that offset (None at end of input). Lazy on purpose: a run that
    // matches (or dies) early must not pay for the rest of the haystack —
    // `captures_iter` re-enters here once per match position, so an eager
    // collect would make short-match scans quadratic in the text length.
    let positions = haystack
        .char_indices()
        .map(|(i, c)| (i, Some(c)))
        .chain(std::iter::once((haystack.len(), None)));

    clist.clear();
    for (step, (pos, ch)) in positions.enumerate() {
        // Seed a new thread for unanchored search — but only while no match
        // has been found (leftmost semantics: once a match starts, later
        // starts are lower priority and cannot win).
        if step == 0 || (!anchored && matched.is_none()) {
            let slots = vec![None; prog.n_slots()].into_boxed_slice();
            add_thread(prog, &mut clist, 0, pos, haystack.len(), slots);
        }

        nlist.clear();
        let mut i = 0;
        while i < clist.threads.len() {
            let (pc, slots) = clist.threads[i].clone();
            match &prog.insts[pc] {
                Inst::Char(class) => {
                    if let Some(c) = ch {
                        if class.matches(c) {
                            let next_pos = pos + c.len_utf8();
                            add_thread(prog, &mut nlist, pc + 1, next_pos, haystack.len(), slots);
                        }
                    }
                }
                Inst::Match => {
                    // Highest-priority match at this step wins; cut all
                    // lower-priority threads (they cannot produce a better
                    // match under leftmost-first semantics).
                    matched = Some(slots);
                    break;
                }
                // Epsilon instructions were resolved in add_thread.
                Inst::Split { .. }
                | Inst::Jmp(_)
                | Inst::Save(_)
                | Inst::AssertStart
                | Inst::AssertEnd => {
                    unreachable!("epsilon instructions are expanded eagerly")
                }
            }
            i += 1;
        }
        std::mem::swap(&mut clist, &mut nlist);
        if clist.threads.is_empty() && (matched.is_some() || anchored) {
            break;
        }
    }
    matched
}

/// Add a thread, eagerly following epsilon transitions (Split/Jmp/Save and
/// zero-width assertions) in priority order.
fn add_thread(
    prog: &Program,
    list: &mut ThreadList,
    pc: usize,
    pos: usize,
    input_len: usize,
    slots: Slots,
) {
    if list.seen[pc] == list.gen {
        return;
    }
    list.seen[pc] = list.gen;
    match &prog.insts[pc] {
        Inst::Jmp(t) => add_thread(prog, list, *t, pos, input_len, slots),
        Inst::Split { prefer, alt } => {
            add_thread(prog, list, *prefer, pos, input_len, slots.clone());
            add_thread(prog, list, *alt, pos, input_len, slots);
        }
        Inst::Save(slot) => {
            let mut s = slots;
            s[*slot] = Some(pos);
            add_thread(prog, list, pc + 1, pos, input_len, s);
        }
        Inst::AssertStart => {
            if pos == 0 {
                add_thread(prog, list, pc + 1, pos, input_len, slots);
            }
        }
        Inst::AssertEnd => {
            if pos == input_len {
                add_thread(prog, list, pc + 1, pos, input_len, slots);
            }
        }
        Inst::Char(_) | Inst::Match => {
            list.threads.push((pc, slots));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::nfa::compile;
    use crate::parser::parse;

    fn slots(pattern: &str, hay: &str) -> Option<Vec<Option<usize>>> {
        let p = compile(&parse(pattern).unwrap(), false);
        super::run(&p, hay, false).map(|s| s.to_vec())
    }

    #[test]
    fn whole_match_slots() {
        let s = slots("b+", "abbc").unwrap();
        assert_eq!(s[0], Some(1));
        assert_eq!(s[1], Some(3));
    }

    #[test]
    fn no_match_returns_none() {
        assert!(slots("z", "abc").is_none());
    }

    #[test]
    fn group_slots_follow_priority() {
        // Greedy: group 1 should take the longer arm.
        let s = slots("(ab|a)b?", "ab").unwrap();
        assert_eq!(&s[2..4], &[Some(0), Some(2)]);
    }

    #[test]
    fn anchored_run_requires_start() {
        let p = compile(&parse("b").unwrap(), false);
        assert!(super::run(&p, "ab", true).is_none());
        assert!(super::run(&p, "ba", true).is_some());
    }

    #[test]
    fn empty_pattern_matches_empty_prefix() {
        let s = slots("", "xyz").unwrap();
        assert_eq!(s[0], Some(0));
        assert_eq!(s[1], Some(0));
    }
}
