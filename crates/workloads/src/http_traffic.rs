//! Client-side HTTP traffic driver: renders the mixed-wrapper request
//! stream of [`traffic`](crate::traffic) as the JSON bodies the
//! `lixto_http` gateway's wire protocol expects, so load generators can
//! replay realistic portal traffic straight onto the network service.
//!
//! The JSON is built by hand (with full string escaping) rather than via
//! `lixto_http`'s value type, keeping this crate free of upward
//! dependencies — the driver produces bytes any HTTP client can POST.

use crate::traffic::{TrafficRequest, WrapperProfile};

/// Escape `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `POST /extract` body for one inline-document request.
pub fn extract_body(wrapper: &str, url: &str, html: &str) -> String {
    format!(
        r#"{{"wrapper":"{}","url":"{}","html":"{}"}}"#,
        json_escape(wrapper),
        json_escape(url),
        json_escape(html)
    )
}

/// The `POST /extract` body for a server-side (`Web`) fetch of `url`.
pub fn extract_body_web(wrapper: &str, url: &str) -> String {
    format!(
        r#"{{"wrapper":"{}","url":"{}"}}"#,
        json_escape(wrapper),
        json_escape(url)
    )
}

/// The `PUT /wrappers/{name}` body deploying `profile`.
pub fn register_body(profile: &WrapperProfile) -> String {
    let auxiliary = profile
        .auxiliary
        .iter()
        .map(|a| format!("\"{}\"", json_escape(a)))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        r#"{{"program":"{}","root":"{}","auxiliary":[{}]}}"#,
        json_escape(profile.program),
        json_escape(profile.root),
        auxiliary
    )
}

/// One wire-ready request of the replay stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpTrafficRequest {
    /// Which simulated user issued it (0-based) — load generators
    /// partition the stream by this to get per-user connections.
    pub user: usize,
    /// Wrapper profile name (for correlating responses).
    pub wrapper: &'static str,
    /// The `POST /extract` JSON body.
    pub body: String,
}

impl From<&TrafficRequest> for HttpTrafficRequest {
    fn from(r: &TrafficRequest) -> HttpTrafficRequest {
        HttpTrafficRequest {
            user: r.user,
            wrapper: r.wrapper,
            body: extract_body(r.wrapper, &r.url, &r.html),
        }
    }
}

/// The deterministic mixed traffic stream of
/// [`traffic::requests`](crate::traffic::requests), rendered as
/// `POST /extract` bodies.
pub fn requests(seed: u64, users: usize, per_user: usize) -> Vec<HttpTrafficRequest> {
    crate::traffic::requests(seed, users, per_user)
        .iter()
        .map(HttpTrafficRequest::from)
        .collect()
}

/// The low-hit-rate long-tail stream of
/// [`traffic::long_tail_requests`](crate::traffic::long_tail_requests),
/// rendered as `POST /extract` bodies — cache-hostile traffic for
/// benchmarking the extraction miss path over the wire.
pub fn long_tail_requests(seed: u64, users: usize, per_user: usize) -> Vec<HttpTrafficRequest> {
    crate::traffic::long_tail_requests(seed, users, per_user)
        .iter()
        .map(HttpTrafficRequest::from)
        .collect()
}

/// The restart-heavy stream of
/// [`traffic::restart_requests`](crate::traffic::restart_requests),
/// rendered as `POST /extract` bodies — near-total document repetition
/// from a pool of `pool` variants per wrapper, the traffic shape that
/// makes warm-restart recovery (serve from the recovered store) visibly
/// cheaper than cold rewarm (re-execute every plan once per pair).
pub fn restart_requests(
    seed: u64,
    users: usize,
    per_user: usize,
    pool: u64,
) -> Vec<HttpTrafficRequest> {
    crate::traffic::restart_requests(seed, users, per_user, pool)
        .iter()
        .map(HttpTrafficRequest::from)
        .collect()
}

/// Group pre-rendered `POST /extract` bodies into `POST /extract/batch`
/// payloads of at most `batch_size` items each (each body becomes one
/// array element, in order).
pub fn batch_bodies(bodies: &[String], batch_size: usize) -> Vec<String> {
    let batch_size = batch_size.max(1);
    bodies
        .chunks(batch_size)
        .map(|chunk| format!("[{}]", chunk.join(",")))
        .collect()
}

/// A minimal single-item document — the tiny-document regime where HTTP
/// framing dominates extraction cost and batching pays.
pub fn tiny_page(item: &str) -> String {
    format!("<html><body><ul><li>{item}</li></ul></body></html>")
}

/// `count` tiny inline-document `POST /extract` bodies for `wrapper`
/// at `url`, cycling through a pool of `pool` distinct documents (so a
/// result cache sees a realistic repeat mix). Deterministic.
pub fn tiny_extract_bodies(wrapper: &str, url: &str, count: usize, pool: usize) -> Vec<String> {
    let pool = pool.max(1);
    (0..count)
        .map(|i| {
            let doc = tiny_page(&format!("item-{}", i % pool));
            extract_body(wrapper, url, &doc)
        })
        .collect()
}

/// The mostly-idle portal scenario: `users` keep-alive clients, each
/// issuing only `per_user` requests over a long session — the
/// connection count the multiplexed gateway must hold open dwarfs the
/// request rate. Returns the per-user request bodies; the *idleness*
/// is the load generator's business (it keeps every connection open
/// between requests).
pub fn idle_portal_requests(seed: u64, users: usize, per_user: usize) -> Vec<HttpTrafficRequest> {
    // Reuse the mixed-traffic generator: the documents and wrapper mix
    // are the portal's; only the pacing differs.
    requests(seed, users, per_user)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
    }

    #[test]
    fn bodies_embed_the_document_and_parse_as_json_shapes() {
        let body = extract_body("shop", "http://s/", "<p class=\"x\">hi</p>");
        assert!(body.starts_with(r#"{"wrapper":"shop","url":"http://s/","html":""#));
        assert!(body.contains("\\\"x\\\""));
        let web = extract_body_web("news", "http://press/finance");
        assert_eq!(web, r#"{"wrapper":"news","url":"http://press/finance"}"#);
    }

    #[test]
    fn register_bodies_carry_program_root_and_auxiliary() {
        let profile = crate::traffic::profiles()
            .into_iter()
            .find(|p| p.name == "ebay")
            .unwrap();
        let body = register_body(&profile);
        assert!(body.contains(r#""root":"auctions""#));
        assert!(body.contains(r#""auxiliary":["tableseq"]"#));
        assert!(body.contains("document("));
    }

    #[test]
    fn batch_bodies_group_in_order_and_parse_as_arrays() {
        let bodies = tiny_extract_bodies("shop", "http://shop/", 7, 3);
        assert_eq!(bodies.len(), 7);
        // The pool cycles: items 0 and 3 share a document.
        assert_eq!(bodies[0], bodies[3]);
        assert_ne!(bodies[0], bodies[1]);
        let batches = batch_bodies(&bodies, 3);
        assert_eq!(batches.len(), 3, "7 items in batches of 3 → 3+3+1");
        assert!(batches[0].starts_with('['));
        assert!(batches[0].ends_with(']'));
        assert_eq!(
            batches[0],
            format!("[{},{},{}]", bodies[0], bodies[1], bodies[2])
        );
        assert_eq!(batches[2], format!("[{}]", bodies[6]));
        // Degenerate batch size is clamped, not a panic.
        assert_eq!(batch_bodies(&bodies, 0).len(), 7);
    }

    #[test]
    fn tiny_pages_embed_the_item_and_stay_tiny() {
        let page = tiny_page("x42");
        assert!(page.contains("<li>x42</li>"));
        assert!(page.len() < 128, "tiny means framing-dominated");
        let idle = idle_portal_requests(3, 5, 2);
        assert_eq!(idle.len(), 10);
        assert_eq!(idle, requests(3, 5, 2), "same mix, idle pacing");
    }

    #[test]
    fn stream_mirrors_the_traffic_generator() {
        let wire = requests(7, 4, 5);
        let raw = crate::traffic::requests(7, 4, 5);
        assert_eq!(wire.len(), raw.len());
        for (w, r) in wire.iter().zip(&raw) {
            assert_eq!(w.user, r.user);
            assert_eq!(w.wrapper, r.wrapper);
            assert!(w.body.contains(&format!("\"wrapper\":\"{}\"", r.wrapper)));
        }
        assert_eq!(wire, requests(7, 4, 5), "stream must be deterministic");
    }
}
