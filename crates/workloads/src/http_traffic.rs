//! Client-side HTTP traffic driver: renders the mixed-wrapper request
//! stream of [`traffic`](crate::traffic) as the JSON bodies the
//! `lixto_http` gateway's wire protocol expects, so load generators can
//! replay realistic portal traffic straight onto the network service.
//!
//! The JSON is built by hand (with full string escaping) rather than via
//! `lixto_http`'s value type, keeping this crate free of upward
//! dependencies — the driver produces bytes any HTTP client can POST.

use crate::traffic::{TrafficRequest, WrapperProfile};

/// Escape `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `POST /extract` body for one inline-document request.
pub fn extract_body(wrapper: &str, url: &str, html: &str) -> String {
    format!(
        r#"{{"wrapper":"{}","url":"{}","html":"{}"}}"#,
        json_escape(wrapper),
        json_escape(url),
        json_escape(html)
    )
}

/// The `POST /extract` body for a server-side (`Web`) fetch of `url`.
pub fn extract_body_web(wrapper: &str, url: &str) -> String {
    format!(
        r#"{{"wrapper":"{}","url":"{}"}}"#,
        json_escape(wrapper),
        json_escape(url)
    )
}

/// The `PUT /wrappers/{name}` body deploying `profile`.
pub fn register_body(profile: &WrapperProfile) -> String {
    let auxiliary = profile
        .auxiliary
        .iter()
        .map(|a| format!("\"{}\"", json_escape(a)))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        r#"{{"program":"{}","root":"{}","auxiliary":[{}]}}"#,
        json_escape(profile.program),
        json_escape(profile.root),
        auxiliary
    )
}

/// One wire-ready request of the replay stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpTrafficRequest {
    /// Which simulated user issued it (0-based) — load generators
    /// partition the stream by this to get per-user connections.
    pub user: usize,
    /// Wrapper profile name (for correlating responses).
    pub wrapper: &'static str,
    /// The `POST /extract` JSON body.
    pub body: String,
}

impl From<&TrafficRequest> for HttpTrafficRequest {
    fn from(r: &TrafficRequest) -> HttpTrafficRequest {
        HttpTrafficRequest {
            user: r.user,
            wrapper: r.wrapper,
            body: extract_body(r.wrapper, &r.url, &r.html),
        }
    }
}

/// The deterministic mixed traffic stream of
/// [`traffic::requests`](crate::traffic::requests), rendered as
/// `POST /extract` bodies.
pub fn requests(seed: u64, users: usize, per_user: usize) -> Vec<HttpTrafficRequest> {
    crate::traffic::requests(seed, users, per_user)
        .iter()
        .map(HttpTrafficRequest::from)
        .collect()
}

/// The low-hit-rate long-tail stream of
/// [`traffic::long_tail_requests`](crate::traffic::long_tail_requests),
/// rendered as `POST /extract` bodies — cache-hostile traffic for
/// benchmarking the extraction miss path over the wire.
pub fn long_tail_requests(seed: u64, users: usize, per_user: usize) -> Vec<HttpTrafficRequest> {
    crate::traffic::long_tail_requests(seed, users, per_user)
        .iter()
        .map(HttpTrafficRequest::from)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
    }

    #[test]
    fn bodies_embed_the_document_and_parse_as_json_shapes() {
        let body = extract_body("shop", "http://s/", "<p class=\"x\">hi</p>");
        assert!(body.starts_with(r#"{"wrapper":"shop","url":"http://s/","html":""#));
        assert!(body.contains("\\\"x\\\""));
        let web = extract_body_web("news", "http://press/finance");
        assert_eq!(web, r#"{"wrapper":"news","url":"http://press/finance"}"#);
    }

    #[test]
    fn register_bodies_carry_program_root_and_auxiliary() {
        let profile = crate::traffic::profiles()
            .into_iter()
            .find(|p| p.name == "ebay")
            .unwrap();
        let body = register_body(&profile);
        assert!(body.contains(r#""root":"auctions""#));
        assert!(body.contains(r#""auxiliary":["tableseq"]"#));
        assert!(body.contains("document("));
    }

    #[test]
    fn stream_mirrors_the_traffic_generator() {
        let wire = requests(7, 4, 5);
        let raw = crate::traffic::requests(7, 4, 5);
        assert_eq!(wire.len(), raw.len());
        for (w, r) in wire.iter().zip(&raw) {
            assert_eq!(w.user, r.user);
            assert_eq!(w.wrapper, r.wrapper);
            assert!(w.body.contains(&format!("\"wrapper\":\"{}\"", r.wrapper)));
        }
        assert_eq!(wire, requests(7, 4, 5), "stream must be deterministic");
    }
}
