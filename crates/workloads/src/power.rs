//! Power-exchange spot prices (§6.7): hourly prices from "major European
//! power trading sites", integrated with weather/water-level data.

use crate::hash01;

/// One hourly spot price.
#[derive(Debug, Clone, PartialEq)]
pub struct SpotPrice {
    /// Hour of day, 0..24.
    pub hour: u32,
    /// Price in EUR/MWh.
    pub price: f64,
}

/// 24 hourly prices for a given exchange and day.
pub fn day_prices(seed: u64, exchange: usize, day: u64) -> Vec<SpotPrice> {
    (0..24)
        .map(|hour| {
            let r = hash01(
                seed.wrapping_add(exchange as u64 * 31),
                day * 24 + hour as u64,
            );
            // Morning/evening peaks.
            let shape = 1.0
                + 0.5 * (((hour as f64 - 8.0) / 3.0).powi(2)).min(4.0).recip()
                + 0.5 * (((hour as f64 - 19.0) / 3.0).powi(2)).min(4.0).recip();
            SpotPrice {
                hour,
                price: ((20.0 + r * 30.0) * shape * 100.0).round() / 100.0,
            }
        })
        .collect()
}

/// Exchange page.
pub fn exchange_page(name: &str, prices: &[SpotPrice]) -> String {
    let mut h = format!(
        "<html><body><h1>{name} day-ahead</h1><table class=\"spot\">\n\
         <tr><th>hour</th><th>EUR/MWh</th></tr>\n"
    );
    for p in prices {
        h.push_str(&format!(
            "<tr class=\"h\"><td>{:02}</td><td>{:.2}</td></tr>\n",
            p.hour, p.price
        ));
    }
    h.push_str("</table></body></html>");
    h
}

/// Wrapper for an exchange page.
pub fn exchange_wrapper(url: &str) -> String {
    format!(
        r#"row(S, X) :- document("{url}", S), subelem(S, (?.tr, [(class, "h", exact)]), X).
           hour(S, X) :- row(_, S), subelem(S, (.td, []), X), range(1, 1).
           price(S, X) :- row(_, S), subelem(S, (.td, []), X), range(2, 2)."#
    )
}

/// Site with `n_exchanges` exchanges.
pub fn site(seed: u64, n_exchanges: usize, day: u64) -> lixto_elog::StaticWeb {
    let mut web = lixto_elog::StaticWeb::new();
    for e in 0..n_exchanges {
        web.put(
            &format!("http://exchange{e}/spot"),
            exchange_page(&format!("EX{e}"), &day_prices(seed, e, day)),
        );
    }
    web
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_elog::{parse_program, Extractor};

    #[test]
    fn wrapper_reads_24_prices() {
        let web = site(9, 2, 1);
        let program = parse_program(&exchange_wrapper("http://exchange0/spot")).unwrap();
        let result = Extractor::new(program, &web).run();
        assert_eq!(result.texts_of("hour").len(), 24);
        assert_eq!(result.texts_of("price").len(), 24);
        let want: Vec<String> = day_prices(9, 0, 1)
            .iter()
            .map(|p| format!("{:.2}", p.price))
            .collect();
        assert_eq!(result.texts_of("price"), want);
    }
}
