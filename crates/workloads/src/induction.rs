//! LR wrapper induction — the machine-learning baseline of E11.
//!
//! Section 1: wrapper induction "currently suffers from the need to
//! provide machine learning algorithms with too many example instances —
//! which have to be wrapped manually"; Section 7 lists learning as an open
//! problem. This module implements the classic LR (left–right delimiter)
//! induction of Kushmerick et al. \[23\]: from labeled examples
//! (page, extracted strings) it learns the longest common left and right
//! delimiters, and the experiment counts how many labeled examples are
//! needed before the learned wrapper generalizes — versus the *one*
//! example document visual specification needs (Section 3.2).

/// A labeled example: the page text and the strings to extract, in order.
#[derive(Debug, Clone)]
pub struct Example {
    /// Raw page (HTML source).
    pub page: String,
    /// Ground-truth extractions, in order of appearance.
    pub targets: Vec<String>,
}

/// A learned LR wrapper: extract every substring between `left` and
/// `right`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LrWrapper {
    /// Left delimiter.
    pub left: String,
    /// Right delimiter.
    pub right: String,
}

impl LrWrapper {
    /// Apply the wrapper to a page.
    pub fn extract(&self, page: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut rest = page;
        while let Some(l) = rest.find(&self.left) {
            let after = &rest[l + self.left.len()..];
            let Some(r) = after.find(&self.right) else {
                break;
            };
            out.push(after[..r].to_string());
            rest = &after[r + self.right.len()..];
        }
        out
    }
}

/// Learn an LR wrapper from examples: the left delimiter is the longest
/// common suffix of the text preceding each target, the right delimiter
/// the longest common prefix of the text following it.
pub fn learn(examples: &[Example]) -> Option<LrWrapper> {
    let mut lefts: Vec<&str> = Vec::new();
    let mut rights: Vec<&str> = Vec::new();
    for ex in examples {
        let mut pos = 0;
        for t in &ex.targets {
            let i = ex.page[pos..].find(t.as_str())? + pos;
            lefts.push(&ex.page[..i]);
            rights.push(&ex.page[i + t.len()..]);
            pos = i + t.len();
        }
    }
    if lefts.is_empty() {
        return None;
    }
    let left = longest_common_suffix(&lefts);
    let right = longest_common_prefix(&rights);
    if left.is_empty() || right.is_empty() {
        return None;
    }
    Some(LrWrapper { left, right })
}

/// Does the learned wrapper reproduce the ground truth on a (held-out)
/// example?
pub fn correct_on(w: &LrWrapper, ex: &Example) -> bool {
    w.extract(&ex.page) == ex.targets
}

fn longest_common_suffix(strs: &[&str]) -> String {
    let first = strs[0];
    let mut len = first.len();
    for s in &strs[1..] {
        let mut k = 0;
        let a: Vec<u8> = first.bytes().rev().collect();
        let b: Vec<u8> = s.bytes().rev().collect();
        while k < len.min(b.len()) && k < a.len() && a[k] == b[k] {
            k += 1;
        }
        len = len.min(k);
    }
    // Keep on a char boundary.
    let mut start = first.len() - len;
    while !first.is_char_boundary(start) {
        start += 1;
    }
    first[start..].to_string()
}

fn longest_common_prefix(strs: &[&str]) -> String {
    let first = strs[0];
    let mut len = first.len();
    for s in &strs[1..] {
        let common = first
            .bytes()
            .zip(s.bytes())
            .take_while(|(a, b)| a == b)
            .count();
        len = len.min(common);
    }
    let mut end = len;
    while !first.is_char_boundary(end) {
        end -= 1;
    }
    first[..end].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn price_example(seed: u64, n: usize) -> Example {
        let auctions = crate::ebay::auctions(seed, n);
        let page = crate::ebay::listing_page(&auctions);
        let targets = auctions
            .iter()
            .map(|a| format!("{} {:.2}", a.currency, a.amount))
            .collect();
        Example { page, targets }
    }

    #[test]
    fn lr_learns_price_delimiters_eventually() {
        // With enough examples the delimiters shrink to something that
        // generalizes; with one example they overfit.
        let train: Vec<Example> = (0..6).map(|s| price_example(s, 4)).collect();
        let held_out = price_example(99, 5);
        let w_all = learn(&train).expect("learnable");
        assert!(
            correct_on(&w_all, &held_out),
            "learned delimiters: {:?} — should generalize",
            w_all
        );
    }

    #[test]
    fn single_example_overfits() {
        // One SINGLE-record example: the common-suffix computation
        // memorizes the page's entire prefix, so the wrapper cannot find
        // more than one record on a larger held-out page.
        let train = vec![price_example(0, 1)];
        let held_out = price_example(50, 6);
        if let Some(w) = learn(&train) {
            assert!(
                !correct_on(&w, &held_out),
                "a single example should not be enough for LR induction"
            );
        }
    }

    #[test]
    fn extraction_mechanics() {
        let w = LrWrapper {
            left: "<b>".into(),
            right: "</b>".into(),
        };
        assert_eq!(
            w.extract("<b>a</b> x <b>b</b>"),
            vec!["a".to_string(), "b".to_string()]
        );
    }
}
