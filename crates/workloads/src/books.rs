//! Two synthetic book-shop sites for the Figure 7 pipeline ("Small
//! information pipeline integrating information about books").

use crate::hash01;

/// A book offer (ground truth).
#[derive(Debug, Clone, PartialEq)]
pub struct Book {
    /// Title.
    pub title: String,
    /// Author.
    pub author: String,
    /// Price in EUR.
    pub price: f64,
    /// Which shop offers it (0 or 1).
    pub shop: usize,
}

const TITLES: &[(&str, &str)] = &[
    ("Foundations of Databases", "Abiteboul, Hull, Vianu"),
    ("The Art of Computer Programming", "Knuth"),
    ("Principles of Program Analysis", "Nielson, Nielson, Hankin"),
    ("Introduction to Automata Theory", "Hopcroft, Ullman"),
    ("A Discipline of Programming", "Dijkstra"),
    ("Types and Programming Languages", "Pierce"),
    ("Structure and Interpretation", "Abelson, Sussman"),
    ("The Mythical Man-Month", "Brooks"),
];

/// Books offered by shop `shop` (each shop carries a deterministic subset
/// with shop-specific prices).
pub fn catalog(seed: u64, shop: usize, n: usize) -> Vec<Book> {
    (0..n)
        .map(|i| {
            let (t, a) = TITLES[i % TITLES.len()];
            let r = hash01(seed.wrapping_add(shop as u64), i as u64);
            Book {
                title: format!("{t} (vol. {})", i / TITLES.len() + 1),
                author: a.to_string(),
                price: 10.0 + (r * 80.0 * 100.0).round() / 100.0,
                shop,
            }
        })
        .collect()
}

/// Shop 0 lists books in a table; shop 1 as a definition list — two
/// different layouts wrapped by two different programs, integrated by the
/// Transformation Server.
pub fn shop_page(books: &[Book]) -> String {
    let shop = books.first().map_or(0, |b| b.shop);
    if shop == 0 {
        let mut h = String::from(
            "<html><body><h1>Shop A bestsellers</h1><table class=\"list\">\n\
             <tr><th>title</th><th>author</th><th>price</th></tr>\n",
        );
        for b in books {
            h.push_str(&format!(
                "<tr class=\"book\"><td>{}</td><td>{}</td><td>EUR {:.2}</td></tr>\n",
                b.title, b.author, b.price
            ));
        }
        h.push_str("</table></body></html>");
        h
    } else {
        let mut h = String::from("<html><body><h1>Shop B catalogue</h1><dl>\n");
        for b in books {
            h.push_str(&format!(
                "<dt><b>{}</b> by {}</dt><dd>price: EUR {:.2}</dd>\n",
                b.title, b.author, b.price
            ));
        }
        h.push_str("</dl></body></html>");
        h
    }
}

/// The two-shop web of Figure 7.
pub fn site(seed: u64, per_shop: usize) -> (lixto_elog::StaticWeb, Vec<Book>) {
    let mut all = Vec::new();
    let mut web = lixto_elog::StaticWeb::new();
    for shop in 0..2 {
        let books = catalog(seed, shop, per_shop);
        web.put(&format!("http://shop{shop}/books"), shop_page(&books));
        all.extend(books);
    }
    (web, all)
}

/// The Elog wrapper for shop 0 (table layout).
pub const SHOP_A_WRAPPER: &str = r#"
    book(S, X) :- document("http://shop0/books", S),
        subelem(S, (?.tr, []), X),
        contains(X, (.td, [])).
    title(S, X) :- book(_, S), subelem(S, (.td, []), X), range(1, 1).
    author(S, X) :- book(_, S), subelem(S, (.td, []), X), range(2, 2).
    price(S, X) :- book(_, S), subelem(S, (.td, [(elementtext, "EUR", substr)]), X).
"#;

/// The Elog wrapper for shop 1 (definition-list layout).
pub const SHOP_B_WRAPPER: &str = r#"
    book(S, X) :- document("http://shop1/books", S), subelem(S, (?.dt, []), X).
    title(S, X) :- book(_, S), subelem(S, (.b, []), X).
    price(S, X) :- book(_, S), subtext(S, "", X).
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_elog::{parse_program, Extractor};

    #[test]
    fn shop_a_wrapper_extracts_books() {
        let (web, all) = site(5, 6);
        let program = parse_program(SHOP_A_WRAPPER).unwrap();
        let result = Extractor::new(program, &web).run();
        assert_eq!(result.base.of_pattern("book").len(), 6);
        let titles = result.texts_of("title");
        let want: Vec<String> = all
            .iter()
            .filter(|b| b.shop == 0)
            .map(|b| b.title.clone())
            .collect();
        assert_eq!(titles, want);
        assert_eq!(result.texts_of("price").len(), 6);
    }

    #[test]
    fn shop_b_wrapper_extracts_books() {
        let (web, _) = site(5, 4);
        let program = parse_program(SHOP_B_WRAPPER).unwrap();
        let result = Extractor::new(program, &web).run();
        assert_eq!(result.base.of_pattern("book").len(), 4);
        assert_eq!(result.texts_of("title").len(), 4);
    }
}
