//! "Now Playing" sources (§6.1): 14 sites in three groups — 8 radio
//! station playlists, 5 music charts, 1 lyrics server — refreshed at
//! different rates ("ranging from a few seconds (radio channels) up to
//! hours or days (charts and lyrics)").

use crate::hash01;

/// Station names (8 radio channels, national + international).
pub const STATIONS: &[&str] = &[
    "radio-wien",
    "oe3",
    "fm4",
    "radio-tirol",
    "antenne",
    "energy",
    "radio-paris",
    "radio-berlin",
];

/// Chart names (5 major charts).
pub const CHARTS: &[&str] = &[
    "austria-top40",
    "uk-singles",
    "billboard",
    "eurochart",
    "club",
];

/// A song.
#[derive(Debug, Clone, PartialEq)]
pub struct Song {
    /// Title.
    pub title: String,
    /// Artist.
    pub artist: String,
}

/// The song a station plays at a given tick (rotates deterministically).
pub fn now_playing(seed: u64, station: usize, tick: u64) -> Song {
    const SONGS: &[(&str, &str)] = &[
        ("Blue Monday", "New Order"),
        ("One More Time", "Daft Punk"),
        ("Hung Up", "Madonna"),
        ("Toxic", "Britney Spears"),
        ("Take Me Out", "Franz Ferdinand"),
        ("Mr. Brightside", "The Killers"),
        ("Hey Ya!", "OutKast"),
        ("Seven Nation Army", "The White Stripes"),
        ("Crazy In Love", "Beyoncé"),
        ("Lose Yourself", "Eminem"),
    ];
    let r = hash01(seed.wrapping_add(station as u64 * 131), tick);
    let (t, a) = SONGS[(r * SONGS.len() as f64) as usize];
    Song {
        title: t.to_string(),
        artist: a.to_string(),
    }
}

/// Playlist page for a station at a tick.
pub fn playlist_page(seed: u64, station: usize, tick: u64) -> String {
    let song = now_playing(seed, station, tick);
    format!(
        "<html><body><h1>{}</h1>\
         <div class=\"nowplaying\"><span class=\"title\">{}</span>\
         <span class=\"artist\">{}</span></div>\
         <a href=\"stream.m3u\">live stream</a></body></html>",
        STATIONS[station], song.title, song.artist
    )
}

/// Chart page: top-10 list with ranks.
pub fn chart_page(seed: u64, chart: usize, week: u64) -> String {
    let mut h = format!("<html><body><h1>{}</h1><ol class=\"chart\">", CHARTS[chart]);
    for rank in 0..10 {
        let s = now_playing(seed.wrapping_add(chart as u64 * 977), rank, week);
        h.push_str(&format!(
            "<li><span class=\"title\">{}</span> — <span class=\"artist\">{}</span></li>",
            s.title, s.artist
        ));
    }
    h.push_str("</ol></body></html>");
    h
}

/// Lyrics server page for a title.
pub fn lyrics_page(title: &str) -> String {
    format!(
        "<html><body><h2>{title}</h2><pre class=\"lyrics\">la la la — {title} — la la</pre></body></html>"
    )
}

/// Build the full 14-source web at a given (radio tick, chart week).
pub fn site(seed: u64, tick: u64, week: u64) -> lixto_elog::StaticWeb {
    let mut web = lixto_elog::StaticWeb::new();
    for (s, station) in STATIONS.iter().enumerate() {
        web.put(
            &format!("http://{station}/playlist"),
            playlist_page(seed, s, tick),
        );
    }
    for (c, chart) in CHARTS.iter().enumerate() {
        web.put(&format!("http://charts/{chart}"), chart_page(seed, c, week));
    }
    // One lyrics server page per currently playing song.
    for s in 0..STATIONS.len() {
        let song = now_playing(seed, s, tick);
        web.put(
            &format!("http://lyrics/{}", song.title.replace(' ', "+")),
            lyrics_page(&song.title),
        );
    }
    web
}

/// Playlist wrapper (parameterized by station).
pub fn playlist_wrapper(station: &str) -> String {
    format!(
        r#"playing(S, X) :- document("http://{station}/playlist", S), subelem(S, (?.div, [(class, "nowplaying", exact)]), X).
           title(S, X) :- playing(_, S), subelem(S, (.span, [(class, "title", exact)]), X).
           artist(S, X) :- playing(_, S), subelem(S, (.span, [(class, "artist", exact)]), X)."#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_elog::{parse_program, Extractor};

    #[test]
    fn fourteen_sources() {
        let web = site(3, 0, 0);
        // 8 stations + 5 charts + 8 lyrics pages (may dedup to fewer URLs
        // if two stations play the same song).
        assert!(web.len() >= 14);
    }

    #[test]
    fn playlist_wrapper_extracts_song() {
        let web = site(3, 7, 0);
        let program = parse_program(&playlist_wrapper(STATIONS[0])).unwrap();
        let result = Extractor::new(program, &web).run();
        let song = now_playing(3, 0, 7);
        assert_eq!(result.texts_of("title"), vec![song.title]);
        assert_eq!(result.texts_of("artist"), vec![song.artist]);
    }

    #[test]
    fn songs_change_across_ticks() {
        let a = now_playing(3, 0, 0);
        let mut changed = false;
        for t in 1..10 {
            if now_playing(3, 0, t) != a {
                changed = true;
            }
        }
        assert!(changed, "rotation must produce different songs");
    }
}
