//! Layout perturbation for the robustness experiment (E10).
//!
//! Section 2.5: wrappers "only need to specify queries, rather than the
//! full source trees on which they run. This is very important to
//! practical wrapping, because this way changes in parts of documents not
//! immediately relevant to the objects to be extracted do not break the
//! wrapper." Section 1 adds that layouts change *frequently* and often
//! intentionally.
//!
//! The operators below inject markup that does not touch the record
//! structure itself: extra banner/navigation elements, wrapper `<div>`s
//! around the whole page, attribute noise, and extra text. A Lixto wrapper
//! keyed on landmarks survives; an absolute-path XPath wrapper breaks —
//! experiment E10 measures both survival rates.

use rand::Rng;

/// Kinds of irrelevant-markup perturbations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perturbation {
    /// Insert a banner block right after `<body>`.
    TopBanner,
    /// Insert a navigation sidebar before the content.
    NavSidebar,
    /// Wrap the body content in an extra `<div>` (changes all absolute
    /// paths).
    WrapperDiv,
    /// Append a footer block.
    Footer,
    /// Sprinkle `class`/`id` attribute noise on the first few elements.
    AttrNoise,
}

/// All perturbation kinds.
pub const ALL: &[Perturbation] = &[
    Perturbation::TopBanner,
    Perturbation::NavSidebar,
    Perturbation::WrapperDiv,
    Perturbation::Footer,
    Perturbation::AttrNoise,
];

/// Apply one perturbation to an HTML page (string level, mirroring how
/// site redesigns actually land).
pub fn apply(html: &str, p: Perturbation, rng: &mut impl Rng) -> String {
    match p {
        Perturbation::TopBanner => insert_after(
            html,
            "<body>",
            &format!(
                "<div class=\"banner\"><img src=\"ad{}.gif\"><span>Special offer {}!</span></div>",
                rng.gen_range(0..100),
                rng.gen_range(0..100)
            ),
        ),
        Perturbation::NavSidebar => insert_after(
            html,
            "<body>",
            "<ul class=\"nav\"><li><a href=\"/\">home</a></li><li><a href=\"/help\">help</a></li></ul>",
        ),
        Perturbation::WrapperDiv => {
            let inner = html
                .replacen("<body>", "<body><div class=\"page\"><div class=\"content\">", 1);
            inner.replacen("</body>", "</div></div></body>", 1)
        }
        Perturbation::Footer => insert_before(
            html,
            "</body>",
            "<div class=\"footer\"><p>© operator — terms apply</p></div>",
        ),
        Perturbation::AttrNoise => {
            // Add a random class to the first table.
            html.replacen(
                "<table>",
                &format!("<table class=\"x{}\">", rng.gen_range(0..1000)),
                1,
            )
        }
    }
}

/// Apply `k` random perturbations.
pub fn apply_random(html: &str, k: usize, rng: &mut impl Rng) -> String {
    let mut out = html.to_string();
    for _ in 0..k {
        let p = ALL[rng.gen_range(0..ALL.len())];
        out = apply(&out, p, rng);
    }
    out
}

fn insert_after(html: &str, marker: &str, content: &str) -> String {
    html.replacen(marker, &format!("{marker}{content}"), 1)
}

fn insert_before(html: &str, marker: &str, content: &str) -> String {
    html.replacen(marker, &format!("{content}{marker}"), 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perturbations_change_markup_but_keep_records() {
        let (_, records) = crate::ebay::site(1, 3);
        let page = crate::ebay::listing_page(&records);
        let mut rng = StdRng::seed_from_u64(5);
        for &p in ALL {
            let mutated = apply(&page, p, &mut rng);
            assert_ne!(mutated, page, "{p:?} must change the page");
            // record content survives
            for r in &records {
                assert!(mutated.contains(&r.description));
            }
        }
    }

    #[test]
    fn robust_elog_wrapper_survives_all_perturbations() {
        use lixto_elog::{parse_program, Extractor, StaticWeb};
        let (_, records) = crate::ebay::site(2, 5);
        let page = crate::ebay::listing_page(&records);
        let mut rng = StdRng::seed_from_u64(6);
        let mutated = apply_random(&page, 8, &mut rng);
        let mut web = StaticWeb::new();
        web.put("www.ebay.com/", mutated);
        let program = parse_program(crate::ebay::EBAY_ROBUST_PROGRAM).unwrap();
        let result = Extractor::new(program, &web).run();
        assert_eq!(
            result.texts_of("itemdes").len(),
            records.len(),
            "landmark-based wrapper must survive irrelevant changes"
        );
    }

    #[test]
    fn figure5_wrapper_survives_sibling_noise_but_not_renesting() {
        use lixto_elog::{parse_program, Extractor, StaticWeb, EBAY_PROGRAM};
        let (_, records) = crate::ebay::site(2, 4);
        let page = crate::ebay::listing_page(&records);
        let mut rng = StdRng::seed_from_u64(8);
        // Sibling-level noise: the subsq landmarks still hold.
        for &p in &[
            Perturbation::TopBanner,
            Perturbation::Footer,
            Perturbation::AttrNoise,
        ] {
            let mutated = apply(&page, p, &mut rng);
            let mut web = StaticWeb::new();
            web.put("www.ebay.com/", mutated);
            let program = parse_program(EBAY_PROGRAM).unwrap();
            let result = Extractor::new(program, &web).run();
            assert_eq!(result.texts_of("itemdes").len(), records.len(), "{p:?}");
        }
        // Re-nesting moves the tables out of body's child list — the
        // literal Figure 5 program is anchored there and loses them.
        let mutated = apply(&page, Perturbation::WrapperDiv, &mut rng);
        let mut web = StaticWeb::new();
        web.put("www.ebay.com/", mutated);
        let program = parse_program(EBAY_PROGRAM).unwrap();
        let result = Extractor::new(program, &web).run();
        assert_eq!(result.texts_of("itemdes").len(), 0);
    }

    #[test]
    fn absolute_xpath_breaks_under_wrapper_div() {
        use lixto_xpath::{core::eval_core, parse};
        let (_, records) = crate::ebay::site(3, 4);
        let page = crate::ebay::listing_page(&records);
        // Brittle absolute-path "wrapper": body's 2nd..nth tables.
        let q = parse("/html/body/table/tr/td/a").unwrap();
        let doc = lixto_html::parse(&page);
        assert_eq!(eval_core(&doc, &q).unwrap().len(), records.len());
        let mut rng = StdRng::seed_from_u64(7);
        let mutated = apply(&page, Perturbation::WrapperDiv, &mut rng);
        let doc2 = lixto_html::parse(&mutated);
        assert_eq!(
            eval_core(&doc2, &q).unwrap().len(),
            0,
            "absolute path must break when the layout nests"
        );
    }
}
