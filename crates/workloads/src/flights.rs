//! Flight status tables (§6.2): "The system will send the actual flight
//! status to the user by means of an SMS message, but only if the status
//! changed between consecutive requests."

use crate::hash01;

/// Flight status values.
pub const STATUSES: &[&str] = &["on time", "boarding", "delayed", "departed", "cancelled"];

/// A flight row.
#[derive(Debug, Clone, PartialEq)]
pub struct Flight {
    /// Flight number, e.g. `OS123`.
    pub number: String,
    /// Departure airport.
    pub from: &'static str,
    /// Destination airport.
    pub to: &'static str,
    /// Current status.
    pub status: &'static str,
}

/// The flight table at a given tick; statuses evolve over ticks.
pub fn flights(seed: u64, n: usize, tick: u64) -> Vec<Flight> {
    const AIRPORTS: &[&str] = &["VIE", "FRA", "CDG", "LHR", "JFK", "NRT"];
    (0..n)
        .map(|i| {
            let r = hash01(seed, i as u64);
            let from = AIRPORTS[(r * AIRPORTS.len() as f64) as usize];
            let to = AIRPORTS[((r * 7919.0) as usize + 1 + i) % AIRPORTS.len()];
            // Status advances with ticks at flight-specific speed.
            let speed = 1 + (r * 3.0) as u64;
            let si = ((tick / speed) as usize + i) % STATUSES.len();
            Flight {
                number: format!("OS{}", 100 + i),
                from,
                to,
                status: STATUSES[si],
            }
        })
        .collect()
}

/// Render the airport information page.
pub fn status_page(flights: &[Flight]) -> String {
    let mut h = String::from(
        "<html><body><h1>Departures</h1><table class=\"flights\">\n\
         <tr><th>flight</th><th>from</th><th>to</th><th>status</th></tr>\n",
    );
    for f in flights {
        h.push_str(&format!(
            "<tr class=\"flight\"><td>{}</td><td>{}</td><td>{}</td><td class=\"status\">{}</td></tr>\n",
            f.number, f.from, f.to, f.status
        ));
    }
    h.push_str("</table></body></html>");
    h
}

/// The flight-status wrapper.
pub const FLIGHT_WRAPPER: &str = r#"
    flight(S, X) :- document("http://airport/departures", S),
        subelem(S, (?.tr, [(class, "flight", exact)]), X).
    number(S, X) :- flight(_, S), subelem(S, (.td, []), X), range(1, 1).
    status(S, X) :- flight(_, S), subelem(S, (.td, [(class, "status", exact)]), X).
"#;

/// Web at a tick.
pub fn site(seed: u64, n: usize, tick: u64) -> lixto_elog::StaticWeb {
    let mut web = lixto_elog::StaticWeb::new();
    web.put(
        "http://airport/departures",
        status_page(&flights(seed, n, tick)),
    );
    web
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_elog::{parse_program, Extractor};

    #[test]
    fn wrapper_reads_statuses() {
        let web = site(11, 5, 3);
        let program = parse_program(FLIGHT_WRAPPER).unwrap();
        let result = Extractor::new(program, &web).run();
        let want: Vec<String> = flights(11, 5, 3)
            .iter()
            .map(|f| f.status.to_string())
            .collect();
        assert_eq!(result.texts_of("status"), want);
        assert_eq!(result.texts_of("number").len(), 5);
    }

    #[test]
    fn statuses_change_between_ticks() {
        let a = flights(11, 5, 0);
        let b = flights(11, 5, 5);
        assert_ne!(a, b);
        // numbers stay stable — only the status column moves
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.number, y.number);
        }
    }
}
