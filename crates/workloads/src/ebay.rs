//! Synthetic eBay auction listings (Figure 5's target).
//!
//! "At the time of writing this, on eBay pages, every offered item is
//! stored in its own table. This sequence of tables is extracted with the
//! pattern `<tableseq>` […] the first node immediately follows the list
//! header (which on such pages is a 'table' itself, containing the text
//! 'item') and the final node is immediately followed by an 'hr' HTML
//! node." — the generator reproduces exactly that layout.

use crate::hash01;

/// One auction record (ground truth).
#[derive(Debug, Clone, PartialEq)]
pub struct Auction {
    /// Item description (hyperlinked on the page).
    pub description: String,
    /// Currency symbol.
    pub currency: &'static str,
    /// Price amount.
    pub amount: f64,
    /// Number of bids.
    pub bids: u32,
}

/// Generate `n` deterministic auctions.
pub fn auctions(seed: u64, n: usize) -> Vec<Auction> {
    const ITEMS: &[&str] = &[
        "Antique pocket watch",
        "Signed first edition",
        "Vintage camera",
        "Mountain bike",
        "Espresso machine",
        "Model railway set",
        "Oil painting",
        "Mechanical keyboard",
    ];
    const CURRENCIES: &[&str] = &["$", "EUR", "DM"];
    (0..n)
        .map(|i| {
            let r = hash01(seed, i as u64);
            let r2 = hash01(seed, (i as u64) << 17);
            Auction {
                description: format!("{} #{i}", ITEMS[(r * ITEMS.len() as f64) as usize]),
                currency: CURRENCIES[(r2 * CURRENCIES.len() as f64) as usize],
                amount: (r * 500.0 * 100.0).round() / 100.0 + 1.0,
                bids: (r2 * 30.0) as u32,
            }
        })
        .collect()
}

/// Render a listing page: header table ("item"), one table per record,
/// closing `<hr>`.
pub fn listing_page(auctions: &[Auction]) -> String {
    let mut html = String::from(
        "<html><body>\n<h1>All auctions</h1>\n\
         <table><tr><td>item</td><td>price</td><td>bids</td></tr></table>\n",
    );
    for (i, a) in auctions.iter().enumerate() {
        html.push_str(&format!(
            "<table><tr>\
             <td><a href=\"item{i}.html\">{}</a></td>\
             <td>{} {:.2}</td>\
             <td>{}</td>\
             </tr></table>\n",
            a.description, a.currency, a.amount, a.bids
        ));
    }
    html.push_str("<hr>\n<p>footer: auctions refresh daily</p></body></html>\n");
    html
}

/// A *robust* variant of the Figure 5 wrapper: records are located as
/// "tables containing a hyperlinked cell" instead of "children of body
/// between two landmarks", so the wrapper survives even layout redesigns
/// that re-nest the page (experiment E10's strongest perturbation).
pub const EBAY_ROBUST_PROGRAM: &str = r#"
    record(S, X) :- document("www.ebay.com/", S), subelem(S, (?.table, []), X),
        contains(X, (?.td.?.a, [])).
    itemdes(S, X) :- record(_, S), subelem(S, (?.td.?.a, []), X).
    price(S, X) :- record(_, S),
        subelem(S, (?.td, [(elementtext, "\var[Y](\$|EUR|DM|Euro)", regvar)]), X),
        isCurrency(Y).
    bids(S, X) :- record(_, S), subelem(S, (?.td, []), X),
        before(S, X, (?.td, []), 0, 30, Y, _), price(_, Y).
"#;

/// The standard synthetic eBay site: one listing page at
/// `www.ebay.com/` (the URL the Figure 5 program fetches).
pub fn site(seed: u64, n: usize) -> (lixto_elog::StaticWeb, Vec<Auction>) {
    let records = auctions(seed, n);
    let mut web = lixto_elog::StaticWeb::new();
    web.put("www.ebay.com/", listing_page(&records));
    (web, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_elog::{parse_program, Extractor, EBAY_PROGRAM};

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(auctions(7, 5), auctions(7, 5));
        assert_ne!(auctions(7, 5), auctions(8, 5));
    }

    #[test]
    fn figure_5_wrapper_extracts_every_record() {
        let (web, records) = site(42, 12);
        let program = parse_program(EBAY_PROGRAM).unwrap();
        let result = Extractor::new(program, &web).run();
        // One record table per auction.
        assert_eq!(result.base.of_pattern("record").len(), records.len());
        // Every description extracted, in order.
        let descs = result.texts_of("itemdes");
        let want: Vec<String> = records.iter().map(|r| r.description.clone()).collect();
        assert_eq!(descs, want);
        // Prices carry the currency; bids are the cells right of prices.
        let prices = result.texts_of("price");
        assert_eq!(prices.len(), records.len());
        for (p, r) in prices.iter().zip(&records) {
            assert!(p.contains(r.currency), "{p} should contain {}", r.currency);
        }
        let bids = result.texts_of("bids");
        assert_eq!(bids.len(), records.len());
        for (b, r) in bids.iter().zip(&records) {
            assert_eq!(b, &r.bids.to_string());
        }
        // currency: string extraction from the price cells.
        let curs = result.texts_of("currency");
        assert_eq!(curs.len(), records.len());
        for (c, r) in curs.iter().zip(&records) {
            assert_eq!(c, r.currency);
        }
    }

    #[test]
    fn tableseq_is_exactly_the_record_block() {
        let (web, records) = site(1, 4);
        let program = parse_program(EBAY_PROGRAM).unwrap();
        let result = Extractor::new(program, &web).run();
        let seqs = result.base.of_pattern("tableseq");
        assert_eq!(seqs.len(), 1);
        match &result.base.instances[seqs[0]].target {
            lixto_elog::Target::NodeSeq { nodes, .. } => {
                assert_eq!(nodes.len(), records.len())
            }
            other => panic!("unexpected target {other:?}"),
        }
    }
}
