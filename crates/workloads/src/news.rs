//! Press / financial news pages (§6.3): headlines plus stock quotes, to be
//! re-emitted as NITF-style XML by the pipeline.

use crate::hash01;

/// A news item.
#[derive(Debug, Clone, PartialEq)]
pub struct NewsItem {
    /// Headline.
    pub headline: String,
    /// Ticker symbol the item mentions.
    pub ticker: &'static str,
    /// Quote at publication time.
    pub quote: f64,
}

/// Deterministic items.
pub fn items(seed: u64, n: usize) -> Vec<NewsItem> {
    const TICKERS: &[&str] = &["OMV", "EVN", "VOE", "RBI", "ANDR"];
    const VERBS: &[&str] = &["rises on", "falls after", "steady despite", "jumps on"];
    (0..n)
        .map(|i| {
            let r = hash01(seed, i as u64);
            let t = TICKERS[(r * TICKERS.len() as f64) as usize];
            let v = VERBS[((r * 7919.0) as usize) % VERBS.len()];
            NewsItem {
                headline: format!("{t} {v} Q{} results", i % 4 + 1),
                ticker: t,
                quote: 20.0 + (r * 80.0 * 100.0).round() / 100.0,
            }
        })
        .collect()
}

/// Render a press page.
pub fn press_page(items: &[NewsItem]) -> String {
    let mut h = String::from("<html><body><h1>Financial news</h1>\n");
    for it in items {
        h.push_str(&format!(
            "<div class=\"story\"><h2>{}</h2>\
             <span class=\"ticker\">{}</span>\
             <span class=\"quote\">{:.2}</span></div>\n",
            it.headline, it.ticker, it.quote
        ));
    }
    h.push_str("</body></html>");
    h
}

/// The press wrapper.
pub const NEWS_WRAPPER: &str = r#"
    story(S, X) :- document("http://press/finance", S),
        subelem(S, (?.div, [(class, "story", exact)]), X).
    headline(S, X) :- story(_, S), subelem(S, (.h2, []), X).
    ticker(S, X) :- story(_, S), subelem(S, (.span, [(class, "ticker", exact)]), X).
    quote(S, X) :- story(_, S), subelem(S, (.span, [(class, "quote", exact)]), X).
"#;

/// Web with one press page.
pub fn site(seed: u64, n: usize) -> (lixto_elog::StaticWeb, Vec<NewsItem>) {
    let its = items(seed, n);
    let mut web = lixto_elog::StaticWeb::new();
    web.put("http://press/finance", press_page(&its));
    (web, its)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_elog::{parse_program, Extractor};

    #[test]
    fn wrapper_extracts_stories() {
        let (web, its) = site(2, 7);
        let program = parse_program(NEWS_WRAPPER).unwrap();
        let result = Extractor::new(program, &web).run();
        assert_eq!(result.base.of_pattern("story").len(), 7);
        let heads = result.texts_of("headline");
        let want: Vec<String> = its.iter().map(|i| i.headline.clone()).collect();
        assert_eq!(heads, want);
    }
}
