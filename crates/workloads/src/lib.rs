//! # lixto-workloads
//!
//! Synthetic web sites, perturbation operators and baselines for the
//! application scenarios of Section 6 of the PODS 2004 Lixto paper.
//!
//! The paper's wrappers ran against live sites (eBay, Amazon, radio
//! playlists, flight portals, power exchanges). This crate substitutes
//! deterministic generators that emit the same DOM idioms those wrappers
//! key on — per-record tables, header/`<hr>` landmarks, hyperlinked
//! description cells, currency strings — so every wrapper code path is
//! exercised end to end (the substitution is documented in DESIGN.md).
//!
//! * [`ebay`] — auction listings shaped exactly like Figure 5 expects;
//! * [`books`] — two book-shop sites for the Figure 7 integration pipe;
//! * [`radio`] — 14 sources (radio playlists, charts, lyrics) for the
//!   "Now Playing" scenario (§6.1);
//! * [`flights`] — flight status tables with change events (§6.2);
//! * [`news`] — press pages for the clipping scenario (§6.3);
//! * [`power`] — spot-market price tables (§6.7);
//! * [`perturb`] — random irrelevant-markup injection for the robustness
//!   experiment E10 (§2.5's "schema-less wrappers don't break" claim);
//! * [`traffic`] — mixed-wrapper request streams from N simulated users
//!   for the `lixto_server` serving-layer experiments;
//! * [`http_traffic`] — the same streams rendered as `POST /extract`
//!   JSON bodies for driving the `lixto_http` gateway over the wire;
//! * [`induction`] — an LR wrapper-induction baseline for E11 (the
//!   learning contrast of §1/§7).

#![forbid(unsafe_code)]

pub mod books;
pub mod ebay;
pub mod flights;
pub mod http_traffic;
pub mod induction;
pub mod news;
pub mod perturb;
pub mod power;
pub mod radio;
pub mod traffic;

/// Deterministic pseudo-random f64 in [0,1) derived from a seed and index
/// (keeps generators dependency-light and reproducible).
pub(crate) fn hash01(seed: u64, i: u64) -> f64 {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}
