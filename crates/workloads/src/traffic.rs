//! Mixed-wrapper request traffic for the serving-layer experiments.
//!
//! Simulates N portal users hitting the extraction service with a
//! deterministic mix of the §6 scenarios — book shops, eBay auctions,
//! news clippings, flight status. Each wrapper draws its documents from
//! a small per-wrapper pool of variants, so the stream repeats documents
//! the way real traffic repeats slowly-changing pages (that repetition
//! is what a content-addressed result cache exists for).

use crate::perturb::{self, Perturbation};
use crate::{books, ebay, flights, hash01, news};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deployable wrapper: everything a registry needs to serve one of the
/// workload scenarios.
pub struct WrapperProfile {
    /// Registry name.
    pub name: &'static str,
    /// Entry URL the program's `document(...)` atom fetches.
    pub entry_url: &'static str,
    /// Elog source text.
    pub program: &'static str,
    /// Root element label for the output design.
    pub root: &'static str,
    /// Patterns to declare auxiliary in the output design.
    pub auxiliary: &'static [&'static str],
}

/// The five wrappers the traffic mix exercises.
pub fn profiles() -> Vec<WrapperProfile> {
    vec![
        WrapperProfile {
            name: "books_a",
            entry_url: "http://shop0/books",
            program: books::SHOP_A_WRAPPER,
            root: "shopA",
            auxiliary: &[],
        },
        WrapperProfile {
            name: "books_b",
            entry_url: "http://shop1/books",
            program: books::SHOP_B_WRAPPER,
            root: "shopB",
            auxiliary: &[],
        },
        WrapperProfile {
            name: "ebay",
            entry_url: "www.ebay.com/",
            program: lixto_elog::EBAY_PROGRAM,
            root: "auctions",
            auxiliary: &["tableseq"],
        },
        WrapperProfile {
            name: "news",
            entry_url: "http://press/finance",
            program: news::NEWS_WRAPPER,
            root: "clippings",
            auxiliary: &[],
        },
        WrapperProfile {
            name: "flights",
            entry_url: "http://airport/departures",
            program: flights::FLIGHT_WRAPPER,
            root: "departures",
            auxiliary: &[],
        },
    ]
}

/// One simulated request: `user` asks wrapper `wrapper` to extract the
/// page `html`, served at the wrapper's entry URL `url`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficRequest {
    /// Which simulated user issued it (0-based).
    pub user: usize,
    /// Wrapper profile name.
    pub wrapper: &'static str,
    /// Entry URL for the document.
    pub url: String,
    /// The document.
    pub html: String,
}

/// Distinct document variants each wrapper rotates through.
pub const VARIANTS_PER_WRAPPER: u64 = 3;

/// The page a wrapper sees for document variant `variant`.
pub fn page_for(wrapper: &str, seed: u64, variant: u64) -> String {
    let vseed = seed
        .wrapping_mul(31)
        .wrapping_add(variant.wrapping_mul(0x9E37));
    let n = 6 + (variant as usize % 3) * 3;
    page_sized(wrapper, vseed, n, variant)
}

/// A wrapper's page with exactly `rows` records — the knob benchmarks
/// use to measure extraction on realistically sized documents (the
/// rotating [`page_for`] variants stay small to keep serving tests
/// fast).
pub fn page_sized(wrapper: &str, vseed: u64, rows: usize, variant: u64) -> String {
    match wrapper {
        "books_a" => books::shop_page(&books::catalog(vseed, 0, rows)),
        "books_b" => books::shop_page(&books::catalog(vseed, 1, rows)),
        "ebay" => ebay::listing_page(&ebay::auctions(vseed, rows)),
        "news" => news::press_page(&news::items(vseed, rows)),
        "flights" => flights::status_page(&flights::flights(vseed, rows, variant)),
        other => panic!("unknown traffic wrapper {other:?}"),
    }
}

/// A deterministic request stream: `users` simulated users each issue
/// `per_user` requests, wrapper and document variant drawn per request.
/// The stream is interleaved round-robin across users (request *i* of
/// every user, then request *i+1*), the arrival order a concurrent
/// frontend would see.
pub fn requests(seed: u64, users: usize, per_user: usize) -> Vec<TrafficRequest> {
    let profiles = profiles();
    let mut out = Vec::with_capacity(users * per_user);
    for round in 0..per_user {
        for user in 0..users {
            let k = (user * per_user + round) as u64;
            let w = (hash01(seed, k) * profiles.len() as f64) as usize % profiles.len();
            let variant = (hash01(seed ^ 0xA5A5, k) * VARIANTS_PER_WRAPPER as f64) as u64
                % VARIANTS_PER_WRAPPER;
            let profile = &profiles[w];
            out.push(TrafficRequest {
                user,
                wrapper: profile.name,
                url: profile.entry_url.to_string(),
                html: page_for(profile.name, seed, variant),
            });
        }
    }
    out
}

/// Long-tail traffic: the same wrapper mix as [`requests`], but every
/// request draws its document from an effectively unbounded variant
/// space (the request index itself), so documents almost never repeat
/// and a content-addressed result cache almost always misses. This is
/// the stream that exercises the extraction *miss path* — the workload
/// behind the E15 compiled-plan experiment — where [`requests`]'s small
/// variant pools exercise the hit path.
pub fn long_tail_requests(seed: u64, users: usize, per_user: usize) -> Vec<TrafficRequest> {
    let profiles = profiles();
    let mut out = Vec::with_capacity(users * per_user);
    for round in 0..per_user {
        for user in 0..users {
            let k = (user * per_user + round) as u64;
            let w = (hash01(seed, k) * profiles.len() as f64) as usize % profiles.len();
            let profile = &profiles[w];
            out.push(TrafficRequest {
                user,
                wrapper: profile.name,
                url: profile.entry_url.to_string(),
                // Variant = stream position: unique per request, so each
                // page's content is distinct (modulo hash luck).
                html: page_for(profile.name, seed, k),
            });
        }
    }
    out
}

/// Restart-heavy traffic: the repetition-maximizing stream for the
/// persistence experiments (E17). Every wrapper cycles through a pool
/// of just `pool` document variants (default the first
/// [`VARIANTS_PER_WRAPPER`]), so a warmed result store answers almost
/// the whole stream from cache — and, after a process restart, a
/// *recovered* store should answer it equally well. Compare the
/// time-to-first-hit of a gateway replaying this stream after a restart
/// (disk recovery) against one rebuilding the cache by re-executing
/// plans (cold rewarm).
pub fn restart_requests(
    seed: u64,
    users: usize,
    per_user: usize,
    pool: u64,
) -> Vec<TrafficRequest> {
    let pool = pool.max(1);
    let profiles = profiles();
    let mut out = Vec::with_capacity(users * per_user);
    for round in 0..per_user {
        for user in 0..users {
            let k = (user * per_user + round) as u64;
            let w = (hash01(seed, k) * profiles.len() as f64) as usize % profiles.len();
            let profile = &profiles[w];
            out.push(TrafficRequest {
                user,
                wrapper: profile.name,
                url: profile.entry_url.to_string(),
                // Tiny per-wrapper pool: the k-th request reuses variant
                // k mod pool, so the stream revisits the same (wrapper,
                // document) pairs over and over.
                html: page_for(profile.name, seed, k % pool),
            });
        }
    }
    out
}

/// Epochs per content revision in the perturbed streams: within a
/// revision only irrelevant markup moves between epochs; on a revision
/// boundary the records themselves change.
pub const CONTENT_REVISION_EPOCHS: u64 = 4;

/// Sibling-level noise: the [`perturb`] operators every workload wrapper
/// survives (the literal Figure 5 eBay program in the mix breaks under
/// the re-nesting `WrapperDiv`, so that one stays out). Used to mutate
/// page *bytes* without touching the extracted records.
const SIBLING_NOISE: &[Perturbation] = &[
    Perturbation::TopBanner,
    Perturbation::Footer,
    Perturbation::AttrNoise,
];

fn wrapper_tag(wrapper: &str) -> u64 {
    wrapper
        .bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64))
}

/// The page a wrapper serves at mutation `epoch`: epoch-seeded
/// irrelevant sibling markup (a fresh banner plus one more [`perturb`]
/// operator) over a document whose records reseed only every
/// [`CONTENT_REVISION_EPOCHS`] epochs. Between two epochs of the same
/// revision the bytes differ but the extracted instances do not — a
/// byte-level change detector fires on every epoch, an instance-level
/// diff only on revision boundaries.
pub fn perturbed_page(wrapper: &str, seed: u64, variant: u64, epoch: u64) -> String {
    let revision = epoch / CONTENT_REVISION_EPOCHS;
    // Same vseed mix as [`page_for`] with the revision folded in, plus a
    // row count that cycles with the revision: some record pools (the
    // book catalogs) vary only their numeric fields with the seed, so
    // drifting the count is what guarantees consecutive revisions
    // extract differently for every wrapper.
    let vseed = (seed ^ revision.wrapping_mul(0x00C1_D0C5))
        .wrapping_mul(31)
        .wrapping_add(variant.wrapping_mul(0x9E37));
    let rows = 6 + (variant as usize % 3) * 3 + (revision % 3) as usize;
    let base = page_sized(wrapper, vseed, rows, variant);
    let mut rng = StdRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9) ^ epoch.wrapping_mul(0x85EB_CA6B) ^ wrapper_tag(wrapper),
    );
    let banner = perturb::apply(&base, Perturbation::TopBanner, &mut rng);
    let extra = SIBLING_NOISE[rng.gen_range(0..SIBLING_NOISE.len())];
    perturb::apply(&banner, extra, &mut rng)
}

/// Drifting-web traffic: the same mixed-wrapper stream as [`requests`],
/// replayed at mutation `epoch` with every document run through
/// [`perturbed_page`]. Replaying the stream at successive epochs models
/// sources that mutate between scheduler ticks: every page's bytes
/// change each epoch (so content-addressed caches miss and change
/// trackers fire), while the records change only when the content
/// revision advances. This is the interactive-traffic side of the E21
/// continuous-extraction experiment.
pub fn perturbed_requests(
    seed: u64,
    users: usize,
    per_user: usize,
    epoch: u64,
) -> Vec<TrafficRequest> {
    let profiles = profiles();
    let mut out = Vec::with_capacity(users * per_user);
    for round in 0..per_user {
        for user in 0..users {
            let k = (user * per_user + round) as u64;
            let w = (hash01(seed, k) * profiles.len() as f64) as usize % profiles.len();
            let variant = (hash01(seed ^ 0xA5A5, k) * VARIANTS_PER_WRAPPER as f64) as u64
                % VARIANTS_PER_WRAPPER;
            let profile = &profiles[w];
            out.push(TrafficRequest {
                user,
                wrapper: profile.name,
                url: profile.entry_url.to_string(),
                html: perturbed_page(profile.name, seed, variant, epoch),
            });
        }
    }
    out
}

/// A continuously-watched source for the subscription experiments: a
/// generated wrapper anchored at its own entry URL, extracting
/// `offer`/`name` instances from the listing page [`watch_page`] builds.
/// Fleets of these (one per watched URL) let the E21 experiment and the
/// watch tests run hundreds of live subscriptions without inventing
/// hundreds of scenarios.
pub struct WatchProfile {
    /// Registry name (`watch{i}`).
    pub name: String,
    /// Entry URL the program's `document(...)` atom fetches.
    pub url: String,
    /// Elog source text.
    pub program: String,
}

/// `n` watchable sources, `watch0..watch{n-1}`.
pub fn watch_profiles(n: usize) -> Vec<WatchProfile> {
    (0..n)
        .map(|i| {
            let url = format!("http://watch{i}/");
            WatchProfile {
                name: format!("watch{i}"),
                program: format!(
                    r#"
                    offer(S, X) :- document("{url}", S), subelem(S, (?.li, []), X).
                    name(S, X)  :- offer(_, S), subelem(S, (.b, []), X).
                    "#
                ),
                url,
            }
        })
        .collect()
}

/// The page `watch{i}` serves: three records whose texts are a
/// deterministic function of `(i, seed, revision)`, under epoch-seeded
/// banner noise. Advancing `epoch` alone moves bytes but not records
/// (a watch must deliver nothing); advancing `revision` changes every
/// record text (a watch must deliver exactly one diff).
pub fn watch_page(i: usize, seed: u64, revision: u64, epoch: u64) -> String {
    let mut html = String::from("<html><body><ul>");
    for row in 0..3usize {
        let stamp =
            (hash01(seed ^ revision.wrapping_mul(0x51AB), (i * 8 + row) as u64) * 1e6) as u64;
        html.push_str(&format!("<li><b>w{i}-r{row}-{stamp}</b></li>"));
    }
    html.push_str("</ul></body></html>");
    let mut rng = StdRng::seed_from_u64(seed ^ epoch.wrapping_mul(0x85EB_CA6B) ^ ((i as u64) << 7));
    perturb::apply(&html, Perturbation::TopBanner, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_elog::{parse_program, ExtractionResult, Extractor, SinglePage};

    #[test]
    fn stream_is_deterministic_and_sized() {
        let a = requests(7, 4, 5);
        let b = requests(7, 4, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        assert!(requests(8, 4, 5) != a, "seed must matter");
    }

    #[test]
    fn mix_covers_every_wrapper_and_repeats_documents() {
        let reqs = requests(3, 16, 8);
        for p in profiles() {
            assert!(
                reqs.iter().any(|r| r.wrapper == p.name),
                "wrapper {} never drawn",
                p.name
            );
        }
        // Small variant pools mean repeated documents — the cache's diet.
        let mut seen = std::collections::HashSet::new();
        let mut repeats = 0usize;
        for r in &reqs {
            if !seen.insert((r.wrapper, r.html.clone())) {
                repeats += 1;
            }
        }
        assert!(repeats > 0, "traffic must repeat documents");
    }

    #[test]
    fn long_tail_traffic_rarely_repeats_documents() {
        let reqs = long_tail_requests(3, 16, 8);
        assert_eq!(reqs.len(), 128);
        assert_eq!(reqs, long_tail_requests(3, 16, 8), "deterministic");
        let distinct: std::collections::HashSet<(&str, &str)> =
            reqs.iter().map(|r| (r.wrapper, r.html.as_str())).collect();
        assert!(
            distinct.len() * 10 >= reqs.len() * 9,
            "long-tail traffic must be ≥90% distinct documents, got {}/{}",
            distinct.len(),
            reqs.len()
        );
        // Still a mixed stream: every wrapper is drawn.
        for p in profiles() {
            assert!(reqs.iter().any(|r| r.wrapper == p.name));
        }
        // And the pages still extract.
        for r in reqs.iter().take(10) {
            let p = profiles()
                .into_iter()
                .find(|p| p.name == r.wrapper)
                .unwrap();
            let program = parse_program(p.program).unwrap();
            let web = SinglePage {
                url: r.url.clone(),
                html: r.html.clone(),
            };
            assert!(!Extractor::new(program, &web).run().base.is_empty());
        }
    }

    #[test]
    fn restart_traffic_reuses_a_tiny_document_pool() {
        let reqs = restart_requests(3, 8, 16, 2);
        assert_eq!(reqs.len(), 128);
        assert_eq!(reqs, restart_requests(3, 8, 16, 2), "deterministic");
        let distinct: std::collections::HashSet<(&str, &str)> =
            reqs.iter().map(|r| (r.wrapper, r.html.as_str())).collect();
        // 5 wrappers × pool of 2 = at most 10 distinct pairs in 128
        // requests: the stream is nearly all repeats.
        assert!(
            distinct.len() <= 10,
            "restart traffic must draw from the tiny pool, got {} distinct pairs",
            distinct.len()
        );
        for p in profiles() {
            assert!(reqs.iter().any(|r| r.wrapper == p.name));
        }
    }

    /// Pattern → texts, the markup-insensitive view of a result (node
    /// ids shift when banners land, texts must not).
    fn text_fingerprint(result: &ExtractionResult) -> Vec<(String, Vec<String>)> {
        result
            .patterns()
            .iter()
            .map(|p| (p.clone(), result.texts_of(p)))
            .collect()
    }

    fn extract(profile: &WrapperProfile, html: String) -> ExtractionResult {
        let program = parse_program(profile.program).unwrap();
        let web = SinglePage {
            url: profile.entry_url.to_string(),
            html,
        };
        Extractor::new(program, &web).run()
    }

    #[test]
    fn perturbed_pages_move_bytes_every_epoch_but_records_only_on_revisions() {
        for p in profiles() {
            let e0 = perturbed_page(p.name, 11, 0, 0);
            let e1 = perturbed_page(p.name, 11, 0, 1);
            assert_ne!(e0, e1, "{}: bytes must move between epochs", p.name);
            let f0 = text_fingerprint(&extract(&p, e0));
            assert!(
                f0.iter().any(|(_, texts)| !texts.is_empty()),
                "{}: perturbed page must still extract",
                p.name
            );
            assert_eq!(
                f0,
                text_fingerprint(&extract(&p, e1)),
                "{}: same revision must extract identically",
                p.name
            );
            // First epoch of the next revision: the records reseed.
            let next = perturbed_page(p.name, 11, 0, CONTENT_REVISION_EPOCHS);
            assert_ne!(
                f0,
                text_fingerprint(&extract(&p, next)),
                "{}: a revision boundary must change the records",
                p.name
            );
        }
    }

    #[test]
    fn perturbed_stream_is_deterministic_and_epoch_sensitive() {
        let a = perturbed_requests(7, 4, 5, 2);
        assert_eq!(a, perturbed_requests(7, 4, 5, 2));
        assert_eq!(a.len(), 20);
        let b = perturbed_requests(7, 4, 5, 3);
        // Same draws, different pages: the stream shape is stable while
        // every document mutates.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.user, x.wrapper), (y.user, y.wrapper));
            assert_ne!(x.html, y.html);
        }
    }

    #[test]
    fn watch_profiles_extract_their_own_pages_and_revisions_change_records() {
        let profiles = watch_profiles(3);
        for (i, p) in profiles.iter().enumerate() {
            let program = parse_program(&p.program).unwrap();
            let run = |html: String| {
                let web = SinglePage {
                    url: p.url.clone(),
                    html,
                };
                Extractor::new(program.clone(), &web).run()
            };
            let r0 = run(watch_page(i, 11, 0, 0));
            assert_eq!(r0.texts_of("name").len(), 3, "{}", p.name);
            // Epoch-only movement: new bytes, same records.
            assert_ne!(watch_page(i, 11, 0, 0), watch_page(i, 11, 0, 1));
            let r1 = run(watch_page(i, 11, 0, 1));
            assert_eq!(text_fingerprint(&r0), text_fingerprint(&r1));
            // Revision movement: every record text changes.
            let r2 = run(watch_page(i, 11, 1, 1));
            assert_eq!(r2.texts_of("name").len(), 3);
            assert_ne!(r0.texts_of("name"), r2.texts_of("name"));
        }
    }

    #[test]
    fn every_profile_extracts_from_its_own_pages() {
        for p in profiles() {
            let program = parse_program(p.program).unwrap();
            for variant in 0..VARIANTS_PER_WRAPPER {
                let web = SinglePage {
                    url: p.entry_url.to_string(),
                    html: page_for(p.name, 11, variant),
                };
                let result = Extractor::new(program.clone(), &web).run();
                assert!(
                    !result.base.is_empty(),
                    "{} extracted nothing from variant {variant}",
                    p.name
                );
            }
        }
    }
}
