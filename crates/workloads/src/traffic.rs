//! Mixed-wrapper request traffic for the serving-layer experiments.
//!
//! Simulates N portal users hitting the extraction service with a
//! deterministic mix of the §6 scenarios — book shops, eBay auctions,
//! news clippings, flight status. Each wrapper draws its documents from
//! a small per-wrapper pool of variants, so the stream repeats documents
//! the way real traffic repeats slowly-changing pages (that repetition
//! is what a content-addressed result cache exists for).

use crate::{books, ebay, flights, hash01, news};

/// A deployable wrapper: everything a registry needs to serve one of the
/// workload scenarios.
pub struct WrapperProfile {
    /// Registry name.
    pub name: &'static str,
    /// Entry URL the program's `document(...)` atom fetches.
    pub entry_url: &'static str,
    /// Elog source text.
    pub program: &'static str,
    /// Root element label for the output design.
    pub root: &'static str,
    /// Patterns to declare auxiliary in the output design.
    pub auxiliary: &'static [&'static str],
}

/// The five wrappers the traffic mix exercises.
pub fn profiles() -> Vec<WrapperProfile> {
    vec![
        WrapperProfile {
            name: "books_a",
            entry_url: "http://shop0/books",
            program: books::SHOP_A_WRAPPER,
            root: "shopA",
            auxiliary: &[],
        },
        WrapperProfile {
            name: "books_b",
            entry_url: "http://shop1/books",
            program: books::SHOP_B_WRAPPER,
            root: "shopB",
            auxiliary: &[],
        },
        WrapperProfile {
            name: "ebay",
            entry_url: "www.ebay.com/",
            program: lixto_elog::EBAY_PROGRAM,
            root: "auctions",
            auxiliary: &["tableseq"],
        },
        WrapperProfile {
            name: "news",
            entry_url: "http://press/finance",
            program: news::NEWS_WRAPPER,
            root: "clippings",
            auxiliary: &[],
        },
        WrapperProfile {
            name: "flights",
            entry_url: "http://airport/departures",
            program: flights::FLIGHT_WRAPPER,
            root: "departures",
            auxiliary: &[],
        },
    ]
}

/// One simulated request: `user` asks wrapper `wrapper` to extract the
/// page `html`, served at the wrapper's entry URL `url`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficRequest {
    /// Which simulated user issued it (0-based).
    pub user: usize,
    /// Wrapper profile name.
    pub wrapper: &'static str,
    /// Entry URL for the document.
    pub url: String,
    /// The document.
    pub html: String,
}

/// Distinct document variants each wrapper rotates through.
pub const VARIANTS_PER_WRAPPER: u64 = 3;

/// The page a wrapper sees for document variant `variant`.
pub fn page_for(wrapper: &str, seed: u64, variant: u64) -> String {
    let vseed = seed
        .wrapping_mul(31)
        .wrapping_add(variant.wrapping_mul(0x9E37));
    let n = 6 + (variant as usize % 3) * 3;
    page_sized(wrapper, vseed, n, variant)
}

/// A wrapper's page with exactly `rows` records — the knob benchmarks
/// use to measure extraction on realistically sized documents (the
/// rotating [`page_for`] variants stay small to keep serving tests
/// fast).
pub fn page_sized(wrapper: &str, vseed: u64, rows: usize, variant: u64) -> String {
    match wrapper {
        "books_a" => books::shop_page(&books::catalog(vseed, 0, rows)),
        "books_b" => books::shop_page(&books::catalog(vseed, 1, rows)),
        "ebay" => ebay::listing_page(&ebay::auctions(vseed, rows)),
        "news" => news::press_page(&news::items(vseed, rows)),
        "flights" => flights::status_page(&flights::flights(vseed, rows, variant)),
        other => panic!("unknown traffic wrapper {other:?}"),
    }
}

/// A deterministic request stream: `users` simulated users each issue
/// `per_user` requests, wrapper and document variant drawn per request.
/// The stream is interleaved round-robin across users (request *i* of
/// every user, then request *i+1*), the arrival order a concurrent
/// frontend would see.
pub fn requests(seed: u64, users: usize, per_user: usize) -> Vec<TrafficRequest> {
    let profiles = profiles();
    let mut out = Vec::with_capacity(users * per_user);
    for round in 0..per_user {
        for user in 0..users {
            let k = (user * per_user + round) as u64;
            let w = (hash01(seed, k) * profiles.len() as f64) as usize % profiles.len();
            let variant = (hash01(seed ^ 0xA5A5, k) * VARIANTS_PER_WRAPPER as f64) as u64
                % VARIANTS_PER_WRAPPER;
            let profile = &profiles[w];
            out.push(TrafficRequest {
                user,
                wrapper: profile.name,
                url: profile.entry_url.to_string(),
                html: page_for(profile.name, seed, variant),
            });
        }
    }
    out
}

/// Long-tail traffic: the same wrapper mix as [`requests`], but every
/// request draws its document from an effectively unbounded variant
/// space (the request index itself), so documents almost never repeat
/// and a content-addressed result cache almost always misses. This is
/// the stream that exercises the extraction *miss path* — the workload
/// behind the E15 compiled-plan experiment — where [`requests`]'s small
/// variant pools exercise the hit path.
pub fn long_tail_requests(seed: u64, users: usize, per_user: usize) -> Vec<TrafficRequest> {
    let profiles = profiles();
    let mut out = Vec::with_capacity(users * per_user);
    for round in 0..per_user {
        for user in 0..users {
            let k = (user * per_user + round) as u64;
            let w = (hash01(seed, k) * profiles.len() as f64) as usize % profiles.len();
            let profile = &profiles[w];
            out.push(TrafficRequest {
                user,
                wrapper: profile.name,
                url: profile.entry_url.to_string(),
                // Variant = stream position: unique per request, so each
                // page's content is distinct (modulo hash luck).
                html: page_for(profile.name, seed, k),
            });
        }
    }
    out
}

/// Restart-heavy traffic: the repetition-maximizing stream for the
/// persistence experiments (E17). Every wrapper cycles through a pool
/// of just `pool` document variants (default the first
/// [`VARIANTS_PER_WRAPPER`]), so a warmed result store answers almost
/// the whole stream from cache — and, after a process restart, a
/// *recovered* store should answer it equally well. Compare the
/// time-to-first-hit of a gateway replaying this stream after a restart
/// (disk recovery) against one rebuilding the cache by re-executing
/// plans (cold rewarm).
pub fn restart_requests(
    seed: u64,
    users: usize,
    per_user: usize,
    pool: u64,
) -> Vec<TrafficRequest> {
    let pool = pool.max(1);
    let profiles = profiles();
    let mut out = Vec::with_capacity(users * per_user);
    for round in 0..per_user {
        for user in 0..users {
            let k = (user * per_user + round) as u64;
            let w = (hash01(seed, k) * profiles.len() as f64) as usize % profiles.len();
            let profile = &profiles[w];
            out.push(TrafficRequest {
                user,
                wrapper: profile.name,
                url: profile.entry_url.to_string(),
                // Tiny per-wrapper pool: the k-th request reuses variant
                // k mod pool, so the stream revisits the same (wrapper,
                // document) pairs over and over.
                html: page_for(profile.name, seed, k % pool),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_elog::{parse_program, Extractor, SinglePage};

    #[test]
    fn stream_is_deterministic_and_sized() {
        let a = requests(7, 4, 5);
        let b = requests(7, 4, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        assert!(requests(8, 4, 5) != a, "seed must matter");
    }

    #[test]
    fn mix_covers_every_wrapper_and_repeats_documents() {
        let reqs = requests(3, 16, 8);
        for p in profiles() {
            assert!(
                reqs.iter().any(|r| r.wrapper == p.name),
                "wrapper {} never drawn",
                p.name
            );
        }
        // Small variant pools mean repeated documents — the cache's diet.
        let mut seen = std::collections::HashSet::new();
        let mut repeats = 0usize;
        for r in &reqs {
            if !seen.insert((r.wrapper, r.html.clone())) {
                repeats += 1;
            }
        }
        assert!(repeats > 0, "traffic must repeat documents");
    }

    #[test]
    fn long_tail_traffic_rarely_repeats_documents() {
        let reqs = long_tail_requests(3, 16, 8);
        assert_eq!(reqs.len(), 128);
        assert_eq!(reqs, long_tail_requests(3, 16, 8), "deterministic");
        let distinct: std::collections::HashSet<(&str, &str)> =
            reqs.iter().map(|r| (r.wrapper, r.html.as_str())).collect();
        assert!(
            distinct.len() * 10 >= reqs.len() * 9,
            "long-tail traffic must be ≥90% distinct documents, got {}/{}",
            distinct.len(),
            reqs.len()
        );
        // Still a mixed stream: every wrapper is drawn.
        for p in profiles() {
            assert!(reqs.iter().any(|r| r.wrapper == p.name));
        }
        // And the pages still extract.
        for r in reqs.iter().take(10) {
            let p = profiles()
                .into_iter()
                .find(|p| p.name == r.wrapper)
                .unwrap();
            let program = parse_program(p.program).unwrap();
            let web = SinglePage {
                url: r.url.clone(),
                html: r.html.clone(),
            };
            assert!(!Extractor::new(program, &web).run().base.is_empty());
        }
    }

    #[test]
    fn restart_traffic_reuses_a_tiny_document_pool() {
        let reqs = restart_requests(3, 8, 16, 2);
        assert_eq!(reqs.len(), 128);
        assert_eq!(reqs, restart_requests(3, 8, 16, 2), "deterministic");
        let distinct: std::collections::HashSet<(&str, &str)> =
            reqs.iter().map(|r| (r.wrapper, r.html.as_str())).collect();
        // 5 wrappers × pool of 2 = at most 10 distinct pairs in 128
        // requests: the stream is nearly all repeats.
        assert!(
            distinct.len() <= 10,
            "restart traffic must draw from the tiny pool, got {} distinct pairs",
            distinct.len()
        );
        for p in profiles() {
            assert!(reqs.iter().any(|r| r.wrapper == p.name));
        }
    }

    #[test]
    fn every_profile_extracts_from_its_own_pages() {
        for p in profiles() {
            let program = parse_program(p.program).unwrap();
            for variant in 0..VARIANTS_PER_WRAPPER {
                let web = SinglePage {
                    url: p.entry_url.to_string(),
                    html: page_for(p.name, 11, variant),
                };
                let result = Extractor::new(program.clone(), &web).run();
                assert!(
                    !result.base.is_empty(),
                    "{} extracted nothing from variant {variant}",
                    p.name
                );
            }
        }
    }
}
