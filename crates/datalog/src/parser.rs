//! Textual datalog parser.
//!
//! Syntax:
//!
//! ```text
//! program := (rule)*
//! rule    := atom (":-" literal ("," literal)*)? "."
//! literal := ("not" | "!")? atom
//! atom    := ident "(" term ("," term)* ")"
//! term    := Variable | "string constant"
//! ```
//!
//! Identifiers starting with an uppercase letter (or `_`) are variables;
//! everything else is a predicate name. `%` starts a line comment.

use crate::ast::{Atom, Literal, Program, Rule, Term};

/// Parse error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset.
    pub at: usize,
    /// Message.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "datalog parse error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a datalog program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut p = Parser {
        src: src.as_bytes(),
        text: src,
        pos: 0,
    };
    let mut rules = Vec::new();
    loop {
        p.skip_trivia();
        if p.pos >= p.src.len() {
            break;
        }
        rules.push(p.rule()?);
    }
    Ok(Program::new(rules))
}

struct Parser<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, m: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: m.to_string(),
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.src.len() && self.src[self.pos] == b'%' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_trivia();
        if self.text[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{s}'")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_trivia();
        let start = self.pos;
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.err("expected an identifier"));
        }
        Ok(self.text[start..self.pos].to_string())
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let head = self.atom()?;
        let mut body = Vec::new();
        if self.eat(":-") {
            loop {
                body.push(self.literal()?);
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect(".")?;
        Ok(Rule { head, body })
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        self.skip_trivia();
        let negated = if self.eat("!") {
            true
        } else {
            // "not" only counts when followed by a non-ident char or '('.
            let save = self.pos;
            if self.eat("not") {
                let next = self.src.get(self.pos).copied();
                match next {
                    Some(b) if b.is_ascii_alphanumeric() || b == b'_' => {
                        self.pos = save; // identifier starting with "not…"
                        false
                    }
                    _ => true,
                }
            } else {
                false
            }
        };
        let atom = self.atom()?;
        Ok(if negated {
            Literal::neg(atom)
        } else {
            Literal::pos(atom)
        })
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let pred = self.ident()?;
        if pred.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            return Err(self.err("predicate names must start lowercase"));
        }
        self.expect("(")?;
        let mut args = Vec::new();
        loop {
            args.push(self.term()?);
            if !self.eat(",") {
                break;
            }
        }
        self.expect(")")?;
        Ok(Atom { pred, args })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        self.skip_trivia();
        match self.src.get(self.pos) {
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos] != b'"' {
                    self.pos += 1;
                }
                if self.pos >= self.src.len() {
                    return Err(self.err("unterminated string constant"));
                }
                let s = self.text[start..self.pos].to_string();
                self.pos += 1;
                Ok(Term::Const(s))
            }
            Some(b) if b.is_ascii_alphabetic() || *b == b'_' => {
                let name = self.ident()?;
                if name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_uppercase() || c == '_')
                {
                    Ok(Term::Var(name))
                } else {
                    // lowercase bare word = symbolic constant
                    Ok(Term::Const(name))
                }
            }
            _ => Err(self.err("expected a term")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facts_and_rules() {
        let p = parse_program(r#"edge(a, b). path(X, Y) :- edge(X, Y)."#).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.rules[0].body.is_empty());
        assert_eq!(p.rules[1].body.len(), 1);
    }

    #[test]
    fn variables_vs_constants() {
        let p = parse_program(r#"q(X) :- r(X, foo, "Bar Baz", _Y)."#).unwrap();
        let atom = &p.rules[0].body[0].atom;
        assert_eq!(atom.args[0], Term::Var("X".into()));
        assert_eq!(atom.args[1], Term::Const("foo".into()));
        assert_eq!(atom.args[2], Term::Const("Bar Baz".into()));
        assert_eq!(atom.args[3], Term::Var("_Y".into()));
    }

    #[test]
    fn negation_forms() {
        let p = parse_program("q(X) :- r(X), not s(X), !t(X).").unwrap();
        let b = &p.rules[0].body;
        assert!(b[0].positive);
        assert!(!b[1].positive);
        assert!(!b[2].positive);
    }

    #[test]
    fn not_prefixed_identifier_is_not_negation() {
        let p = parse_program("q(X) :- notable(X).").unwrap();
        assert!(p.rules[0].body[0].positive);
        assert_eq!(p.rules[0].body[0].atom.pred, "notable");
    }

    #[test]
    fn comments_ignored() {
        let p = parse_program("% the italics program\nitalic(X) :- label(X, \"i\"). % seed rule\n")
            .unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn errors() {
        assert!(parse_program("q(X)").is_err()); // missing dot
        assert!(parse_program("q(X) :- .").is_err());
        assert!(parse_program("Q(X) :- r(X).").is_err()); // uppercase predicate
        assert!(parse_program(r#"q(X) :- r("unterminated)."#).is_err());
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse_program("q(X):-r(X),s(X).").unwrap();
        let b = parse_program("q( X ) :- r( X ) , s( X ) .").unwrap();
        assert_eq!(a, b);
    }
}
