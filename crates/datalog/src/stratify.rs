//! Stratification of programs with negation.
//!
//! Standard semantics: assign each intensional predicate a stratum such
//! that positive dependencies stay within or below the consumer's stratum
//! and negative dependencies are *strictly* below. A program admitting such
//! an assignment is stratified; evaluation proceeds stratum by stratum,
//! treating lower strata as extensional.

use std::collections::HashMap;

use crate::ast::Program;
use crate::EvalError;

/// Compute a stratification: predicate → stratum index (0-based), plus the
/// total number of strata.
///
/// Returns [`EvalError::NotStratified`] if negation occurs in a dependency
/// cycle.
pub fn stratify(program: &Program) -> Result<(HashMap<String, usize>, usize), EvalError> {
    let idb: Vec<String> = program.idb_predicates();
    let mut stratum: HashMap<String, usize> = idb.iter().map(|p| (p.clone(), 0)).collect();
    let n = idb.len().max(1);

    // Bellman-Ford style relaxation: at most n rounds; further change
    // implies an increasing cycle through a negative edge.
    for round in 0..=n {
        let mut changed = false;
        for rule in &program.rules {
            let head_s = stratum[&rule.head.pred];
            let mut need = head_s;
            for lit in &rule.body {
                if let Some(&body_s) = stratum.get(&lit.atom.pred) {
                    let req = if lit.positive { body_s } else { body_s + 1 };
                    need = need.max(req);
                }
            }
            if need > head_s {
                stratum.insert(rule.head.pred.clone(), need);
                changed = true;
            }
        }
        if !changed {
            let max = stratum.values().copied().max().unwrap_or(0);
            return Ok((stratum, max + 1));
        }
        if round == n {
            break;
        }
    }
    // Find a culprit for the error message: any predicate at stratum > n.
    let culprit = stratum
        .iter()
        .max_by_key(|(_, &s)| s)
        .map(|(p, _)| p.clone())
        .unwrap_or_default();
    Err(EvalError::NotStratified(culprit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn positive_program_is_one_stratum() {
        let p = parse_program("a(X) :- b(X). b(X) :- a(X). a(X) :- root(X).").unwrap();
        let (s, n) = stratify(&p).unwrap();
        assert_eq!(n, 1);
        assert_eq!(s["a"], 0);
        assert_eq!(s["b"], 0);
    }

    #[test]
    fn negation_pushes_consumer_up() {
        let p = parse_program("base(X) :- leaf(X). derived(X) :- root(X), not base(X).").unwrap();
        let (s, n) = stratify(&p).unwrap();
        assert_eq!(n, 2);
        assert!(s["derived"] > s["base"]);
    }

    #[test]
    fn negation_cycle_rejected() {
        let p = parse_program("a(X) :- root(X), not b(X). b(X) :- root(X), not a(X).").unwrap();
        assert!(matches!(stratify(&p), Err(EvalError::NotStratified(_))));
    }

    #[test]
    fn positive_cycle_through_negation_free_zone_is_fine() {
        let p = parse_program(
            r#"reach(X) :- root(X).
               reach(X) :- reach(Y), child(Y, X).
               unreached(X) :- label(X, "p"), not reach(X)."#,
        )
        .unwrap();
        let (s, n) = stratify(&p).unwrap();
        assert_eq!(n, 2);
        assert_eq!(s["reach"], 0);
        assert_eq!(s["unreached"], 1);
    }

    #[test]
    fn three_strata_chain() {
        let p =
            parse_program("a(X) :- root(X). b(X) :- root(X), not a(X). c(X) :- root(X), not b(X).")
                .unwrap();
        let (s, n) = stratify(&p).unwrap();
        assert_eq!(n, 3);
        assert!(s["a"] < s["b"] && s["b"] < s["c"]);
    }
}
