//! Stratified semi-naive evaluation over arbitrary finite structures.
//!
//! This is the *general* engine of the complexity story: monadic datalog
//! over arbitrary structures is NP-complete in combined complexity
//! (Proposition 2.3) because rule bodies are conjunctive queries; the
//! nested-loop joins here are exact but can take time exponential in the
//! rule size — precisely the behaviour experiment E3 contrasts with the
//! linear tree pipeline.
//!
//! Supported: arbitrary arities, constants in any position, stratified
//! negation, facts in the program text.

use std::collections::HashMap;

use crate::ast::{Atom, Literal, Program, Rule, Term};
use crate::stratify::stratify;
use crate::structure::{Database, Relation};
use crate::EvalError;

/// Evaluate `program` over `db`, returning a database containing **only**
/// the intensional relations (inputs are not copied).
pub fn eval(db: &Database, program: &Program) -> Result<Database, EvalError> {
    program.check_arities()?;
    let (strata, n_strata) = stratify(program)?;
    let mut idb = Database::with_constants_of(db);
    // Program constants may introduce fresh values (facts like
    // `color(red).`); intern them up front so head emission can resolve
    // them.
    for rule in &program.rules {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter().map(|l| &l.atom)) {
            for term in &atom.args {
                if let Term::Const(c) = term {
                    if db.lookup(c).is_none() {
                        idb.intern(c);
                    }
                }
            }
        }
    }

    for s in 0..n_strata {
        let rules: Vec<&Rule> = program
            .rules
            .iter()
            .filter(|r| strata[&r.head.pred] == s)
            .collect();
        eval_stratum(db, &mut idb, &rules)?;
    }
    Ok(idb)
}

fn eval_stratum(edb: &Database, idb: &mut Database, rules: &[&Rule]) -> Result<(), EvalError> {
    // Semi-naive loop: track per-predicate deltas of the current stratum.
    // Rules whose bodies mention no current-stratum predicate fire once.
    let current: Vec<&str> = rules.iter().map(|r| r.head.pred.as_str()).collect();
    let is_current = |p: &str| current.contains(&p);

    // Round 0: fire every rule against the full (edb + lower-strata idb).
    let mut delta: HashMap<String, Vec<Vec<u32>>> = HashMap::new();
    for rule in rules {
        let derived = eval_rule(edb, idb, rule, None)?;
        for t in derived {
            if insert_idb(idb, &rule.head, &t) {
                delta.entry(rule.head.pred.clone()).or_default().push(t);
            }
        }
    }
    // Iterate: re-fire recursive rules seeded by deltas.
    while !delta.is_empty() {
        let mut next_delta: HashMap<String, Vec<Vec<u32>>> = HashMap::new();
        for rule in rules {
            // For each body literal over a current-stratum predicate, join
            // its delta against full relations for the rest.
            for (i, lit) in rule.body.iter().enumerate() {
                if !lit.positive || !is_current(&lit.atom.pred) {
                    continue;
                }
                let Some(d) = delta.get(&lit.atom.pred) else {
                    continue;
                };
                let derived = eval_rule(edb, idb, rule, Some((i, d)))?;
                for t in derived {
                    if insert_idb(idb, &rule.head, &t) {
                        next_delta
                            .entry(rule.head.pred.clone())
                            .or_default()
                            .push(t);
                    }
                }
            }
        }
        delta = next_delta;
    }
    Ok(())
}

fn insert_idb(idb: &mut Database, head: &Atom, tuple: &[u32]) -> bool {
    if idb.contains(&head.pred, tuple) {
        false
    } else {
        idb.add(&head.pred, tuple.to_vec());
        true
    }
}

/// Evaluate one rule body; `delta_at` optionally pins literal `i` to a
/// delta tuple set instead of the full relation.
fn eval_rule(
    edb: &Database,
    idb: &Database,
    rule: &Rule,
    delta_at: Option<(usize, &Vec<Vec<u32>>)>,
) -> Result<Vec<Vec<u32>>, EvalError> {
    // Order literals: positives first (negation needs bound variables).
    let mut order: Vec<usize> = (0..rule.body.len()).collect();
    order.sort_by_key(|&i| !rule.body[i].positive);

    let mut results = Vec::new();
    let mut binding: HashMap<&str, u32> = HashMap::new();
    join(
        edb,
        idb,
        rule,
        &order,
        0,
        delta_at,
        &mut binding,
        &mut results,
    )?;
    Ok(results)
}

#[allow(clippy::too_many_arguments)]
fn join<'r>(
    edb: &Database,
    idb: &Database,
    rule: &'r Rule,
    order: &[usize],
    depth: usize,
    delta_at: Option<(usize, &Vec<Vec<u32>>)>,
    binding: &mut HashMap<&'r str, u32>,
    results: &mut Vec<Vec<u32>>,
) -> Result<(), EvalError> {
    if depth == order.len() {
        // Emit head tuple.
        let mut t = Vec::with_capacity(rule.head.args.len());
        for arg in &rule.head.args {
            match arg {
                Term::Var(v) => match binding.get(v.as_str()) {
                    Some(&c) => t.push(c),
                    None => return Err(EvalError::Unsafe(rule.to_string())),
                },
                Term::Const(c) => {
                    // Head constants must already exist in the database; a
                    // fact can introduce them via the program database.
                    let id = edb
                        .lookup(c)
                        .or_else(|| idb.lookup(c))
                        .ok_or_else(|| EvalError::UnknownPredicate(format!("constant {c}")))?;
                    t.push(id);
                }
            }
        }
        results.push(t);
        return Ok(());
    }
    let li = order[depth];
    let lit: &'r Literal = &rule.body[li];
    let pred = lit.atom.pred.as_str();

    if !lit.positive {
        // All variables must be bound.
        let mut t = Vec::with_capacity(lit.atom.args.len());
        for arg in &lit.atom.args {
            match arg {
                Term::Var(v) => match binding.get(v.as_str()) {
                    Some(&c) => t.push(c),
                    None => return Err(EvalError::Unsafe(rule.to_string())),
                },
                Term::Const(c) => match edb.lookup(c).or_else(|| idb.lookup(c)) {
                    Some(id) => t.push(id),
                    None => {
                        // Unknown constant: the positive fact cannot hold,
                        // so the negation is satisfied.
                        return join(edb, idb, rule, order, depth + 1, delta_at, binding, results);
                    }
                },
            }
        }
        let holds = edb.contains(pred, &t) || idb.contains(pred, &t);
        if !holds {
            join(edb, idb, rule, order, depth + 1, delta_at, binding, results)?;
        }
        return Ok(());
    }

    // Positive literal: choose tuple source.
    let scan_delta;
    let scan_full_edb;
    let scan_full_idb;
    match delta_at {
        Some((i, d)) if i == li => {
            scan_delta = Some(d);
            scan_full_edb = None;
            scan_full_idb = None;
        }
        _ => {
            scan_delta = None;
            scan_full_edb = edb.relation(pred);
            scan_full_idb = idb.relation(pred);
        }
    }
    let try_tuple = |tuple: &Vec<u32>,
                     binding: &mut HashMap<&'r str, u32>,
                     results: &mut Vec<Vec<u32>>|
     -> Result<(), EvalError> {
        let mut newly_bound: Vec<&str> = Vec::new();
        let mut ok = true;
        if tuple.len() != lit.atom.args.len() {
            return Err(EvalError::ArityMismatch(pred.to_string()));
        }
        for (arg, &c) in lit.atom.args.iter().zip(tuple.iter()) {
            match arg {
                Term::Var(v) => match binding.get(v.as_str()) {
                    Some(&b) if b != c => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        binding.insert(v.as_str(), c);
                        newly_bound.push(v.as_str());
                    }
                },
                Term::Const(name) => {
                    let id = edb.lookup(name).or_else(|| idb.lookup(name));
                    if id != Some(c) {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if ok {
            join(edb, idb, rule, order, depth + 1, delta_at, binding, results)?;
        }
        for v in newly_bound {
            binding.remove(v);
        }
        Ok(())
    };

    if let Some(d) = scan_delta {
        for tuple in d {
            try_tuple(tuple, binding, results)?;
        }
    } else {
        let empty = Relation::default();
        let e = scan_full_edb.unwrap_or(&empty);
        for tuple in &e.tuples {
            try_tuple(tuple, binding, results)?;
        }
        let i = scan_full_idb.unwrap_or(&empty);
        for tuple in &i.tuples {
            try_tuple(tuple, binding, results)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;
    use crate::structure::tree_db;
    use lixto_tree::build::from_sexp;

    #[test]
    fn transitive_closure() {
        let mut db = Database::new();
        db.add_fact("edge", &["a", "b"]);
        db.add_fact("edge", &["b", "c"]);
        db.add_fact("edge", &["c", "d"]);
        let p = parse_program("path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y), edge(Y, Z).")
            .unwrap();
        let out = eval(&db, &p).unwrap();
        assert_eq!(out.count("path"), 6);
        let (a, d) = (db.lookup("a").unwrap(), db.lookup("d").unwrap());
        assert!(out.contains("path", &[a, d]));
    }

    #[test]
    fn constants_in_bodies_filter() {
        let mut db = Database::new();
        db.add_fact("edge", &["a", "b"]);
        db.add_fact("edge", &["a", "c"]);
        let p = parse_program(r#"fromto_c(X) :- edge(X, c)."#).unwrap();
        let out = eval(&db, &p).unwrap();
        assert_eq!(out.count("fromto_c"), 1);
    }

    #[test]
    fn stratified_negation_complement() {
        let doc = from_sexp("(a (b) (c (d)))").unwrap();
        let db = tree_db(&doc);
        let p = parse_program(
            r#"haschild(X) :- child(X, _Y).
               childless(X) :- label(X, "b"), not haschild(X).
               childless(X) :- label(X, "c"), not haschild(X)."#,
        )
        .unwrap();
        let out = eval(&db, &p).unwrap();
        // b is childless, c has a child.
        assert_eq!(out.count("childless"), 1);
    }

    #[test]
    fn program_facts_add_constants() {
        let db = Database::new();
        let p = parse_program("color(red). color(green). any(X) :- color(X).").unwrap();
        let out = eval(&db, &p).unwrap();
        assert_eq!(out.count("any"), 2);
    }

    #[test]
    fn three_colorability_as_single_rule() {
        // K3 colors; query graph = path of 3 vertices (colorable).
        let mut db = Database::new();
        for (x, y) in [
            ("r", "g"),
            ("g", "r"),
            ("r", "b"),
            ("b", "r"),
            ("g", "b"),
            ("b", "g"),
        ] {
            db.add_fact("ok", &[x, y]);
        }
        db.add_fact("vtx", &["r"]);
        let p = parse_program("colorable(X1) :- ok(X1, X2), ok(X2, X3), vtx(X1).").unwrap();
        let out = eval(&db, &p).unwrap();
        assert_eq!(out.count("colorable"), 1);
        // Triangle with only 2 colors available is not colorable:
        let mut db2 = Database::new();
        for (x, y) in [("r", "g"), ("g", "r")] {
            db2.add_fact("ok", &[x, y]);
        }
        db2.add_fact("vtx", &["r"]);
        let p2 =
            parse_program("colorable(X1) :- ok(X1, X2), ok(X2, X3), ok(X3, X1), vtx(X1).").unwrap();
        let out2 = eval(&db2, &p2).unwrap();
        assert_eq!(out2.count("colorable"), 0);
    }

    #[test]
    fn unsafe_negation_rejected() {
        let db = Database::new();
        // Y in the negated atom is never bound.
        let p = parse_program("q(X) :- r(X), not s(X, Y).").unwrap();
        let mut db2 = db.clone();
        db2.add_fact("r", &["a"]);
        assert!(matches!(eval(&db2, &p), Err(EvalError::Unsafe(_))));
    }

    #[test]
    fn recursive_on_tree_matches_reachability() {
        let doc = from_sexp("(a (b (c)) (d))").unwrap();
        let db = tree_db(&doc);
        let p = parse_program("reach(X) :- root(X). reach(X) :- reach(Y), child(Y, X).").unwrap();
        let out = eval(&db, &p).unwrap();
        assert_eq!(out.count("reach"), doc.len());
    }
}
