//! Datalog abstract syntax.
//!
//! Plain function-free logic programs: a program is a list of rules, a rule
//! a head atom and a body of (possibly negated) literals. Terms are
//! variables or string constants. The tree signature τ_ur ∪ {child} is a
//! set of distinguished extensional predicate names (see [`EDB_TREE`]).

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::EvalError;

/// A term: variable or constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable (by convention starts with an uppercase letter).
    Var(String),
    /// A string constant.
    Const(String),
}

impl Term {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c:?}"),
        }
    }
}

/// An atom `pred(t1, …, tk)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Predicate name.
    pub pred: String,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Convenience constructor.
    pub fn new(pred: impl Into<String>, args: Vec<Term>) -> Atom {
        Atom {
            pred: pred.into(),
            args,
        }
    }

    /// Variables occurring in this atom, in argument order.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.args.iter().filter_map(Term::as_var)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A body literal: an atom or its negation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Literal {
    /// False for `not atom`.
    pub positive: bool,
    /// The atom.
    pub atom: Atom,
}

impl Literal {
    /// A positive literal.
    pub fn pos(atom: Atom) -> Literal {
        Literal {
            positive: true,
            atom,
        }
    }

    /// A negated literal.
    pub fn neg(atom: Atom) -> Literal {
        Literal {
            positive: false,
            atom,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.positive {
            write!(f, "not ")?;
        }
        write!(f, "{}", self.atom)
    }
}

/// A rule `head :- body.` (empty body = fact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Head atom.
    pub head: Atom,
    /// Body literals.
    pub body: Vec<Literal>,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

/// A datalog program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

/// The tree signature: predicate name → arity. `label` is binary here
/// (`label(x, "a")` instead of the paper's unary `label_a(x)` family —
/// equivalent, and kinder to a parser); `child` is the extension of
/// Theorem 2.7; the `*_inv` names are the inverses TMNF may use, and
/// `firstsibling` is the derived unary predicate of Section 4.
pub const EDB_TREE: &[(&str, usize)] = &[
    ("root", 1),
    ("leaf", 1),
    ("lastsibling", 1),
    ("firstsibling", 1),
    ("label", 2),
    ("firstchild", 2),
    ("nextsibling", 2),
    ("child", 2),
    ("firstchild_inv", 2),
    ("nextsibling_inv", 2),
    ("child_inv", 2),
];

/// Is `name` a tree-signature predicate?
pub fn is_tree_edb(name: &str) -> bool {
    EDB_TREE.iter().any(|(n, _)| *n == name)
}

/// Arity of a tree-signature predicate.
pub fn tree_edb_arity(name: &str) -> Option<usize> {
    EDB_TREE.iter().find(|(n, _)| *n == name).map(|&(_, a)| a)
}

impl Program {
    /// Create a program from rules.
    pub fn new(rules: Vec<Rule>) -> Program {
        Program { rules }
    }

    /// Names of all intensional predicates (those appearing in a head),
    /// sorted.
    pub fn idb_predicates(&self) -> Vec<String> {
        let set: BTreeSet<&str> = self.rules.iter().map(|r| r.head.pred.as_str()).collect();
        set.into_iter().map(str::to_string).collect()
    }

    /// Total size: number of atoms over all rules (|P| in the theorems).
    pub fn size(&self) -> usize {
        self.rules.iter().map(|r| 1 + r.body.len()).sum()
    }

    /// Check arity consistency across all uses.
    pub fn check_arities(&self) -> Result<HashMap<String, usize>, EvalError> {
        let mut arities: HashMap<String, usize> = HashMap::new();
        let mut check = |atom: &Atom| -> Result<(), EvalError> {
            if let Some(a) = tree_edb_arity(&atom.pred) {
                if atom.args.len() != a {
                    return Err(EvalError::ArityMismatch(atom.pred.clone()));
                }
                return Ok(());
            }
            match arities.get(&atom.pred) {
                Some(&a) if a != atom.args.len() => {
                    Err(EvalError::ArityMismatch(atom.pred.clone()))
                }
                Some(_) => Ok(()),
                None => {
                    arities.insert(atom.pred.clone(), atom.args.len());
                    Ok(())
                }
            }
        };
        for r in &self.rules {
            check(&r.head)?;
            for l in &r.body {
                check(&l.atom)?;
            }
        }
        Ok(arities)
    }

    /// Validate this program as a *monadic datalog program over trees*:
    /// every head predicate unary, every body atom either intensional,
    /// or from the tree signature; rules safe (head variable appears in a
    /// positive body atom); no negation (the monadic core of Section 2 is
    /// positive — Elog's stratified negation lives in `lixto-elog`).
    pub fn check_tree_program(&self) -> Result<(), EvalError> {
        self.check_arities()?;
        let idb: BTreeSet<&str> = self.rules.iter().map(|r| r.head.pred.as_str()).collect();
        for r in &self.rules {
            if r.head.args.len() != 1 {
                return Err(EvalError::NonMonadic(r.head.pred.clone()));
            }
            for l in &r.body {
                if !l.positive {
                    return Err(EvalError::NotStratified(l.atom.pred.clone()));
                }
                let p = l.atom.pred.as_str();
                if !is_tree_edb(p) && !idb.contains(p) {
                    return Err(EvalError::UnknownPredicate(p.to_string()));
                }
                if idb.contains(p) && l.atom.args.len() != 1 {
                    return Err(EvalError::NonMonadic(p.to_string()));
                }
            }
            // Safety: the head variable must occur in some positive body
            // atom (facts with a constant head are fine).
            if let Some(v) = r.head.args[0].as_var() {
                let bound = r
                    .body
                    .iter()
                    .any(|l| l.positive && l.atom.vars().any(|bv| bv == v));
                if !bound {
                    return Err(EvalError::Unsafe(r.to_string()));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn display_roundtrips_through_parser() {
        let p = parse_program(
            r#"q(X) :- label(X, "td"), not seen(X).
               seen(X) :- q(X0), nextsibling(X0, X)."#,
        )
        .unwrap();
        let printed = p.to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn size_counts_atoms() {
        let p = parse_program("a(X) :- b(X), c(X). b(X) :- root(X).").unwrap();
        assert_eq!(p.size(), 3 + 2);
    }

    #[test]
    fn arity_mismatch_detected() {
        let p = parse_program("a(X) :- b(X). c(X) :- b(X, X).").unwrap();
        assert!(matches!(
            p.check_arities(),
            Err(EvalError::ArityMismatch(_))
        ));
        let p = parse_program("a(X) :- root(X, X).").unwrap();
        assert!(matches!(
            p.check_arities(),
            Err(EvalError::ArityMismatch(_))
        ));
    }

    #[test]
    fn tree_program_validation() {
        // non-unary IDB head
        let p = parse_program("pair(X, Y) :- firstchild(X, Y).").unwrap();
        assert!(matches!(
            p.check_tree_program(),
            Err(EvalError::NonMonadic(_))
        ));
        // unsafe rule
        let p = parse_program("q(X) :- root(Y).").unwrap();
        assert!(matches!(p.check_tree_program(), Err(EvalError::Unsafe(_))));
        // negation rejected in the monadic core
        let p = parse_program("q(X) :- root(X), not q(X).").unwrap();
        assert!(matches!(
            p.check_tree_program(),
            Err(EvalError::NotStratified(_))
        ));
        // fine program
        let p = parse_program("q(X) :- root(X).").unwrap();
        assert!(p.check_tree_program().is_ok());
    }

    #[test]
    fn idb_predicates_sorted_unique() {
        let p = parse_program("b(X) :- root(X). a(X) :- b(X). b(X) :- leaf(X).").unwrap();
        assert_eq!(p.idb_predicates(), vec!["a".to_string(), "b".to_string()]);
    }
}
