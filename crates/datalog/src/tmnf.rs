//! Tree-Marking Normal Form (Definition 2.6) and the Theorem 2.7 rewriting.
//!
//! Every monadic datalog rule over τ_ur ∪ {child} whose body's binary atoms
//! form an *acyclic* multigraph on the variables (which includes every rule
//! the visual specification process of Section 3.2 can generate — they are
//! path-shaped) is rewritten into rules of the three TMNF forms:
//!
//! ```text
//! (1) p(x) ← p0(x).
//! (2) p(x) ← p0(x0), B(x0, x).     B = R or R⁻¹, R binary in τ_ur
//! (3) p(x) ← p0(x), p1(x).
//! ```
//!
//! The rewriting runs in O(|P|) (each body atom contributes O(1) output
//! rules) and preserves the meaning of every *source* predicate; fresh
//! auxiliary predicates are prefixed `__`.
//!
//! `child` edges are supported in both orientations. With
//! [`TmnfOptions::eliminate_child`] the output is strict TMNF over τ_ur
//! (child is compiled into firstchild/nextsibling recursions, the
//! construction sketched in Section 3.2 of the paper); without it, `child`
//! atoms are kept for the grounder, which handles them natively at the
//! same O(|P|·|dom|) total cost.
//!
//! Rules whose body graph is cyclic are rejected with
//! [`EvalError::NotTreeShaped`]; callers fall back to the general engine.

use std::collections::HashMap;

use crate::ast::{Atom, Literal, Program, Rule, Term};
use crate::EvalError;

/// Options for the rewriting.
#[derive(Debug, Clone, Copy, Default)]
pub struct TmnfOptions {
    /// Produce strict TMNF over τ_ur (no `child`, no `firstsibling`).
    pub eliminate_child: bool,
}

/// Result of the rewriting.
#[derive(Debug, Clone)]
pub struct Translation {
    /// The TMNF program. Source intensional predicates keep their names
    /// and meanings; `__`-prefixed predicates are auxiliary.
    pub program: Program,
}

/// Unary conditions a variable must satisfy.
#[derive(Debug, Clone, PartialEq, Eq)]
enum UnaryCond {
    /// Intensional (or previously generated auxiliary) predicate.
    Pred(String),
    /// τ_ur unary: root, leaf, lastsibling — or the derived firstsibling.
    Edb(String),
    /// label(x, "a").
    Label(String),
}

/// A binary edge in a rule body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeKind {
    FirstChild,
    NextSibling,
    Child,
}

/// Rewrite `program` into (generalized) TMNF.
pub fn to_tmnf(program: &Program, opts: TmnfOptions) -> Result<Translation, EvalError> {
    program.check_tree_program()?;
    let mut ctx = Ctx {
        out: Vec::new(),
        fresh: 0,
        true_pred: None,
        opts,
    };
    for rule in &program.rules {
        ctx.rewrite_rule(rule)?;
    }
    Ok(Translation {
        program: Program::new(ctx.out),
    })
}

/// Strict syntactic check for Definition 2.6 (TMNF over τ_ur: `child`,
/// `child_inv` and `firstsibling` are *not* allowed; `label` with constant
/// second argument counts as a τ_ur unary predicate).
pub fn is_tmnf(program: &Program) -> bool {
    let idb = program.idb_predicates();
    let is_unary = |a: &Atom| -> bool {
        match a.pred.as_str() {
            "root" | "leaf" | "lastsibling" => a.args.len() == 1,
            "label" => a.args.len() == 2 && matches!(a.args[1], Term::Const(_)),
            p => idb.iter().any(|q| q == p) && a.args.len() == 1,
        }
    };
    let is_binary = |a: &Atom| -> bool {
        matches!(
            a.pred.as_str(),
            "firstchild" | "nextsibling" | "firstchild_inv" | "nextsibling_inv"
        ) && a.args.len() == 2
    };
    program.rules.iter().all(|r| {
        if r.head.args.len() != 1 || r.head.args[0].as_var().is_none() {
            return false;
        }
        let x = r.head.args[0].as_var().unwrap();
        if r.body.iter().any(|l| !l.positive) {
            return false;
        }
        match r.body.as_slice() {
            // (1) p(x) ← p0(x).
            [l0] => is_unary(&l0.atom) && l0.atom.args[0].as_var() == Some(x),
            [l0, l1] => {
                // (3) p(x) ← p0(x), p1(x).
                let form3 = is_unary(&l0.atom)
                    && is_unary(&l1.atom)
                    && l0.atom.args[0].as_var() == Some(x)
                    && l1.atom.args[0].as_var() == Some(x);
                // (2) p(x) ← p0(x0), B(x0, x).
                let form2 = is_unary(&l0.atom)
                    && is_binary(&l1.atom)
                    && l0.atom.args[0].as_var().is_some()
                    && l1.atom.args[0].as_var() == l0.atom.args[0].as_var()
                    && l1.atom.args[1].as_var() == Some(x)
                    && l0.atom.args[0].as_var() != Some(x);
                form3 || form2
            }
            _ => false,
        }
    })
}

struct Ctx {
    out: Vec<Rule>,
    fresh: usize,
    true_pred: Option<String>,
    opts: TmnfOptions,
}

impl Ctx {
    fn fresh_pred(&mut self, hint: &str) -> String {
        self.fresh += 1;
        format!("__{hint}{}", self.fresh)
    }

    fn unary_atom(&self, cond: &UnaryCond, var: &str) -> Atom {
        match cond {
            UnaryCond::Pred(p) => Atom::new(p.clone(), vec![Term::Var(var.into())]),
            UnaryCond::Edb(p) => Atom::new(p.clone(), vec![Term::Var(var.into())]),
            UnaryCond::Label(l) => {
                Atom::new("label", vec![Term::Var(var.into()), Term::Const(l.clone())])
            }
        }
    }

    fn rule(&mut self, head: Atom, body: Vec<Atom>) {
        self.out.push(Rule {
            head,
            body: body.into_iter().map(Literal::pos).collect(),
        });
    }

    /// The universal predicate `__true` (TMNF-definable: spread from the
    /// root along firstchild/nextsibling).
    fn true_pred(&mut self) -> String {
        if let Some(p) = &self.true_pred {
            return p.clone();
        }
        let p = "__true".to_string();
        let x = || Term::Var("X".into());
        let x0 = || Term::Var("X0".into());
        self.rule(
            Atom::new(p.clone(), vec![x()]),
            vec![Atom::new("root", vec![x()])],
        );
        self.rule(
            Atom::new(p.clone(), vec![x()]),
            vec![
                Atom::new(p.clone(), vec![x0()]),
                Atom::new("firstchild", vec![x0(), x()]),
            ],
        );
        self.rule(
            Atom::new(p.clone(), vec![x()]),
            vec![
                Atom::new(p.clone(), vec![x0()]),
                Atom::new("nextsibling", vec![x0(), x()]),
            ],
        );
        self.true_pred = Some(p.clone());
        p
    }

    /// Reduce a conjunction of unary conditions on `var` to a single
    /// predicate name (generating chain rules as needed).
    fn conjunction_pred(&mut self, conds: &[UnaryCond], hint: &str) -> String {
        match conds {
            [] => self.true_pred(),
            [UnaryCond::Pred(p)] => p.clone(),
            [single] => {
                // Edb/label conditions are wrapped so callers always get an
                // intensional name (form 2 needs p0 usable on its own).
                let p = self.fresh_pred(hint);
                let head = Atom::new(p.clone(), vec![Term::Var("X".into())]);
                let body = vec![self.unary_atom(single, "X")];
                self.rule(head, body);
                p
            }
            [first, rest @ ..] => {
                // Chain of form-(3) rules.
                let mut acc = self.conjunction_pred(std::slice::from_ref(first), hint);
                for c in rest {
                    let p = self.fresh_pred(hint);
                    let head = Atom::new(p.clone(), vec![Term::Var("X".into())]);
                    let body = vec![
                        Atom::new(acc.clone(), vec![Term::Var("X".into())]),
                        self.unary_atom(c, "X"),
                    ];
                    self.rule(head, body);
                    acc = p;
                }
                acc
            }
        }
    }

    /// Emit the form-(2) style rules for "x satisfies `target` iff some y
    /// with edge(x, y) (per `kind`/`x_is_source`) satisfies `inner`".
    /// Returns the predicate holding at x.
    fn edge_pred(&mut self, inner: &str, kind: EdgeKind, x_is_source: bool) -> String {
        let p = self.fresh_pred("edge");
        let x = || Term::Var("X".into());
        let x0 = || Term::Var("X0".into());
        let inner_atom = Atom::new(inner, vec![x0()]);
        match (kind, x_is_source) {
            // firstchild(x, y): go from y back to x via firstchild⁻¹.
            (EdgeKind::FirstChild, true) => {
                self.rule(
                    Atom::new(p.clone(), vec![x()]),
                    vec![inner_atom, Atom::new("firstchild_inv", vec![x0(), x()])],
                );
            }
            // firstchild(y, x): from y forward to x.
            (EdgeKind::FirstChild, false) => {
                self.rule(
                    Atom::new(p.clone(), vec![x()]),
                    vec![inner_atom, Atom::new("firstchild", vec![x0(), x()])],
                );
            }
            (EdgeKind::NextSibling, true) => {
                self.rule(
                    Atom::new(p.clone(), vec![x()]),
                    vec![inner_atom, Atom::new("nextsibling_inv", vec![x0(), x()])],
                );
            }
            (EdgeKind::NextSibling, false) => {
                self.rule(
                    Atom::new(p.clone(), vec![x()]),
                    vec![inner_atom, Atom::new("nextsibling", vec![x0(), x()])],
                );
            }
            (EdgeKind::Child, true) if !self.opts.eliminate_child => {
                // child(x, y): x has child y satisfying inner.
                self.rule(
                    Atom::new(p.clone(), vec![x()]),
                    vec![inner_atom, Atom::new("child_inv", vec![x0(), x()])],
                );
            }
            (EdgeKind::Child, false) if !self.opts.eliminate_child => {
                self.rule(
                    Atom::new(p.clone(), vec![x()]),
                    vec![inner_atom, Atom::new("child", vec![x0(), x()])],
                );
            }
            (EdgeKind::Child, true) => {
                // Strict τ_ur: x has a child satisfying inner ⇔ propagate
                // inner leftward through siblings, then step up via
                // firstchild⁻¹.
                let v = self.fresh_pred("lsib");
                self.rule(
                    Atom::new(v.clone(), vec![x()]),
                    vec![Atom::new(inner, vec![x()])],
                );
                self.rule(
                    Atom::new(v.clone(), vec![x()]),
                    vec![
                        Atom::new(v.clone(), vec![x0()]),
                        Atom::new("nextsibling_inv", vec![x0(), x()]),
                    ],
                );
                self.rule(
                    Atom::new(p.clone(), vec![x()]),
                    vec![
                        Atom::new(v, vec![x0()]),
                        Atom::new("firstchild_inv", vec![x0(), x()]),
                    ],
                );
            }
            (EdgeKind::Child, false) => {
                // child(y, x): x's parent satisfies inner ⇔ reach the first
                // sibling via firstchild, then spread rightward.
                self.rule(
                    Atom::new(p.clone(), vec![x()]),
                    vec![inner_atom, Atom::new("firstchild", vec![x0(), x()])],
                );
                self.rule(
                    Atom::new(p.clone(), vec![x()]),
                    vec![
                        Atom::new(p.clone(), vec![x0()]),
                        Atom::new("nextsibling", vec![x0(), x()]),
                    ],
                );
            }
        }
        p
    }

    /// "Somewhere in the document a node satisfies `inner`" — propagate up
    /// to the root, then spread everywhere. Returns a predicate true on
    /// every node iff ∃n. inner(n).
    fn global_pred(&mut self, inner: &str) -> String {
        let x = || Term::Var("X".into());
        let x0 = || Term::Var("X0".into());
        let up = self.fresh_pred("up");
        self.rule(
            Atom::new(up.clone(), vec![x()]),
            vec![Atom::new(inner, vec![x()])],
        );
        for b in ["nextsibling_inv", "firstchild_inv"] {
            self.rule(
                Atom::new(up.clone(), vec![x()]),
                vec![
                    Atom::new(up.clone(), vec![x0()]),
                    Atom::new(b, vec![x0(), x()]),
                ],
            );
        }
        let at_root = self.fresh_pred("atroot");
        self.rule(
            Atom::new(at_root.clone(), vec![x()]),
            vec![Atom::new(up, vec![x()]), Atom::new("root", vec![x()])],
        );
        let glob = self.fresh_pred("glob");
        self.rule(
            Atom::new(glob.clone(), vec![x()]),
            vec![Atom::new(at_root, vec![x()])],
        );
        for b in ["firstchild", "nextsibling"] {
            self.rule(
                Atom::new(glob.clone(), vec![x()]),
                vec![
                    Atom::new(glob.clone(), vec![x0()]),
                    Atom::new(b, vec![x0(), x()]),
                ],
            );
        }
        glob
    }

    fn rewrite_rule(&mut self, rule: &Rule) -> Result<(), EvalError> {
        let head_var = match rule.head.args[0].as_var() {
            Some(v) => v.to_string(),
            None => return Err(EvalError::NotTreeShaped(rule.to_string())),
        };

        // Classify body atoms.
        let mut unary: HashMap<String, Vec<UnaryCond>> = HashMap::new();
        let mut edges: Vec<(String, String, EdgeKind)> = Vec::new(); // (source, target, kind)
        let mut vars: Vec<String> = Vec::new();
        let mut seen_atoms: Vec<&Atom> = Vec::new();
        let note_var = |v: &str, vars: &mut Vec<String>| {
            if !vars.iter().any(|x| x == v) {
                vars.push(v.to_string());
            }
        };
        note_var(&head_var, &mut vars);

        for lit in &rule.body {
            let atom = &lit.atom;
            if seen_atoms.contains(&atom) {
                continue; // duplicate atoms are redundant
            }
            seen_atoms.push(atom);
            match atom.pred.as_str() {
                "root" | "leaf" | "lastsibling" | "firstsibling" => {
                    let v = atom.args[0]
                        .as_var()
                        .ok_or_else(|| EvalError::NotTreeShaped(rule.to_string()))?;
                    note_var(v, &mut vars);
                    let cond = if atom.pred == "firstsibling" && self.opts.eliminate_child {
                        // Strict τ_ur: firstsibling(x) ⇔ ∃y firstchild(y,x).
                        let t = self.true_pred();
                        let p = self.fresh_pred("firstsib");
                        self.rule(
                            Atom::new(p.clone(), vec![Term::Var("X".into())]),
                            vec![
                                Atom::new(t, vec![Term::Var("X0".into())]),
                                Atom::new(
                                    "firstchild",
                                    vec![Term::Var("X0".into()), Term::Var("X".into())],
                                ),
                            ],
                        );
                        UnaryCond::Pred(p)
                    } else {
                        UnaryCond::Edb(atom.pred.clone())
                    };
                    unary.entry(v.to_string()).or_default().push(cond);
                }
                "label" => {
                    let v = atom.args[0]
                        .as_var()
                        .ok_or_else(|| EvalError::NotTreeShaped(rule.to_string()))?;
                    let Term::Const(l) = &atom.args[1] else {
                        // label with a variable second argument is beyond
                        // the unary view — let the general engine do it.
                        return Err(EvalError::NotTreeShaped(rule.to_string()));
                    };
                    note_var(v, &mut vars);
                    unary
                        .entry(v.to_string())
                        .or_default()
                        .push(UnaryCond::Label(l.clone()));
                }
                "firstchild" | "nextsibling" | "child" | "firstchild_inv" | "nextsibling_inv"
                | "child_inv" => {
                    let (Some(a), Some(b)) = (atom.args[0].as_var(), atom.args[1].as_var()) else {
                        return Err(EvalError::NotTreeShaped(rule.to_string()));
                    };
                    if a == b {
                        // Self-loops (firstchild(x,x) etc.) are
                        // unsatisfiable on trees but legal datalog — punt.
                        return Err(EvalError::NotTreeShaped(rule.to_string()));
                    }
                    note_var(a, &mut vars);
                    note_var(b, &mut vars);
                    let (src, tgt, kind) = match atom.pred.as_str() {
                        "firstchild" => (a, b, EdgeKind::FirstChild),
                        "firstchild_inv" => (b, a, EdgeKind::FirstChild),
                        "nextsibling" => (a, b, EdgeKind::NextSibling),
                        "nextsibling_inv" => (b, a, EdgeKind::NextSibling),
                        "child" => (a, b, EdgeKind::Child),
                        _ => (b, a, EdgeKind::Child),
                    };
                    edges.push((src.to_string(), tgt.to_string(), kind));
                }
                _idb => {
                    let v = atom.args[0]
                        .as_var()
                        .ok_or_else(|| EvalError::NotTreeShaped(rule.to_string()))?;
                    note_var(v, &mut vars);
                    unary
                        .entry(v.to_string())
                        .or_default()
                        .push(UnaryCond::Pred(atom.pred.clone()));
                }
            }
        }

        // Partition variables into connected components of the edge
        // multigraph and check acyclicity per component.
        let comp = components(&vars, &edges);
        for c in comp.values().collect::<std::collections::BTreeSet<_>>() {
            let members = vars.iter().filter(|v| comp[*v] == *c).count();
            let edge_count = edges.iter().filter(|(s, _, _)| comp[s] == *c).count();
            if edge_count >= members {
                return Err(EvalError::NotTreeShaped(rule.to_string()));
            }
        }

        // Process the head component: orient edges toward head_var and fold
        // bottom-up.
        let head_comp = comp[&head_var];
        let mut head_conjuncts: Vec<UnaryCond> = Vec::new();
        let head_pred = self.fold_component(&head_var, head_comp, &vars, &edges, &unary, &comp)?;
        head_conjuncts.push(UnaryCond::Pred(head_pred));

        // Other components contribute global existence conditions.
        let mut other_roots: Vec<&String> = vars.iter().filter(|v| comp[*v] != head_comp).collect();
        // One root per component (first member encountered).
        other_roots.dedup_by_key(|v| comp[*v]);
        let mut handled: Vec<usize> = Vec::new();
        for root in other_roots {
            let c = comp[root];
            if handled.contains(&c) {
                continue;
            }
            handled.push(c);
            let pred = self.fold_component(root, c, &vars, &edges, &unary, &comp)?;
            let glob = self.global_pred(&pred);
            head_conjuncts.push(UnaryCond::Pred(glob));
        }

        let final_pred = self.conjunction_pred(&head_conjuncts, "head");
        self.rule(
            Atom::new(rule.head.pred.clone(), vec![Term::Var("X".into())]),
            vec![Atom::new(final_pred, vec![Term::Var("X".into())])],
        );
        Ok(())
    }

    /// Fold the tree-shaped component `c`, rooted at `root`, into a single
    /// unary predicate over the root variable.
    fn fold_component(
        &mut self,
        root: &str,
        c: usize,
        vars: &[String],
        edges: &[(String, String, EdgeKind)],
        unary: &HashMap<String, Vec<UnaryCond>>,
        comp: &HashMap<String, usize>,
    ) -> Result<String, EvalError> {
        // BFS orientation from root.
        let members: Vec<&String> = vars.iter().filter(|v| comp[*v] == c).collect();
        let mut parent: HashMap<&str, (usize, bool)> = HashMap::new(); // var -> (edge idx, var_is_source_of_edge)
        let mut order: Vec<&str> = vec![root];
        let mut visited: Vec<&str> = vec![root];
        let mut qi = 0;
        while qi < order.len() {
            let u = order[qi];
            qi += 1;
            for (i, (s, t, _)) in edges.iter().enumerate() {
                if parent.values().any(|&(pe, _)| pe == i) {
                    continue; // edge already used
                }
                let other = if s == u && !visited.contains(&t.as_str()) {
                    Some((t.as_str(), false))
                } else if t == u && !visited.contains(&s.as_str()) {
                    Some((s.as_str(), true))
                } else {
                    None
                };
                if let Some((w, w_is_source)) = other {
                    parent.insert(w, (i, w_is_source));
                    visited.push(w);
                    order.push(w);
                }
            }
        }
        debug_assert_eq!(order.len(), members.len(), "component must be connected");

        // Fold bottom-up: process in reverse BFS order.
        let mut cond_pred: HashMap<&str, String> = HashMap::new();
        for &v in order.iter().rev() {
            let mut conjuncts: Vec<UnaryCond> = unary.get(v).cloned().unwrap_or_default();
            // Children of v = vars whose parent edge connects to v.
            for &w in &order {
                if w == v {
                    continue;
                }
                if let Some(&(ei, w_is_source)) = parent.get(w) {
                    let (s, t, kind) = &edges[ei];
                    let attaches_to_v = if w_is_source { t == v } else { s == v };
                    if !attaches_to_v {
                        continue;
                    }
                    let inner = cond_pred[w].clone();
                    // Edge atom is kind(s, t). From v's perspective:
                    // v is the source iff !w_is_source.
                    let p = self.edge_pred(&inner, *kind, !w_is_source);
                    conjuncts.push(UnaryCond::Pred(p));
                }
            }
            let p = self.conjunction_pred(&conjuncts, "cond");
            cond_pred.insert(v, p);
        }
        Ok(cond_pred[root].clone())
    }
}

fn components(vars: &[String], edges: &[(String, String, EdgeKind)]) -> HashMap<String, usize> {
    // Union-find over variable indices.
    let idx: HashMap<&str, usize> = vars
        .iter()
        .enumerate()
        .map(|(i, v)| (v.as_str(), i))
        .collect();
    let mut uf: Vec<usize> = (0..vars.len()).collect();
    fn find(uf: &mut [usize], mut x: usize) -> usize {
        while uf[x] != x {
            uf[x] = uf[uf[x]];
            x = uf[x];
        }
        x
    }
    for (s, t, _) in edges {
        let (a, b) = (
            find(&mut uf, idx[s.as_str()]),
            find(&mut uf, idx[t.as_str()]),
        );
        if a != b {
            uf[a] = b;
        }
    }
    vars.iter()
        .map(|v| {
            let r = find(&mut uf, idx[v.as_str()]);
            (v.clone(), r)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_program, MonadicEvaluator};

    fn assert_equivalent(src: &str, html: &str) {
        let program = parse_program(src).unwrap();
        let doc = lixto_html::parse(html);
        // Reference: general semi-naive engine.
        let db = crate::structure::tree_db(&doc);
        let reference = crate::seminaive::eval(&db, &program).unwrap();
        // TMNF path (strict, with child elimination).
        let t = to_tmnf(
            &program,
            TmnfOptions {
                eliminate_child: true,
            },
        )
        .unwrap();
        assert!(is_tmnf(&t.program), "not strict TMNF:\n{}", t.program);
        let result = MonadicEvaluator::new(&doc).eval(&program).unwrap();
        for pred in program.idb_predicates() {
            let mut want: Vec<u32> = reference.tuples(&pred).map(|t| t[0]).collect();
            want.sort_unstable();
            let mut got: Vec<u32> = result[&pred].iter().map(|n| n.index() as u32).collect();
            got.sort_unstable();
            assert_eq!(got, want, "predicate {pred} differs");
        }
    }

    #[test]
    fn italics_program_is_already_tmnf() {
        let p = parse_program(
            r#"italic(X) :- label(X, "i").
               italic(X) :- italic(X0), firstchild(X0, X).
               italic(X) :- italic(X0), nextsibling(X0, X)."#,
        )
        .unwrap();
        // The source is in TMNF except that form (1) with a label atom is
        // fine, so the checker accepts it directly.
        assert!(is_tmnf(&p));
    }

    #[test]
    fn output_is_strict_tmnf_for_child_rules() {
        let p = parse_program(r#"q(X) :- child(X, Y), label(Y, "td")."#).unwrap();
        let t = to_tmnf(
            &p,
            TmnfOptions {
                eliminate_child: true,
            },
        )
        .unwrap();
        assert!(is_tmnf(&t.program), "{}", t.program);
        // and without elimination it is generalized TMNF (child allowed)
        let t2 = to_tmnf(
            &p,
            TmnfOptions {
                eliminate_child: false,
            },
        )
        .unwrap();
        assert!(t2
            .program
            .rules
            .iter()
            .any(|r| r.body.iter().any(|l| l.atom.pred.contains("child"))));
    }

    #[test]
    fn path_rule_equivalence() {
        assert_equivalent(
            r##"rec(X) :- label(X, "tr").
               txt(X) :- rec(R), child(R, C), label(C, "td"), child(C, X), label(X, "#text")."##,
            "<table><tr><td>a</td><td>b</td></tr><tr><td>c</td></tr></table><div>no</div>",
        );
    }

    #[test]
    fn upward_edges_equivalence() {
        // q selects td cells whose *parent* is a tr with a lastsibling td.
        assert_equivalent(
            r#"q(X) :- label(X, "td"), child(R, X), label(R, "tr")."#,
            "<table><tr><td>a</td></tr></table><td>stray</td>",
        );
    }

    #[test]
    fn disconnected_component_is_global_condition() {
        // Select all li iff the document contains an hr somewhere.
        assert_equivalent(
            r#"q(X) :- label(X, "li"), label(Y, "hr")."#,
            "<ul><li>a</li><li>b</li></ul><hr>",
        );
        assert_equivalent(
            r#"q(X) :- label(X, "li"), label(Y, "hr")."#,
            "<ul><li>a</li><li>b</li></ul>",
        );
    }

    #[test]
    fn firstsibling_and_lastsibling() {
        assert_equivalent(
            r#"first(X) :- label(X, "li"), firstsibling(X).
               last(X) :- label(X, "li"), lastsibling(X)."#,
            "<ul><li>a</li><li>b</li><li>c</li></ul>",
        );
    }

    #[test]
    fn siblings_chain_equivalence() {
        assert_equivalent(
            r#"afterhead(X) :- label(H, "th"), nextsibling(H, X)."#,
            "<table><tr><th>h</th><td>v1</td><td>v2</td></tr></table>",
        );
    }

    #[test]
    fn deep_conjunction_chain() {
        assert_equivalent(
            r#"q(X) :- label(X, "td"), leaf(X), lastsibling(X), cellish(X).
               cellish(X) :- label(X, "td")."#,
            "<table><tr><td>a</td><td>b</td></tr></table>",
        );
    }

    #[test]
    fn cyclic_body_rejected() {
        let p = parse_program("q(X) :- child(X, Y), child(X, Z), nextsibling(Y, Z).").unwrap();
        assert!(matches!(
            to_tmnf(&p, TmnfOptions::default()),
            Err(EvalError::NotTreeShaped(_))
        ));
    }

    #[test]
    fn translation_size_is_linear_in_program_size() {
        // Growing a chain rule must grow the output linearly (Theorem 2.7's
        // O(|P|) translation).
        let mut sizes = Vec::new();
        for k in [2usize, 4, 8, 16] {
            let mut body: Vec<String> = vec![r#"label(V0, "a")"#.to_string()];
            for i in 0..k {
                body.push(format!("child(V{i}, V{})", i + 1));
            }
            let src = format!("q(V{k}) :- {}.", body.join(", "));
            let p = parse_program(&src).unwrap();
            let t = to_tmnf(
                &p,
                TmnfOptions {
                    eliminate_child: true,
                },
            )
            .unwrap();
            sizes.push((p.size(), t.program.size()));
        }
        // Output size should grow by a constant factor, not quadratically.
        let ratio0 = sizes[0].1 as f64 / sizes[0].0 as f64;
        let ratio3 = sizes[3].1 as f64 / sizes[3].0 as f64;
        assert!(
            ratio3 < ratio0 * 2.0 + 2.0,
            "translation blow-up not linear: {sizes:?}"
        );
    }
}
