//! Finite relational structures (databases), and the view of a document
//! tree as one.

use std::collections::{HashMap, HashSet};

use lixto_tree::{Document, NodeId, TEXT_LABEL};

/// A named relation: a set of equal-length tuples of constants.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// Arity of every tuple.
    pub arity: usize,
    /// The tuples.
    pub tuples: HashSet<Vec<u32>>,
}

/// A finite structure: constants (dense `u32`s, optionally named) and
/// relations over them.
///
/// Constants created by [`Database::intern`] carry their string names so
/// program constants can be resolved; [`Database::reserve_unnamed`] bulk-
/// allocates anonymous constants (used for tree nodes, where the id *is*
/// the node id).
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: HashMap<String, Relation>,
    names: HashMap<String, u32>,
    next_const: u32,
}

impl Database {
    /// Empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Empty database sharing the constant space of `other`: same named
    /// constants, same next free id. Used by the semi-naive engine so IDB
    /// tuples can reference EDB constants without id collisions.
    pub fn with_constants_of(other: &Database) -> Database {
        Database {
            relations: HashMap::new(),
            names: other.names.clone(),
            next_const: other.next_const,
        }
    }

    /// Allocate `n` anonymous constants `0..n`. Must be called before any
    /// interning; returns the range start (always 0).
    pub fn reserve_unnamed(&mut self, n: usize) -> u32 {
        assert_eq!(self.next_const, 0, "reserve_unnamed must come first");
        self.next_const = n as u32;
        0
    }

    /// Intern a named constant.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&c) = self.names.get(name) {
            return c;
        }
        let c = self.next_const;
        self.next_const += 1;
        self.names.insert(name.to_string(), c);
        c
    }

    /// Resolve a named constant without interning.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.names.get(name).copied()
    }

    /// Number of constants.
    pub fn n_constants(&self) -> usize {
        self.next_const as usize
    }

    /// Add a tuple to `rel` (creating the relation on first use).
    ///
    /// # Panics
    /// Panics if the relation exists with a different arity.
    pub fn add(&mut self, rel: &str, tuple: Vec<u32>) {
        let r = self
            .relations
            .entry(rel.to_string())
            .or_insert_with(|| Relation {
                arity: tuple.len(),
                tuples: HashSet::new(),
            });
        assert_eq!(r.arity, tuple.len(), "arity mismatch for relation {rel}");
        r.tuples.insert(tuple);
    }

    /// Add a fact with named constants.
    pub fn add_fact(&mut self, rel: &str, consts: &[&str]) {
        let tuple: Vec<u32> = consts.iter().map(|c| self.intern(c)).collect();
        self.add(rel, tuple);
    }

    /// The relation, if present.
    pub fn relation(&self, rel: &str) -> Option<&Relation> {
        self.relations.get(rel)
    }

    /// Iterate over the tuples of `rel` (empty iterator if absent).
    pub fn tuples(&self, rel: &str) -> impl Iterator<Item = &Vec<u32>> {
        self.relations
            .get(rel)
            .into_iter()
            .flat_map(|r| r.tuples.iter())
    }

    /// Number of tuples in `rel`.
    pub fn count(&self, rel: &str) -> usize {
        self.relations.get(rel).map_or(0, |r| r.tuples.len())
    }

    /// Does `rel` contain `tuple`?
    pub fn contains(&self, rel: &str, tuple: &[u32]) -> bool {
        self.relations
            .get(rel)
            .is_some_and(|r| r.tuples.contains(tuple))
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.relations.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

/// Materialize a document as a [`Database`] over the tree signature
/// (τ_ur ∪ {child} and the inverse relations). Node ids double as constant
/// ids; labels are interned as named constants.
///
/// Size: O(|dom|) tuples per relation.
pub fn tree_db(doc: &Document) -> Database {
    let mut db = Database::new();
    db.reserve_unnamed(doc.len());
    for n in doc.node_ids() {
        let nc = n.index() as u32;
        if doc.is_root(n) {
            db.add("root", vec![nc]);
        }
        if doc.is_leaf(n) {
            db.add("leaf", vec![nc]);
        }
        if doc.is_last_sibling(n) {
            db.add("lastsibling", vec![nc]);
        }
        if doc.is_first_sibling(n) {
            db.add("firstsibling", vec![nc]);
        }
        let label = doc.label_str(n).to_string();
        let lc = db.intern(&label);
        db.add("label", vec![nc, lc]);
        if let Some(fc) = doc.first_child(n) {
            db.add("firstchild", vec![nc, fc.index() as u32]);
            db.add("firstchild_inv", vec![fc.index() as u32, nc]);
        }
        if let Some(ns) = doc.next_sibling(n) {
            db.add("nextsibling", vec![nc, ns.index() as u32]);
            db.add("nextsibling_inv", vec![ns.index() as u32, nc]);
        }
        for c in doc.children(n) {
            db.add("child", vec![nc, c.index() as u32]);
            db.add("child_inv", vec![c.index() as u32, nc]);
        }
    }
    db
}

/// Convert a constant back to a node id (valid only for constants in the
/// reserved node range of a [`tree_db`]).
pub fn const_to_node(c: u32) -> NodeId {
    NodeId::from_index(c as usize)
}

/// The label constant name used for text nodes.
pub fn text_label() -> &'static str {
    TEXT_LABEL
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_tree::build::from_sexp;

    #[test]
    fn add_and_query() {
        let mut db = Database::new();
        db.add_fact("edge", &["a", "b"]);
        db.add_fact("edge", &["b", "c"]);
        assert_eq!(db.count("edge"), 2);
        let a = db.lookup("a").unwrap();
        let b = db.lookup("b").unwrap();
        assert!(db.contains("edge", &[a, b]));
        assert!(!db.contains("edge", &[b, a]));
        assert_eq!(db.count("missing"), 0);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_enforced() {
        let mut db = Database::new();
        db.add_fact("r", &["a"]);
        db.add_fact("r", &["a", "b"]);
    }

    #[test]
    fn tree_db_relations_match_document() {
        let doc = from_sexp("(a (b (c) (d)) (e))").unwrap();
        let db = tree_db(&doc);
        assert_eq!(db.count("root"), 1);
        assert_eq!(db.count("leaf"), 3); // c, d, e
        assert_eq!(db.count("firstchild"), 2); // a->b, b->c
        assert_eq!(db.count("nextsibling"), 2); // b->e, c->d
        assert_eq!(db.count("child"), 4);
        assert_eq!(db.count("child_inv"), 4);
        assert_eq!(db.count("label"), doc.len());
        // lastsibling: d and e (root is not a last sibling)
        assert_eq!(db.count("lastsibling"), 2);
        assert_eq!(db.count("firstsibling"), 2); // b and c
                                                 // label constant resolvable
        assert!(db.lookup("c").is_some());
    }

    #[test]
    fn node_constants_are_node_ids() {
        let doc = from_sexp("(x (y))").unwrap();
        let db = tree_db(&doc);
        let t = db.tuples("firstchild").next().unwrap().clone();
        assert_eq!(const_to_node(t[0]), doc.root());
        assert_eq!(const_to_node(t[1]), doc.first_child(doc.root()).unwrap());
    }
}
