//! Linear-Time Unit Resolution for propositional Horn programs.
//!
//! Minoux's LTUR algorithm \[29\]: one counter per clause (number of
//! still-unsatisfied body literals), an occurrence list per proposition,
//! and a work queue of newly derived propositions. Every clause-body entry
//! is touched at most once, so the total running time is linear in the
//! program size — the final step of the Theorem 2.4 evaluation pipeline.

/// A definite Horn clause `head ← body` over propositions (facts have an
/// empty body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// Head proposition.
    pub head: u32,
    /// Body propositions (all positive).
    pub body: Vec<u32>,
}

/// Compute the least model: `result[p]` is true iff proposition `p` is
/// derivable.
pub fn solve(clauses: &[Clause], n_props: usize) -> Vec<bool> {
    let mut truth = vec![false; n_props];
    // counter[c] = number of body props of clause c not yet known true.
    let mut counter: Vec<u32> = clauses.iter().map(|c| c.body.len() as u32).collect();
    // occurrences: prop -> clause indices where it appears in the body.
    // Built as CSR-style adjacency to avoid per-prop Vec allocations.
    let mut occ_count = vec![0u32; n_props];
    for c in clauses {
        for &b in &c.body {
            occ_count[b as usize] += 1;
        }
    }
    let mut occ_start = vec![0usize; n_props + 1];
    for i in 0..n_props {
        occ_start[i + 1] = occ_start[i] + occ_count[i] as usize;
    }
    let mut occ = vec![0u32; occ_start[n_props]];
    let mut fill = occ_start.clone();
    for (ci, c) in clauses.iter().enumerate() {
        for &b in &c.body {
            occ[fill[b as usize]] = ci as u32;
            fill[b as usize] += 1;
        }
    }

    let mut queue: Vec<u32> = Vec::new();
    for (ci, c) in clauses.iter().enumerate() {
        if counter[ci] == 0 && !truth[c.head as usize] {
            truth[c.head as usize] = true;
            queue.push(c.head);
        }
    }
    while let Some(p) = queue.pop() {
        for &ci in &occ[occ_start[p as usize]..occ_start[p as usize + 1]] {
            let ci = ci as usize;
            // A proposition may appear twice in one body; the counter is
            // decremented once per occurrence, matching the build above.
            counter[ci] -= 1;
            if counter[ci] == 0 {
                let h = clauses[ci].head;
                if !truth[h as usize] {
                    truth[h as usize] = true;
                    queue.push(h);
                }
            }
        }
    }
    truth
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(head: u32, body: &[u32]) -> Clause {
        Clause {
            head,
            body: body.to_vec(),
        }
    }

    #[test]
    fn facts_propagate_through_chain() {
        // 0; 1 ← 0; 2 ← 1; 3 ← 2, 0.
        let clauses = vec![c(0, &[]), c(1, &[0]), c(2, &[1]), c(3, &[2, 0])];
        let t = solve(&clauses, 5);
        assert_eq!(t, vec![true, true, true, true, false]);
    }

    #[test]
    fn unsupported_heads_stay_false() {
        let clauses = vec![c(1, &[0])];
        let t = solve(&clauses, 2);
        assert_eq!(t, vec![false, false]);
    }

    #[test]
    fn cyclic_support_is_not_derivation() {
        // 0 ← 1; 1 ← 0 — least model is empty.
        let clauses = vec![c(0, &[1]), c(1, &[0])];
        assert_eq!(solve(&clauses, 2), vec![false, false]);
    }

    #[test]
    fn duplicate_body_props_handled() {
        // 1 ← 0, 0.
        let clauses = vec![c(0, &[]), c(1, &[0, 0])];
        assert_eq!(solve(&clauses, 2), vec![true, true]);
    }

    #[test]
    fn diamond_derivation() {
        // 0; 1 ← 0; 2 ← 0; 3 ← 1, 2.
        let clauses = vec![c(0, &[]), c(1, &[0]), c(2, &[0]), c(3, &[1, 2])];
        assert_eq!(solve(&clauses, 4), vec![true; 4]);
    }

    #[test]
    fn large_chain_is_fast() {
        // 200k-long implication chain — linear behaviour sanity check.
        let n = 200_000u32;
        let mut clauses = vec![c(0, &[])];
        for i in 1..n {
            clauses.push(c(i, &[i - 1]));
        }
        let t = solve(&clauses, n as usize);
        assert!(t[(n - 1) as usize]);
    }
}
