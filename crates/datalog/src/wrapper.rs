//! Wrappers as sets of information extraction functions.
//!
//! Section 2.1 of the paper: "a wrapper is a program which implements one
//! or several such [information extraction] functions, and thereby assigns
//! unary predicates to document tree nodes"; the output tree is then
//! computed by the tree-minor operation. [`Wrapper`] bundles a monadic
//! datalog program with the designation of which intensional predicates
//! are *extraction* predicates (the rest are auxiliary — the paper's XML
//! Designer makes exactly this distinction) and with their output labels.

use lixto_tree::minor::{tree_minor_with_values, MinorOptions, Selection};
use lixto_tree::Document;

use crate::ast::Program;
use crate::{EvalError, MonadicEvaluator};

/// A monadic-datalog wrapper.
#[derive(Debug, Clone)]
pub struct Wrapper {
    /// The wrapper program.
    pub program: Program,
    /// `(predicate, output label)` pairs, in priority order (first match
    /// labels a node that several predicates select).
    pub extraction: Vec<(String, String)>,
    /// Output-tree construction options.
    pub minor_options: MinorOptions,
}

impl Wrapper {
    /// Wrapper extracting *every* intensional predicate, labeled by the
    /// predicate name (the paper's default).
    pub fn new(program: Program) -> Wrapper {
        let extraction = program
            .idb_predicates()
            .into_iter()
            .map(|p| (p.clone(), p))
            .collect();
        Wrapper {
            program,
            extraction,
            minor_options: MinorOptions::default(),
        }
    }

    /// Wrapper extracting only the given predicates (declaring all others
    /// auxiliary), each with an explicit output label.
    pub fn with_extraction(program: Program, extraction: Vec<(String, String)>) -> Wrapper {
        Wrapper {
            program,
            extraction,
            minor_options: MinorOptions::default(),
        }
    }

    /// Run the wrapper: evaluate the program and build the output tree.
    pub fn wrap(&self, doc: &Document) -> Result<Document, EvalError> {
        let results = MonadicEvaluator::new(doc).eval(&self.program)?;
        let mut selections: Vec<Selection> = Vec::new();
        for (pred, label) in &self.extraction {
            if let Some(nodes) = results.get(pred) {
                for &node in nodes {
                    selections.push(Selection {
                        node,
                        new_label: label.clone(),
                    });
                }
            }
        }
        // tree_minor resolves multi-matches by first selection; order the
        // selections by extraction priority, which `extraction` already
        // encodes. Sort stably by node document order within a predicate is
        // already given.
        Ok(tree_minor_with_values(
            doc,
            &selections,
            &self.minor_options,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;
    use lixto_tree::render::to_sexp;

    #[test]
    fn wrapper_end_to_end_table() {
        let program = parse_program(
            r#"record(X) :- label(X, "tr").
               field(X) :- record(R), child(R, X), label(X, "td")."#,
        )
        .unwrap();
        let doc = lixto_html::parse(
            "<table><tr><td>alpha</td><td>beta</td></tr><tr><td>gamma</td></tr></table>",
        );
        let out = Wrapper::new(program).wrap(&doc).unwrap();
        assert_eq!(
            to_sexp(&out),
            r#"(result (record (field "alpha") (field "beta")) (record (field "gamma")))"#
        );
    }

    #[test]
    fn auxiliary_predicates_do_not_reach_output() {
        let program = parse_program(
            r#"aux(X) :- label(X, "tr").
               field(X) :- aux(R), child(R, X), label(X, "td")."#,
        )
        .unwrap();
        let w = Wrapper::with_extraction(program, vec![("field".into(), "cell".into())]);
        let doc = lixto_html::parse("<table><tr><td>v</td></tr></table>");
        let out = w.wrap(&doc).unwrap();
        assert_eq!(to_sexp(&out), r#"(result (cell "v"))"#);
    }

    #[test]
    fn extraction_priority_orders_labels() {
        let program = parse_program(
            r#"em(X) :- label(X, "i").
               strong(X) :- label(X, "i")."#,
        )
        .unwrap();
        let w = Wrapper::with_extraction(
            program,
            vec![("strong".into(), "s".into()), ("em".into(), "e".into())],
        );
        let doc = lixto_html::parse("<i>x</i>");
        let out = w.wrap(&doc).unwrap();
        assert_eq!(to_sexp(&out), r#"(result (s "x"))"#);
    }
}
