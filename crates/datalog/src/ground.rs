//! Grounding monadic TMNF programs over a document — the O(|P|·|dom|) step
//! of Theorem 2.4.
//!
//! The tree relations have (bidirectional) functional dependencies:
//! `firstchild`, `nextsibling` and their inverses are partial functions, so
//! a form-(2) rule contributes at most one ground clause per node; `child`
//! contributes one clause per (parent, child) edge — Σ = |dom| − 1 over the
//! whole tree. The resulting propositional Horn program has size
//! O(|P|·|dom|) and is handed to [`ltur`](crate::ltur).

use std::collections::HashMap;

use lixto_tree::{Document, NodeId};

use crate::ast::{Program, Rule, Term};
use crate::ltur::Clause;
use crate::EvalError;

/// A grounded program plus the bookkeeping to read answers back.
#[derive(Debug)]
pub struct GroundProgram {
    /// Propositional Horn clauses.
    pub clauses: Vec<Clause>,
    /// Total number of propositions (`n_preds * n_nodes`).
    pub n_props: usize,
    pred_index: HashMap<String, usize>,
    n_nodes: usize,
}

impl GroundProgram {
    /// Proposition id for `pred(node)`.
    pub fn prop(&self, pred: &str, node: NodeId) -> Option<u32> {
        self.pred_index
            .get(pred)
            .map(|&pi| (pi * self.n_nodes + node.index()) as u32)
    }

    /// Nodes where `pred` is true, in document order.
    pub fn true_nodes(&self, truths: &[bool], pred: &str, doc: &Document) -> Vec<NodeId> {
        let Some(&pi) = self.pred_index.get(pred) else {
            return Vec::new();
        };
        let base = pi * self.n_nodes;
        let mut nodes: Vec<NodeId> = (0..self.n_nodes)
            .filter(|&i| truths[base + i])
            .map(NodeId::from_index)
            .collect();
        nodes.sort_by_key(|&n| doc.order().pre(n));
        nodes
    }
}

/// Unary EDB predicate evaluation.
fn edb_unary_holds(doc: &Document, pred: &str, label_const: Option<&str>, n: NodeId) -> bool {
    match pred {
        "root" => doc.is_root(n),
        "leaf" => doc.is_leaf(n),
        "lastsibling" => doc.is_last_sibling(n),
        "firstsibling" => doc.is_first_sibling(n),
        "label" => doc.has_label(n, label_const.unwrap_or_default()),
        _ => unreachable!("not a unary EDB predicate: {pred}"),
    }
}

fn is_edb_unary(pred: &str) -> bool {
    matches!(
        pred,
        "root" | "leaf" | "lastsibling" | "firstsibling" | "label"
    )
}

fn is_edb_binary(pred: &str) -> bool {
    matches!(
        pred,
        "firstchild" | "nextsibling" | "child" | "firstchild_inv" | "nextsibling_inv" | "child_inv"
    )
}

/// Partners of `m` under binary relation `pred` (as source). For the
/// functional relations this yields 0 or 1 node; for `child` it yields all
/// children.
fn partners(doc: &Document, pred: &str, m: NodeId) -> Vec<NodeId> {
    match pred {
        "firstchild" => doc.first_child(m).into_iter().collect(),
        "nextsibling" => doc.next_sibling(m).into_iter().collect(),
        "firstchild_inv" => match doc.parent(m) {
            Some(p) if doc.first_child(p) == Some(m) => vec![p],
            _ => vec![],
        },
        "nextsibling_inv" => doc.prev_sibling(m).into_iter().collect(),
        "child" => doc.children(m).collect(),
        "child_inv" => doc.parent(m).into_iter().collect(),
        _ => unreachable!("not a binary EDB predicate: {pred}"),
    }
}

/// Ground `program` (which must be in generalized TMNF: forms (1)–(3),
/// allowing `child`/`child_inv` and unary conjunctions of any length) over
/// `doc`.
pub fn ground_program(program: &Program, doc: &Document) -> Result<GroundProgram, EvalError> {
    // Index intensional predicates (head or body occurrences).
    let mut pred_index: HashMap<String, usize> = HashMap::new();
    let add_pred = |p: &str, pred_index: &mut HashMap<String, usize>| {
        if !is_edb_unary(p) && !is_edb_binary(p) {
            let next = pred_index.len();
            pred_index.entry(p.to_string()).or_insert(next);
        }
    };
    for r in &program.rules {
        add_pred(&r.head.pred, &mut pred_index);
        for l in &r.body {
            add_pred(&l.atom.pred, &mut pred_index);
        }
    }
    let n_nodes = doc.len();
    let n_props = pred_index.len() * n_nodes;
    let prop = |pi: usize, n: NodeId| (pi * n_nodes + n.index()) as u32;

    let mut clauses: Vec<Clause> = Vec::new();
    for rule in &program.rules {
        ground_rule(rule, doc, &pred_index, prop, &mut clauses)?;
    }
    Ok(GroundProgram {
        clauses,
        n_props,
        pred_index,
        n_nodes,
    })
}

fn ground_rule(
    rule: &Rule,
    doc: &Document,
    pred_index: &HashMap<String, usize>,
    prop: impl Fn(usize, NodeId) -> u32,
    clauses: &mut Vec<Clause>,
) -> Result<(), EvalError> {
    let head_var = rule.head.args[0]
        .as_var()
        .ok_or_else(|| EvalError::NotTreeShaped(rule.to_string()))?;
    let head_pi = pred_index[&rule.head.pred];

    // Split body into the (at most one) binary atom and unary atoms.
    let mut binary: Option<(&str, &str, &str)> = None; // (pred, src var, tgt var)
    let mut unary: Vec<(&str, Option<&str>, &str)> = Vec::new(); // (pred, label const, var)
    for lit in &rule.body {
        let a = &lit.atom;
        if is_edb_binary(&a.pred) {
            if binary.is_some() {
                return Err(EvalError::NotTreeShaped(rule.to_string()));
            }
            let (Some(s), Some(t)) = (a.args[0].as_var(), a.args[1].as_var()) else {
                return Err(EvalError::NotTreeShaped(rule.to_string()));
            };
            binary = Some((a.pred.as_str(), s, t));
        } else {
            let v = a.args[0]
                .as_var()
                .ok_or_else(|| EvalError::NotTreeShaped(rule.to_string()))?;
            let label = if a.pred == "label" {
                match &a.args[1] {
                    Term::Const(c) => Some(c.as_str()),
                    Term::Var(_) => return Err(EvalError::NotTreeShaped(rule.to_string())),
                }
            } else {
                None
            };
            unary.push((a.pred.as_str(), label, v));
        }
    }

    match binary {
        None => {
            // Forms (1)/(3)/longer unary conjunctions: all atoms must be on
            // the head variable.
            if unary.iter().any(|&(_, _, v)| v != head_var) {
                return Err(EvalError::NotTreeShaped(rule.to_string()));
            }
            'nodes: for n in doc.node_ids() {
                let mut body = Vec::new();
                for &(p, label, _) in &unary {
                    if is_edb_unary(p) {
                        if !edb_unary_holds(doc, p, label, n) {
                            continue 'nodes;
                        }
                    } else {
                        body.push(prop(pred_index[p], n));
                    }
                }
                clauses.push(Clause {
                    head: prop(head_pi, n),
                    body,
                });
            }
        }
        Some((bpred, src, tgt)) => {
            // Form (2): p(x) ← p0(x0), B(x0, x) — with the grounder being
            // generous about extra unary atoms on either variable.
            if tgt != head_var {
                return Err(EvalError::NotTreeShaped(rule.to_string()));
            }
            'nodes2: for m in doc.node_ids() {
                // Conditions on x0 = m.
                let mut body_src: Vec<u32> = Vec::new();
                for &(p, label, v) in &unary {
                    if v != src {
                        continue;
                    }
                    if is_edb_unary(p) {
                        if !edb_unary_holds(doc, p, label, m) {
                            continue 'nodes2;
                        }
                    } else {
                        body_src.push(prop(pred_index[p], m));
                    }
                }
                'partners: for c in partners(doc, bpred, m) {
                    let mut body = body_src.clone();
                    for &(p, label, v) in &unary {
                        if v != tgt {
                            continue;
                        }
                        if is_edb_unary(p) {
                            if !edb_unary_holds(doc, p, label, c) {
                                continue 'partners;
                            }
                        } else {
                            body.push(prop(pred_index[p], c));
                        }
                    }
                    clauses.push(Clause {
                        head: prop(head_pi, c),
                        body,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ltur::solve;
    use crate::parse_program;

    #[test]
    fn ground_size_is_linear_in_nodes() {
        let program = parse_program(
            r#"italic(X) :- label(X, "i").
               italic(X) :- italic(X0), firstchild(X0, X).
               italic(X) :- italic(X0), nextsibling(X0, X)."#,
        )
        .unwrap();
        let small = lixto_html::parse(&"<i>x</i>".repeat(10));
        let large = lixto_html::parse(&"<i>x</i>".repeat(100));
        let gs = ground_program(&program, &small).unwrap();
        let gl = ground_program(&program, &large).unwrap();
        // clauses should scale ~10x with the tree (± the constant root).
        let ratio = gl.clauses.len() as f64 / gs.clauses.len() as f64;
        assert!((8.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn ground_and_solve_italics() {
        let program = parse_program(
            r#"italic(X) :- label(X, "i").
               italic(X) :- italic(X0), firstchild(X0, X).
               italic(X) :- italic(X0), nextsibling(X0, X)."#,
        )
        .unwrap();
        // "d" is a right sibling of <i> and is selected too — the
        // program as printed in the paper propagates across the seed's
        // nextsibling (see lib.rs::example_2_1_italics).
        let doc = lixto_html::parse("<p><i>a<b>c</b></i>d</p>");
        let g = ground_program(&program, &doc).unwrap();
        let truths = solve(&g.clauses, g.n_props);
        let sel = g.true_nodes(&truths, "italic", &doc);
        assert_eq!(sel.len(), 5);
    }

    #[test]
    fn child_edges_ground_per_edge() {
        let program =
            parse_program(r#"kid(X) :- top(X0), child(X0, X). top(X) :- root(X)."#).unwrap();
        let doc = lixto_html::parse("<a/><b/><c/>");
        let g = ground_program(&program, &doc).unwrap();
        let truths = solve(&g.clauses, g.n_props);
        let sel = g.true_nodes(&truths, "kid", &doc);
        assert_eq!(sel.len(), 3); // a, b, c under the html root
    }

    #[test]
    fn facts_fire_for_edb_only_bodies() {
        let program = parse_program("r(X) :- root(X).").unwrap();
        let doc = lixto_html::parse("<p/>");
        let g = ground_program(&program, &doc).unwrap();
        let truths = solve(&g.clauses, g.n_props);
        assert_eq!(g.true_nodes(&truths, "r", &doc), vec![doc.root()]);
    }
}
