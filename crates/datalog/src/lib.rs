//! # lixto-datalog
//!
//! Datalog, monadic datalog over trees, the TMNF normal form, and the
//! linear-time evaluation pipeline of the PODS 2004 Lixto paper (Section 2).
//!
//! Two evaluation paths are provided, mirroring the paper's complexity
//! story:
//!
//! * **General structures** ([`seminaive`]): stratified semi-naive
//!   evaluation over an explicit [`Database`] of
//!   relations. Combined complexity is NP-complete for monadic programs
//!   over arbitrary structures (Proposition 2.3) — the engine is exact but
//!   its joins can blow up, which experiment E3 demonstrates on purpose.
//! * **Trees** ([`MonadicEvaluator`]): monadic programs over the tree
//!   signature τ_ur ∪ {child} are first rewritten into the Tree-Marking
//!   Normal Form **TMNF** (Definition 2.6, Theorem 2.7) by [`tmnf`], then
//!   *grounded* in O(|P|·|dom|) using the bidirectional functional
//!   dependencies of the tree relations ([`ground`]), and the ground Horn
//!   program is solved by counter-based linear unit resolution — Minoux's
//!   LTUR \[29\] — in [`ltur`]. Total: O(|P|·|dom|), Theorem 2.4.
//!
//! [`wrapper`] packages the result as the paper's *information extraction
//! functions*: a program plus designated extraction predicates, whose
//! assignment of unary predicates to nodes is turned into an output tree by
//! the tree-minor operation of Section 2.1.
//!
//! # Example — the italics program of Example 2.1
//!
//! ```
//! use lixto_datalog::{parse_program, MonadicEvaluator};
//!
//! let doc = lixto_html::parse("<p><i>a<b>c</b></i></p>");
//! let program = parse_program(r#"
//!     italic(X) :- label(X, "i").
//!     italic(X) :- italic(X0), firstchild(X0, X).
//!     italic(X) :- italic(X0), nextsibling(X0, X).
//! "#).unwrap();
//! let result = MonadicEvaluator::new(&doc).eval(&program).unwrap();
//! let italic_nodes = &result["italic"];
//! // the <i> element, its text "a", the <b> element and its text "c"
//! assert_eq!(italic_nodes.len(), 4);
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod ground;
pub mod ltur;
pub mod parser;
pub mod seminaive;
pub mod stratify;
pub mod structure;
pub mod tmnf;
pub mod wrapper;

use std::collections::HashMap;

use lixto_tree::{Document, NodeId};

pub use ast::{Atom, Literal, Program, Rule, Term};
pub use parser::parse_program;
pub use structure::{tree_db, Database};
pub use wrapper::Wrapper;

/// Errors surfaced by evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A predicate is used with inconsistent arity.
    ArityMismatch(String),
    /// The monadic path requires all intensional predicates unary.
    NonMonadic(String),
    /// A rule uses a predicate that is neither intensional nor part of the
    /// tree signature.
    UnknownPredicate(String),
    /// Rule is unsafe (head variable not bound by a positive body atom).
    Unsafe(String),
    /// The TMNF rewriter cannot handle this rule (cyclic body graph) —
    /// callers fall back to [`seminaive`].
    NotTreeShaped(String),
    /// Negation cycle: the program is not stratified.
    NotStratified(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::ArityMismatch(p) => write!(f, "arity mismatch for predicate '{p}'"),
            EvalError::NonMonadic(p) => write!(f, "intensional predicate '{p}' is not unary"),
            EvalError::UnknownPredicate(p) => write!(f, "unknown predicate '{p}'"),
            EvalError::Unsafe(r) => write!(f, "unsafe rule: {r}"),
            EvalError::NotTreeShaped(r) => write!(f, "rule body is not tree-shaped: {r}"),
            EvalError::NotStratified(p) => {
                write!(
                    f,
                    "program is not stratified (negation cycle through '{p}')"
                )
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluator for monadic datalog programs over a tree document.
///
/// Implements the Theorem 2.4 pipeline (TMNF → ground → LTUR) with a
/// transparent fallback to the general semi-naive engine for rules the
/// TMNF rewriter rejects (cyclic bodies, which cannot arise from the
/// visual specification process but are legal datalog).
pub struct MonadicEvaluator<'d> {
    doc: &'d Document,
}

impl<'d> MonadicEvaluator<'d> {
    /// Create an evaluator for `doc`.
    pub fn new(doc: &'d Document) -> Self {
        MonadicEvaluator { doc }
    }

    /// Evaluate `program`, returning for every intensional predicate the
    /// set of selected nodes in document order.
    pub fn eval(&self, program: &Program) -> Result<HashMap<String, Vec<NodeId>>, EvalError> {
        program.check_tree_program()?;
        match tmnf::to_tmnf(
            program,
            tmnf::TmnfOptions {
                eliminate_child: false,
            },
        ) {
            Ok(translation) => {
                let ground = ground::ground_program(&translation.program, self.doc)?;
                let truths = ltur::solve(&ground.clauses, ground.n_props);
                let mut out: HashMap<String, Vec<NodeId>> = HashMap::new();
                for pred in program.idb_predicates() {
                    let nodes = ground.true_nodes(&truths, &pred, self.doc);
                    out.insert(pred, nodes);
                }
                Ok(out)
            }
            Err(EvalError::NotTreeShaped(_)) => {
                // Correctness fallback: general engine on the materialized
                // tree database.
                let db = tree_db(self.doc);
                let result = seminaive::eval(&db, program)?;
                let mut out: HashMap<String, Vec<NodeId>> = HashMap::new();
                for pred in program.idb_predicates() {
                    let mut nodes: Vec<NodeId> = result
                        .tuples(&pred)
                        .map(|t| NodeId::from_index(t[0] as usize))
                        .collect();
                    nodes.sort_by_key(|&n| self.doc.order().pre(n));
                    out.insert(pred, nodes);
                }
                Ok(out)
            }
            Err(e) => Err(e),
        }
    }

    /// Evaluate and return just one predicate's selection.
    pub fn eval_predicate(&self, program: &Program, pred: &str) -> Result<Vec<NodeId>, EvalError> {
        let mut all = self.eval(program)?;
        Ok(all.remove(pred).unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn italic_program() -> Program {
        parse_program(
            r#"
            italic(X) :- label(X, "i").
            italic(X) :- italic(X0), firstchild(X0, X).
            italic(X) :- italic(X0), nextsibling(X0, X).
            "#,
        )
        .unwrap()
    }

    #[test]
    fn example_2_1_italics() {
        // Note on fidelity: the program exactly as printed in the paper
        // propagates Italic from the seed <i> node to its *own* next
        // siblings as well (rule 3 fires from the seed), so siblings to the
        // right of an <i> element are also selected. We assert the faithful
        // least-model semantics here; the doctest on the crate root shows
        // the clean case without following siblings.
        let doc = lixto_html::parse("<p><i>a<b>c</b></i>d<i>e</i></p>");
        let sel = MonadicEvaluator::new(&doc)
            .eval_predicate(&italic_program(), "italic")
            .unwrap();
        let labels: Vec<_> = sel.iter().map(|&n| doc.label_str(n).to_string()).collect();
        // i, "a", b, "c", then the leaked sibling "d", then i, "e".
        assert_eq!(
            labels,
            vec!["i", "#text", "b", "#text", "#text", "i", "#text"]
        );
        assert!(sel.iter().any(|&n| doc.text(n) == Some("d")));
    }

    #[test]
    fn seminaive_and_ltur_agree_on_italics() {
        let doc =
            lixto_html::parse("<body><i>x<span>y</span></i><p>plain<i><i>deep</i></i></p></body>");
        let program = italic_program();
        let fast = MonadicEvaluator::new(&doc)
            .eval_predicate(&program, "italic")
            .unwrap();
        let db = tree_db(&doc);
        let slow = seminaive::eval(&db, &program).unwrap();
        let mut slow_nodes: Vec<NodeId> = slow
            .tuples("italic")
            .map(|t| NodeId::from_index(t[0] as usize))
            .collect();
        slow_nodes.sort_by_key(|&n| doc.order().pre(n));
        assert_eq!(fast, slow_nodes);
    }

    #[test]
    fn multi_variable_path_rule() {
        // price(X) :- record(R), child(R, T), label(T, "td"), child(T, X),
        //             label(X, "#text")  — a 3-variable chain rule.
        let doc =
            lixto_html::parse("<table><tr class=\"rec\"><td>alpha</td><td>beta</td></tr></table>");
        let program = parse_program(
            r##"
            record(X) :- label(X, "tr").
            cell_text(X) :- record(R), child(R, T), label(T, "td"), child(T, X), label(X, "#text").
            "##,
        )
        .unwrap();
        let sel = MonadicEvaluator::new(&doc)
            .eval_predicate(&program, "cell_text")
            .unwrap();
        let texts: Vec<_> = sel.iter().map(|&n| doc.text(n).unwrap()).collect();
        assert_eq!(texts, vec!["alpha", "beta"]);
    }

    #[test]
    fn cyclic_rule_falls_back_to_seminaive() {
        // twochildren(X) :- child(X, Y), child(X, Z), nextsibling(Y, Z)
        // has a cyclic body graph (X-Y, X-Z, Y-Z) — the fallback must
        // still produce the right answer.
        let doc = lixto_html::parse("<ul><li>a</li><li>b</li></ul><p>c</p>");
        let program =
            parse_program("adjpair(X) :- child(X, Y), child(X, Z), nextsibling(Y, Z).").unwrap();
        let sel = MonadicEvaluator::new(&doc)
            .eval_predicate(&program, "adjpair")
            .unwrap();
        let labels: Vec<_> = sel.iter().map(|&n| doc.label_str(n).to_string()).collect();
        // html has two children (ul, p); ul has two adjacent li children.
        assert_eq!(labels, vec!["html", "ul"]);
    }

    #[test]
    fn unknown_predicate_is_an_error() {
        let doc = lixto_html::parse("<p/>");
        let program = parse_program("q(X) :- mystery(X).").unwrap();
        assert!(matches!(
            MonadicEvaluator::new(&doc).eval(&program),
            Err(EvalError::UnknownPredicate(_))
        ));
    }
}
