//! The wrapper registry: named, versioned, compiled Elog wrappers.
//!
//! The commercial Transformation Server kept a library of deployed
//! wrappers that operators upgraded in place while the service kept
//! running. The registry reproduces that: every `register` call appends a
//! new immutable version (1-based), lookups default to the latest one,
//! and in-flight jobs keep the `Arc` of the version they resolved — an
//! upgrade never mutates a wrapper another thread is executing.
//!
//! Two properties were added for the compile-once architecture:
//!
//! * **Compilation happens at registration.** A [`WrapperSpec`] carries
//!   the Elog source *and* the [`WrapperPlan`] compiled from it; the
//!   worker pool executes the shared plan
//!   ([`Extractor::from_plan`](lixto_elog::Extractor::from_plan)) and
//!   never re-walks the AST. Programs that do not compile are rejected
//!   here, once, with a structured [`DeployError`] — not per request.
//! * **Optional durability.** A registry opened with
//!   [`WrapperRegistry::with_spool`] persists every registered version
//!   (source + XML design + limits) to a spool directory and reloads —
//!   recompiling — whatever the spool holds, so a restarted server
//!   resumes with its deployed wrappers.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

use lixto_core::XmlDesign;
use lixto_elog::concepts::Concept;
use lixto_elog::{
    parse_program, CompileError, ConceptRegistry, ElogProgram, ExtractorOptions, OptimizedPlan,
    ParseError, WrapperPlan,
};
use lixto_obs::{warn_event, RuleStats};

use crate::cache::fxhash64;

/// Why a wrapper was rejected at deploy time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// The Elog source does not parse.
    Parse(ParseError),
    /// The program parses but does not compile into a plan (unknown
    /// parent pattern, unbound variable, dangling concept, bad regex).
    Compile(CompileError),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Parse(e) => write!(f, "parse error: {e}"),
            DeployError::Compile(e) => write!(f, "compile error: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

/// Everything needed to execute one wrapper: the compiled plan, its
/// source, the XML output design, and the extraction environment.
#[derive(Clone)]
pub struct WrapperSpec {
    /// The Elog source the plan was compiled from (persisted by the
    /// spool; re-deployable as-is).
    pub source: String,
    /// The compiled execution plan, shared with every in-flight job.
    pub plan: Arc<WrapperPlan>,
    /// The optimized form of `plan` (rule schedule, fused path automata,
    /// hoist groups — see [`lixto_elog::optimize`]), built once at
    /// deploy time; the worker pool executes this. Always derived from
    /// `plan`, so it carries no independent semantic identity and does
    /// not contribute to [`plan_id`](WrapperSpec::plan_id).
    pub optimized: Arc<OptimizedPlan>,
    /// Mapping from the instance base to the output XML document.
    pub design: XmlDesign,
    /// Concept predicates the plan was compiled against. Private on
    /// purpose: execution reads the matchers *baked into the plan*, so
    /// replacing this field without recompiling would silently desync
    /// behavior from [`plan_id`](WrapperSpec::plan_id) — go through
    /// [`with_concepts`](WrapperSpec::with_concepts), which recompiles.
    concepts: ConceptRegistry,
    /// Safety limits for the extraction fixpoint.
    pub options: ExtractorOptions,
}

impl WrapperSpec {
    /// Compile a program (with built-in concepts and default limits).
    /// The stored source is the program's canonical pretty-printed form.
    pub fn new(program: ElogProgram, design: XmlDesign) -> Result<WrapperSpec, DeployError> {
        let source = program.to_string();
        let concepts = ConceptRegistry::builtin();
        let plan = WrapperPlan::compile(&program, &concepts).map_err(DeployError::Compile)?;
        let plan = Arc::new(plan);
        Ok(WrapperSpec {
            source,
            optimized: Arc::new(OptimizedPlan::new(plan.clone())),
            plan,
            design,
            concepts,
            options: ExtractorOptions::default(),
        })
    }

    /// Parse and compile `source` Elog text into a spec.
    pub fn from_source(source: &str, design: XmlDesign) -> Result<WrapperSpec, DeployError> {
        let program = parse_program(source).map_err(DeployError::Parse)?;
        let concepts = ConceptRegistry::builtin();
        let plan = WrapperPlan::compile(&program, &concepts).map_err(DeployError::Compile)?;
        let plan = Arc::new(plan);
        Ok(WrapperSpec {
            source: source.to_string(),
            optimized: Arc::new(OptimizedPlan::new(plan.clone())),
            plan,
            design,
            concepts,
            options: ExtractorOptions::default(),
        })
    }

    /// Replace the concept registry. Concepts are baked into the plan at
    /// compile time, so this recompiles — and can now fail, e.g. when
    /// the program references a concept the new registry lacks.
    pub fn with_concepts(mut self, concepts: ConceptRegistry) -> Result<Self, DeployError> {
        let plan =
            WrapperPlan::compile(self.plan.program(), &concepts).map_err(DeployError::Compile)?;
        self.plan = Arc::new(plan);
        self.optimized = Arc::new(OptimizedPlan::new(self.plan.clone()));
        self.concepts = concepts;
        Ok(self)
    }

    /// Replace the safety limits.
    pub fn with_options(mut self, options: ExtractorOptions) -> Self {
        self.options = options;
        self
    }

    /// The concept registry the plan was compiled against.
    pub fn concepts(&self) -> &ConceptRegistry {
        &self.concepts
    }

    /// Fingerprint of the wrapper's full semantic identity: canonical
    /// program text, output design, concept definitions, and limits.
    /// Anything that can change an extraction's result changes the
    /// fingerprint; a byte-for-byte redeploy keeps it — this is what the
    /// result cache keys on (see [`CacheKey`](crate::CacheKey)).
    pub fn plan_id(&self) -> u64 {
        let mut canon = String::new();
        canon.push_str(&self.plan.program().to_string());
        canon.push('\u{1e}');
        canon.push_str(&self.design.root_label);
        let mut aux: Vec<&str> = self
            .design
            .auxiliary_patterns()
            .iter()
            .map(String::as_str)
            .collect();
        aux.sort_unstable();
        aux.dedup();
        for a in aux {
            canon.push('\u{1f}');
            canon.push_str(a);
        }
        canon.push('\u{1e}');
        for (pattern, label) in self.design.label_overrides() {
            canon.push_str(pattern);
            canon.push('\u{1f}');
            canon.push_str(label);
            canon.push('\u{1f}');
        }
        canon.push('\u{1e}');
        for (name, concept) in self.concepts.entries() {
            canon.push_str(name);
            canon.push('\u{1f}');
            match concept {
                Concept::Syntactic(re) => canon.push_str(re),
                Concept::Semantic(set) => {
                    let mut members: Vec<&str> = set.iter().map(String::as_str).collect();
                    members.sort_unstable();
                    canon.push_str(&members.join(","));
                }
            }
            canon.push('\u{1f}');
        }
        canon.push_str(&format!(
            "\u{1e}{}|{}",
            self.options.max_documents, self.options.max_instances
        ));
        fxhash64(canon.as_bytes())
    }
}

/// One registered, immutable wrapper version.
pub struct RegisteredWrapper {
    /// The wrapper's registry name.
    pub name: String,
    /// 1-based version, assigned at registration.
    pub version: u32,
    /// Semantic fingerprint of the spec ([`WrapperSpec::plan_id`]) —
    /// the wrapper identity the result cache keys on.
    pub plan_id: u64,
    /// The executable spec.
    pub spec: WrapperSpec,
    /// Per-rule execution counters for this version, shared with every
    /// in-flight job (the executor records into it through an
    /// [`ExecProbe`](lixto_elog::ExecProbe)). Rule `i` is labeled with
    /// its target pattern name; the `/debug/wrappers/{name}` endpoint
    /// and the `lixto_rule_*` Prometheus series read snapshots of it.
    pub telemetry: Arc<RuleStats>,
}

/// Thread-safe name → versions map shared by clients and worker shards.
#[derive(Default)]
pub struct WrapperRegistry {
    inner: RwLock<HashMap<String, Vec<Arc<RegisteredWrapper>>>>,
    /// When set, every registered version is persisted here and a fresh
    /// registry opened on the same directory reloads them.
    spool: Option<PathBuf>,
}

impl WrapperRegistry {
    /// An empty, in-memory registry.
    pub fn new() -> WrapperRegistry {
        WrapperRegistry::default()
    }

    /// A durable registry spooling to `dir`: existing wrapper manifests
    /// in `dir` are reloaded (and recompiled) immediately, and every
    /// subsequent [`register`](WrapperRegistry::register) writes one.
    /// Reloaded wrappers get built-in concepts; custom concept
    /// registries are not persisted.
    ///
    /// # Spool format
    ///
    /// One file per registered version, named
    /// `{sanitized-name}@{version}.wrapper`, where the sanitized name
    /// keeps `[A-Za-z0-9_-]` and percent-encodes every other byte (the
    /// `name=` header inside the file carries the authoritative name).
    /// Each file is line-oriented UTF-8:
    ///
    /// ```text
    /// lixto-wrapper v1          magic first line
    /// name=<escaped>
    /// root=<escaped>
    /// auxiliary=<escaped>       zero or more
    /// label=<escaped>\t<escaped>  zero or more pattern→label overrides
    /// max_documents=<n>
    /// max_instances=<n>
    /// program:
    /// <raw Elog source, possibly many lines>
    /// end-program
    /// version=<n>
    /// end
    /// ```
    ///
    /// Header values use the durability directory's shared escaping
    /// convention — `\\`, `\n`, `\r`, `\t` backslash-escaped, everything
    /// else verbatim — so names, labels and roots may
    /// contain any Unicode including tabs and newlines. The result
    /// store under the same data root uses the identical convention
    /// (see [`durability_layout`](crate::durability_layout)).
    ///
    /// # Recovery
    ///
    /// A manifest that no longer *parses* (truncated by a crash
    /// mid-write, hand-edited, wrong magic) is **skipped with a
    /// structured `spool_manifest_corrupt` warning** — one bad file
    /// must not keep a server with dozens of
    /// healthy wrappers from starting. A manifest that parses but whose
    /// Elog source no longer *compiles* is still a hard
    /// [`InvalidData`](io::ErrorKind::InvalidData) error: that means
    /// the engine and the spool disagree about the language, which an
    /// operator must resolve rather than silently dropping a deployed
    /// wrapper.
    pub fn with_spool(dir: impl Into<PathBuf>) -> io::Result<WrapperRegistry> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let registry = WrapperRegistry {
            inner: RwLock::new(HashMap::new()),
            spool: Some(dir.clone()),
        };
        // Collect manifests and register them in (name, version) order,
        // so reassigned version numbers reproduce the spooled ones.
        let mut manifests: Vec<(PathBuf, SpoolManifest)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("wrapper") {
                continue;
            }
            match parse_manifest(&fs::read_to_string(&path)?) {
                Ok(manifest) => manifests.push((path, manifest)),
                Err(e) => warn_event!(
                    "spool_manifest_corrupt",
                    "path" => path.display().to_string(),
                    "error" => &e,
                ),
            }
        }
        manifests.sort_by(|(_, a), (_, b)| (&a.name, a.version).cmp(&(&b.name, b.version)));
        for (path, m) in manifests {
            let spec = WrapperSpec::from_source(&m.source, m.design)
                .map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "spooled wrapper {:?} v{} no longer compiles: {e}",
                            m.name, m.version
                        ),
                    )
                })?
                .with_options(m.options);
            let (assigned, _) = registry.register_in_memory(&m.name, spec);
            // A dense spool reloads with its recorded numbering and the
            // manifest on disk is already correct. A gap (e.g. a past
            // spool-write failure) makes append-registration assign a
            // lower number: rewrite the manifest under the new version
            // so disk and memory agree — otherwise a later register()
            // of the same name would clobber the old file and lose the
            // wrapper on the restart after that.
            if assigned != m.version {
                let renumbered = registry
                    .version(&m.name, assigned)
                    .expect("just registered");
                let body = render_manifest_body(&m.name, &renumbered.spec);
                let new_path = dir.join(format!("{}@{assigned}.wrapper", sanitize(&m.name)));
                fs::write(&new_path, format!("{body}version={assigned}\nend\n"))?;
                fs::remove_file(&path)?;
            }
        }
        Ok(registry)
    }

    /// The spool directory, when this registry is durable.
    pub fn spool_dir(&self) -> Option<&Path> {
        self.spool.as_deref()
    }

    fn register_in_memory(&self, name: &str, spec: WrapperSpec) -> (u32, u64) {
        let plan_id = spec.plan_id();
        // Telemetry slots are indexed by the plan's dense rule ids and
        // labeled with each rule's target pattern.
        let labels = spec
            .plan
            .rules()
            .iter()
            .map(|r| spec.plan.patterns()[r.pattern as usize].clone())
            .collect();
        let mut inner = self.inner.write().expect("registry poisoned");
        let versions = inner.entry(name.to_string()).or_default();
        let version = versions.len() as u32 + 1;
        versions.push(Arc::new(RegisteredWrapper {
            name: name.to_string(),
            version,
            plan_id,
            spec,
            telemetry: Arc::new(RuleStats::new(labels)),
        }));
        (version, plan_id)
    }

    /// Register a new version of `name`; returns the assigned version.
    /// On a durable registry the version is also spooled to disk
    /// (best-effort: a write failure keeps the in-memory registration
    /// and logs a `spool_write_failed` warning).
    pub fn register(&self, name: &str, spec: WrapperSpec) -> u32 {
        let manifest = self
            .spool
            .as_ref()
            .map(|dir| (dir.clone(), render_manifest_body(name, &spec)));
        let (version, _) = self.register_in_memory(name, spec);
        if let Some((dir, body)) = manifest {
            let path = dir.join(format!("{}@{version}.wrapper", sanitize(name)));
            if let Err(e) = fs::write(&path, format!("{body}version={version}\nend\n")) {
                warn_event!(
                    "spool_write_failed",
                    "wrapper" => name,
                    "version" => version,
                    "error" => e.to_string(),
                );
                let _ = fs::remove_file(&path);
            }
        }
        version
    }

    /// Compile `source` and register it; returns the assigned version.
    pub fn register_source(
        &self,
        name: &str,
        source: &str,
        design: XmlDesign,
    ) -> Result<u32, DeployError> {
        Ok(self.register(name, WrapperSpec::from_source(source, design)?))
    }

    /// The latest version of `name`.
    pub fn latest(&self, name: &str) -> Option<Arc<RegisteredWrapper>> {
        let inner = self.inner.read().expect("registry poisoned");
        inner.get(name).and_then(|v| v.last()).cloned()
    }

    /// A specific version of `name`.
    pub fn version(&self, name: &str, version: u32) -> Option<Arc<RegisteredWrapper>> {
        let inner = self.inner.read().expect("registry poisoned");
        inner
            .get(name)?
            .get(version.checked_sub(1)? as usize)
            .cloned()
    }

    /// The deployed catalog: every registered name with its latest
    /// version, name-sorted. Versions are dense and 1-based, so the
    /// latest version doubles as the version count — this is the listing
    /// the HTTP gateway's `GET /wrappers` endpoint serves.
    pub fn catalog(&self) -> Vec<(String, u32)> {
        let inner = self.inner.read().expect("registry poisoned");
        let mut entries: Vec<(String, u32)> = inner
            .iter()
            .map(|(name, versions)| (name.clone(), versions.len() as u32))
            .collect();
        entries.sort();
        entries
    }

    /// Registered wrapper names, sorted.
    pub fn names(&self) -> Vec<String> {
        let inner = self.inner.read().expect("registry poisoned");
        let mut names: Vec<String> = inner.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.inner.read().expect("registry poisoned").len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// Spool manifests: a line-oriented header (escaped values) followed by
// the raw Elog source. Versioned with a magic first line.

const MANIFEST_MAGIC: &str = "lixto-wrapper v1";

struct SpoolManifest {
    name: String,
    version: u32,
    design: XmlDesign,
    options: ExtractorOptions,
    source: String,
}

/// Escape a string for a single line-oriented manifest/store field:
/// `\\`, `\n`, `\r` and `\t` are backslash-escaped, everything else is
/// verbatim UTF-8. Shared by the registry spool and the result store —
/// the one escaping convention of the durability directory.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]; errors on a dangling or unknown escape.
pub(crate) fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            other => return Err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

/// Only `[A-Za-z0-9_-]` survives into file names; everything else is
/// percent-encoded (the manifest header carries the authoritative name).
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02x}"));
        }
    }
    out
}

/// The manifest body up to (not including) the trailing `version=` /
/// `end` lines, which `register` appends once the version is assigned.
fn render_manifest_body(name: &str, spec: &WrapperSpec) -> String {
    let mut out = String::new();
    out.push_str(MANIFEST_MAGIC);
    out.push('\n');
    out.push_str(&format!("name={}\n", escape(name)));
    out.push_str(&format!("root={}\n", escape(&spec.design.root_label)));
    for aux in spec.design.auxiliary_patterns() {
        out.push_str(&format!("auxiliary={}\n", escape(aux)));
    }
    for (pattern, label) in spec.design.label_overrides() {
        out.push_str(&format!("label={}\t{}\n", escape(pattern), escape(label)));
    }
    out.push_str(&format!("max_documents={}\n", spec.options.max_documents));
    out.push_str(&format!("max_instances={}\n", spec.options.max_instances));
    out.push_str("program:\n");
    out.push_str(&spec.source);
    if !spec.source.ends_with('\n') {
        out.push('\n');
    }
    out.push_str("end-program\n");
    out
}

fn parse_manifest(text: &str) -> Result<SpoolManifest, String> {
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(format!("missing magic {MANIFEST_MAGIC:?}"));
    }
    let mut name = None;
    let mut version = None;
    let mut design = XmlDesign::new();
    let mut options = ExtractorOptions::default();
    let mut source = String::new();
    let mut saw_end = false;
    while let Some(line) = lines.next() {
        if line == "end" {
            break;
        }
        let Some((key, value)) = line.split_once(&[':', '='][..]) else {
            return Err(format!("bad header line {line:?}"));
        };
        match key {
            "name" => name = Some(unescape(value)?),
            "version" => version = Some(value.parse::<u32>().map_err(|e| e.to_string())?),
            "root" => design = design.root(&unescape(value)?),
            "auxiliary" => design = design.auxiliary(&unescape(value)?),
            "label" => {
                let (pattern, label) = value
                    .split_once('\t')
                    .ok_or_else(|| format!("bad label line {line:?}"))?;
                design = design.label(&unescape(pattern)?, &unescape(label)?);
            }
            "max_documents" => {
                options.max_documents = value
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "max_instances" => {
                options.max_instances = value
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "program" => {
                for line in lines.by_ref() {
                    if line == "end-program" {
                        saw_end = true;
                        break;
                    }
                    source.push_str(line);
                    source.push('\n');
                }
                if !saw_end {
                    return Err("unterminated program section".to_string());
                }
            }
            other => return Err(format!("unknown header key {other:?}")),
        }
    }
    Ok(SpoolManifest {
        name: name.ok_or("missing name")?,
        version: version.ok_or("missing version")?,
        design,
        options,
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const WRAPPER: &str = r#"item(S, X) :- document("http://x/", S), subelem(S, (?.li, []), X)."#;

    #[test]
    fn versions_are_appended_and_latest_wins() {
        let reg = WrapperRegistry::new();
        let v1 = reg
            .register_source("shop", WRAPPER, XmlDesign::new().root("v1"))
            .unwrap();
        let v2 = reg
            .register_source("shop", WRAPPER, XmlDesign::new().root("v2"))
            .unwrap();
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(reg.latest("shop").unwrap().version, 2);
        assert_eq!(reg.latest("shop").unwrap().spec.design.root_label, "v2");
        assert_eq!(reg.version("shop", 1).unwrap().spec.design.root_label, "v1");
        assert!(reg.version("shop", 3).is_none());
        assert!(reg.version("shop", 0).is_none());
        assert!(reg.latest("unknown").is_none());
        assert_eq!(reg.names(), vec!["shop".to_string()]);
    }

    #[test]
    fn catalog_lists_names_with_latest_versions() {
        let reg = WrapperRegistry::new();
        assert!(reg.catalog().is_empty());
        reg.register_source("zeta", WRAPPER, XmlDesign::new())
            .unwrap();
        reg.register_source("alpha", WRAPPER, XmlDesign::new())
            .unwrap();
        reg.register_source("alpha", WRAPPER, XmlDesign::new())
            .unwrap();
        assert_eq!(
            reg.catalog(),
            vec![("alpha".to_string(), 2), ("zeta".to_string(), 1)]
        );
    }

    #[test]
    fn bad_source_is_rejected() {
        let reg = WrapperRegistry::new();
        let err = reg
            .register_source("bad", "not elog at all (", XmlDesign::new())
            .unwrap_err();
        assert!(matches!(err, DeployError::Parse(_)));
        assert!(reg.is_empty());
    }

    #[test]
    fn uncompilable_source_is_rejected_with_the_compile_error() {
        let reg = WrapperRegistry::new();
        let err = reg
            .register_source(
                "bad",
                r#"x(S, X) :- ghost(_, S), subelem(S, (?.td, []), X)."#,
                XmlDesign::new(),
            )
            .unwrap_err();
        let DeployError::Compile(compile) = err else {
            panic!("expected a compile error, got {err:?}");
        };
        assert_eq!(compile.code(), "unknown_parent_pattern");
        assert!(reg.is_empty());
    }

    #[test]
    fn plan_identity_tracks_semantics_not_version() {
        let reg = WrapperRegistry::new();
        reg.register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
            .unwrap();
        reg.register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
            .unwrap();
        reg.register_source("shop", WRAPPER, XmlDesign::new().root("changed"))
            .unwrap();
        let v1 = reg.version("shop", 1).unwrap();
        let v2 = reg.version("shop", 2).unwrap();
        let v3 = reg.version("shop", 3).unwrap();
        assert_eq!(
            v1.plan_id, v2.plan_id,
            "identical redeploys share the plan identity"
        );
        assert_ne!(v1.plan_id, v3.plan_id, "a design change must re-key");
        let relimited = reg
            .latest("shop")
            .unwrap()
            .spec
            .clone()
            .with_options(ExtractorOptions {
                max_documents: 1,
                max_instances: 10,
            });
        assert_ne!(relimited.plan_id(), v3.plan_id, "limits are semantic too");
    }

    fn temp_spool(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lixto-spool-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spool_round_trips_wrappers_across_restart() {
        let dir = temp_spool("roundtrip");
        {
            let reg = WrapperRegistry::with_spool(&dir).unwrap();
            reg.register_source(
                "shop",
                WRAPPER,
                XmlDesign::new()
                    .root("v1")
                    .auxiliary("aux")
                    .label("item", "it"),
            )
            .unwrap();
            reg.register_source("shop", WRAPPER, XmlDesign::new().root("v2"))
                .unwrap();
            let spec = WrapperSpec::from_source(WRAPPER, XmlDesign::new().root("limited"))
                .unwrap()
                .with_options(ExtractorOptions {
                    max_documents: 7,
                    max_instances: 99,
                });
            reg.register("other", spec);
        }
        // "Restart": a fresh registry on the same spool resumes with the
        // same catalog, versions, designs, limits and plan identities.
        let first = WrapperRegistry::with_spool(&dir).unwrap();
        assert_eq!(
            first.catalog(),
            vec![("other".to_string(), 1), ("shop".to_string(), 2)]
        );
        assert_eq!(
            first.version("shop", 1).unwrap().spec.design.root_label,
            "v1"
        );
        assert!(first
            .version("shop", 1)
            .unwrap()
            .spec
            .design
            .is_auxiliary("aux"));
        assert_eq!(
            first
                .version("shop", 1)
                .unwrap()
                .spec
                .design
                .label_of("item"),
            "it"
        );
        assert_eq!(first.latest("shop").unwrap().spec.design.root_label, "v2");
        let other = first.latest("other").unwrap();
        assert_eq!(other.spec.options.max_documents, 7);
        assert_eq!(other.spec.options.max_instances, 99);
        assert_eq!(other.spec.source.trim_end(), WRAPPER);
        // Reload is a recompile of the same semantics: plan ids stable.
        let reloaded_again = WrapperRegistry::with_spool(&dir).unwrap();
        assert_eq!(
            reloaded_again.latest("other").unwrap().plan_id,
            other.plan_id
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spool_gap_renumbers_files_instead_of_clobbering_later() {
        let dir = temp_spool("gap");
        {
            let reg = WrapperRegistry::with_spool(&dir).unwrap();
            for root in ["v1", "v2", "v3"] {
                reg.register_source("shop", WRAPPER, XmlDesign::new().root(root))
                    .unwrap();
            }
        }
        // Simulate a historical spool-write failure: v2's manifest is gone.
        fs::remove_file(dir.join("shop@2.wrapper")).unwrap();
        {
            let reg = WrapperRegistry::with_spool(&dir).unwrap();
            // v3 reloads as version 2 — and its manifest is renumbered on
            // disk so a later register() cannot clobber it.
            assert_eq!(reg.latest("shop").unwrap().version, 2);
            assert_eq!(reg.latest("shop").unwrap().spec.design.root_label, "v3");
            assert!(dir.join("shop@2.wrapper").exists());
            assert!(!dir.join("shop@3.wrapper").exists());
            reg.register_source("shop", WRAPPER, XmlDesign::new().root("v4"))
                .unwrap();
        }
        let reg = WrapperRegistry::with_spool(&dir).unwrap();
        assert_eq!(reg.latest("shop").unwrap().version, 3);
        assert_eq!(reg.latest("shop").unwrap().spec.design.root_label, "v4");
        assert_eq!(reg.version("shop", 2).unwrap().spec.design.root_label, "v3");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spool_escapes_awkward_names_and_labels() {
        let dir = temp_spool("escape");
        {
            let reg = WrapperRegistry::with_spool(&dir).unwrap();
            reg.register_source(
                "weird name/v=1",
                WRAPPER,
                XmlDesign::new().root("line\nbreak\ttab\\slash"),
            )
            .unwrap();
        }
        let reloaded = WrapperRegistry::with_spool(&dir).unwrap();
        let w = reloaded.latest("weird name/v=1").expect("reloaded");
        assert_eq!(w.spec.design.root_label, "line\nbreak\ttab\\slash");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifests_are_skipped_not_fatal() {
        let dir = temp_spool("corrupt");
        {
            let reg = WrapperRegistry::with_spool(&dir).unwrap();
            reg.register_source("good", WRAPPER, XmlDesign::new().root("ok"))
                .unwrap();
        }
        // Three flavors of corruption a crash or stray editor can leave:
        // wrong magic, truncation mid-header, truncation mid-program.
        fs::write(dir.join("bad-magic@1.wrapper"), "not a manifest\n").unwrap();
        fs::write(dir.join("truncated@1.wrapper"), "lixto-wrapper v1\nname=t").unwrap();
        fs::write(
            dir.join("unterminated@1.wrapper"),
            "lixto-wrapper v1\nname=u\nprogram:\nitem(S, X) :- docum",
        )
        .unwrap();
        let reg = WrapperRegistry::with_spool(&dir).expect("corruption must not be fatal");
        assert_eq!(reg.catalog(), vec![("good".to_string(), 1)]);
        assert_eq!(reg.latest("good").unwrap().spec.design.root_label, "ok");
        // The corrupt files are left in place for the operator to inspect.
        assert!(dir.join("bad-magic@1.wrapper").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_memory_registry_leaves_no_spool() {
        let reg = WrapperRegistry::new();
        assert!(reg.spool_dir().is_none());
        reg.register_source("shop", WRAPPER, XmlDesign::new())
            .unwrap();
    }
}
