//! The wrapper registry: named, versioned, compiled Elog wrappers.
//!
//! The commercial Transformation Server kept a library of deployed
//! wrappers that operators upgraded in place while the service kept
//! running. The registry reproduces that: every `register` call appends a
//! new immutable version (1-based), lookups default to the latest one,
//! and in-flight jobs keep the `Arc` of the version they resolved — an
//! upgrade never mutates a wrapper another thread is executing.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use lixto_core::XmlDesign;
use lixto_elog::{parse_program, ConceptRegistry, ElogProgram, ExtractorOptions};

/// Everything needed to execute one wrapper: the compiled program, the
/// XML output design, and the extraction environment.
#[derive(Clone)]
pub struct WrapperSpec {
    /// The compiled Elog program.
    pub program: ElogProgram,
    /// Mapping from the instance base to the output XML document.
    pub design: XmlDesign,
    /// Concept predicates available to the program's conditions.
    pub concepts: ConceptRegistry,
    /// Safety limits for the extraction fixpoint.
    pub options: ExtractorOptions,
}

impl WrapperSpec {
    /// A spec with built-in concepts and default limits.
    pub fn new(program: ElogProgram, design: XmlDesign) -> WrapperSpec {
        WrapperSpec {
            program,
            design,
            concepts: ConceptRegistry::builtin(),
            options: ExtractorOptions::default(),
        }
    }

    /// Compile `source` Elog text into a spec.
    pub fn from_source(source: &str, design: XmlDesign) -> Result<WrapperSpec, String> {
        let program = parse_program(source).map_err(|e| format!("{e:?}"))?;
        Ok(WrapperSpec::new(program, design))
    }

    /// Replace the concept registry.
    pub fn with_concepts(mut self, concepts: ConceptRegistry) -> Self {
        self.concepts = concepts;
        self
    }

    /// Replace the safety limits.
    pub fn with_options(mut self, options: ExtractorOptions) -> Self {
        self.options = options;
        self
    }
}

/// One registered, immutable wrapper version.
pub struct RegisteredWrapper {
    /// The wrapper's registry name.
    pub name: String,
    /// 1-based version, assigned at registration.
    pub version: u32,
    /// The executable spec.
    pub spec: WrapperSpec,
}

/// Thread-safe name → versions map shared by clients and worker shards.
#[derive(Default)]
pub struct WrapperRegistry {
    inner: RwLock<HashMap<String, Vec<Arc<RegisteredWrapper>>>>,
}

impl WrapperRegistry {
    /// An empty registry.
    pub fn new() -> WrapperRegistry {
        WrapperRegistry::default()
    }

    /// Register a new version of `name`; returns the assigned version.
    pub fn register(&self, name: &str, spec: WrapperSpec) -> u32 {
        let mut inner = self.inner.write().expect("registry poisoned");
        let versions = inner.entry(name.to_string()).or_default();
        let version = versions.len() as u32 + 1;
        versions.push(Arc::new(RegisteredWrapper {
            name: name.to_string(),
            version,
            spec,
        }));
        version
    }

    /// Compile `source` and register it; returns the assigned version.
    pub fn register_source(
        &self,
        name: &str,
        source: &str,
        design: XmlDesign,
    ) -> Result<u32, String> {
        Ok(self.register(name, WrapperSpec::from_source(source, design)?))
    }

    /// The latest version of `name`.
    pub fn latest(&self, name: &str) -> Option<Arc<RegisteredWrapper>> {
        let inner = self.inner.read().expect("registry poisoned");
        inner.get(name).and_then(|v| v.last()).cloned()
    }

    /// A specific version of `name`.
    pub fn version(&self, name: &str, version: u32) -> Option<Arc<RegisteredWrapper>> {
        let inner = self.inner.read().expect("registry poisoned");
        inner
            .get(name)?
            .get(version.checked_sub(1)? as usize)
            .cloned()
    }

    /// The deployed catalog: every registered name with its latest
    /// version, name-sorted. Versions are dense and 1-based, so the
    /// latest version doubles as the version count — this is the listing
    /// the HTTP gateway's `GET /wrappers` endpoint serves.
    pub fn catalog(&self) -> Vec<(String, u32)> {
        let inner = self.inner.read().expect("registry poisoned");
        let mut entries: Vec<(String, u32)> = inner
            .iter()
            .map(|(name, versions)| (name.clone(), versions.len() as u32))
            .collect();
        entries.sort();
        entries
    }

    /// Registered wrapper names, sorted.
    pub fn names(&self) -> Vec<String> {
        let inner = self.inner.read().expect("registry poisoned");
        let mut names: Vec<String> = inner.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.inner.read().expect("registry poisoned").len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WRAPPER: &str = r#"item(S, X) :- document("http://x/", S), subelem(S, (?.li, []), X)."#;

    #[test]
    fn versions_are_appended_and_latest_wins() {
        let reg = WrapperRegistry::new();
        let v1 = reg
            .register_source("shop", WRAPPER, XmlDesign::new().root("v1"))
            .unwrap();
        let v2 = reg
            .register_source("shop", WRAPPER, XmlDesign::new().root("v2"))
            .unwrap();
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(reg.latest("shop").unwrap().version, 2);
        assert_eq!(reg.latest("shop").unwrap().spec.design.root_label, "v2");
        assert_eq!(reg.version("shop", 1).unwrap().spec.design.root_label, "v1");
        assert!(reg.version("shop", 3).is_none());
        assert!(reg.version("shop", 0).is_none());
        assert!(reg.latest("unknown").is_none());
        assert_eq!(reg.names(), vec!["shop".to_string()]);
    }

    #[test]
    fn catalog_lists_names_with_latest_versions() {
        let reg = WrapperRegistry::new();
        assert!(reg.catalog().is_empty());
        reg.register_source("zeta", WRAPPER, XmlDesign::new())
            .unwrap();
        reg.register_source("alpha", WRAPPER, XmlDesign::new())
            .unwrap();
        reg.register_source("alpha", WRAPPER, XmlDesign::new())
            .unwrap();
        assert_eq!(
            reg.catalog(),
            vec![("alpha".to_string(), 2), ("zeta".to_string(), 1)]
        );
    }

    #[test]
    fn bad_source_is_rejected() {
        let reg = WrapperRegistry::new();
        assert!(reg
            .register_source("bad", "not elog at all (", XmlDesign::new())
            .is_err());
        assert!(reg.is_empty());
    }
}
