//! Continuous extraction: watch subscriptions with instance-level diffs.
//!
//! The paper's deployed system is not request/response but *continual* —
//! §6's information pipes re-run wrappers on a schedule and deliver
//! results "only if the status changed between consecutive requests".
//! This module serves that model over the pool:
//!
//! * [`WatchRegistry`] — named (wrapper, url, interval) subscriptions,
//!   optionally spooled to the durability dir so they survive restarts;
//! * [`WatchScheduler`] — one thread that re-submits due watches through
//!   [`ExtractionServer::try_submit_with_notify`] (watches share the
//!   pool's queues and backpressure, so they can never starve
//!   interactive traffic), diffs each result against the watch's last
//!   delivered snapshot at the *instance* level
//!   ([`lixto_transform::diff_snapshots`] over
//!   pattern + text, never raw-HTML byte equality), and hands non-empty
//!   diffs to a delivery sink — the gateway fans them out to long-poll
//!   subscribers and webhook URLs.
//!
//! An unchanged tick delivers nothing (it only bumps the watch's
//! `suppressed` counter); the first tick after registration or restart
//! re-baselines silently. Snapshots are deliberately *not* persisted:
//! they are recomputable from source, and a restarted server must not
//! replay a diff the subscriber already saw.

#![deny(missing_docs)]

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use lixto_obs::{debug_event, warn_event};
use lixto_transform::{diff_snapshots, ExtractionSnapshot, InstanceDiff};

use crate::registry::{escape, unescape};
use crate::server::{
    ExtractionRequest, ExtractionResponse, ExtractionServer, JobTicket, RequestSource, ServerError,
};

/// File-format magic (shared with the store and registry spools).
const MAGIC: &str = "lixto-store";
/// Format version.
const VERSION: &str = "v1";
/// Spool kind discriminator in the header line.
const KIND: &str = "watches";
/// Spool file name inside the watches directory.
const SPOOL_FILE: &str = "watches.log";

/// What to watch: a wrapper re-run against a URL every `interval`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchSpec {
    /// Registered wrapper name.
    pub wrapper: String,
    /// `Web` source URL to re-fetch each tick.
    pub url: String,
    /// Re-extraction period (measured submission to submission).
    pub interval: Duration,
    /// Optional webhook URL diffs are POSTed to.
    pub webhook: Option<String>,
}

/// A point-in-time view of one watch, for `GET /watches/{id}` and the
/// per-watch metrics families.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchStatus {
    /// Watch id.
    pub id: String,
    /// Wrapper name.
    pub wrapper: String,
    /// Watched URL.
    pub url: String,
    /// Re-extraction period in milliseconds.
    pub interval_ms: u64,
    /// Webhook URL, if any.
    pub webhook: Option<String>,
    /// Completed re-extractions (including suppressed and baseline ones).
    pub ticks: u64,
    /// Diff events delivered so far (the sequence number of the latest).
    pub seq: u64,
    /// Ticks whose diff was empty — detected, compared, *not* delivered.
    pub suppressed: u64,
    /// Ticks that failed (fetch errors, pool errors).
    pub errors: u64,
}

/// One delivered change: the instance-level diff between a watch's last
/// two snapshots, plus enough identity to route it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// Watch id.
    pub watch: String,
    /// 1-based event sequence number within the watch.
    pub seq: u64,
    /// Wrapper that produced the result.
    pub wrapper: String,
    /// Watched URL.
    pub url: String,
    /// Webhook the delivery layer should POST to, if configured.
    pub webhook: Option<String>,
    /// What changed.
    pub diff: InstanceDiff,
}

struct WatchEntry {
    spec: WatchSpec,
    ticks: u64,
    seq: u64,
    suppressed: u64,
    errors: u64,
    /// Last delivered snapshot; `None` until the baseline tick.
    snapshot: Option<ExtractionSnapshot>,
    /// When the next re-extraction is due.
    next_due: Instant,
    /// A submission for this watch is in the pool right now.
    inflight: bool,
}

impl WatchEntry {
    fn status(&self, id: &str) -> WatchStatus {
        WatchStatus {
            id: id.to_string(),
            wrapper: self.spec.wrapper.clone(),
            url: self.spec.url.clone(),
            interval_ms: self.spec.interval.as_millis().min(u128::from(u64::MAX)) as u64,
            webhook: self.spec.webhook.clone(),
            ticks: self.ticks,
            seq: self.seq,
            suppressed: self.suppressed,
            errors: self.errors,
        }
    }
}

/// Append-only spool under the durability dir: `put` and `del` records,
/// compacted (tmp + rename) on open.
struct Spool {
    path: PathBuf,
    file: File,
}

struct Inner {
    watches: HashMap<String, WatchEntry>,
    spool: Option<Spool>,
}

/// Aggregate + per-watch counters for `/metrics` (`lixto_watch_*`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WatchSample {
    /// Registered watches (gauge).
    pub registered: usize,
    /// Long-poll subscribers currently parked on watch event streams.
    pub subscribers: usize,
    /// Webhook POSTs delivered successfully.
    pub webhook_deliveries: u64,
    /// Webhook POSTs that exhausted their retries.
    pub webhook_failures: u64,
    /// Per-watch counters.
    pub watches: Vec<WatchStatus>,
}

/// The registered subscriptions, shared between the scheduler thread,
/// the management routes and the metrics renderer.
pub struct WatchRegistry {
    inner: Mutex<Inner>,
    /// Long-poll subscriber gauge (maintained by the delivery layer).
    subscribers: AtomicUsize,
    webhook_deliveries: AtomicU64,
    webhook_failures: AtomicU64,
}

impl Default for WatchRegistry {
    fn default() -> WatchRegistry {
        WatchRegistry::new()
    }
}

impl WatchRegistry {
    /// In-memory registry (watches die with the process).
    pub fn new() -> WatchRegistry {
        WatchRegistry {
            inner: Mutex::new(Inner {
                watches: HashMap::new(),
                spool: None,
            }),
            subscribers: AtomicUsize::new(0),
            webhook_deliveries: AtomicU64::new(0),
            webhook_failures: AtomicU64::new(0),
        }
    }

    /// Durable registry: replay the spool under `dir` (creating it if
    /// absent), compact it, and append every future change. Corrupt
    /// records are skipped and counted, never fatal.
    pub fn with_spool(dir: impl Into<PathBuf>) -> io::Result<WatchRegistry> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let path = dir.join(SPOOL_FILE);
        let mut watches: HashMap<String, WatchSpec> = HashMap::new();
        let mut skipped = 0usize;
        match fs::read_to_string(&path) {
            Ok(text) => {
                let mut lines = text.lines();
                match lines.next() {
                    None => {}
                    Some(header)
                        if header
                            .split('\t')
                            .collect::<Vec<_>>()
                            .starts_with(&[MAGIC, VERSION, KIND]) => {}
                    Some(_) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("{} is not a {MAGIC} {VERSION} {KIND} spool", path.display()),
                        ));
                    }
                }
                for line in lines {
                    if line.is_empty() {
                        continue;
                    }
                    match parse_record(line) {
                        Some(Record::Put(id, spec)) => {
                            watches.insert(id, spec);
                        }
                        Some(Record::Del(id)) => {
                            watches.remove(&id);
                        }
                        None => skipped += 1,
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        if skipped > 0 {
            warn_event!(
                "watch_spool_corrupt_records",
                "path" => path.display().to_string(),
                "skipped" => skipped as u64,
            );
        }
        // Compact: rewrite the surviving set, tmp + rename.
        let tmp = dir.join(format!("{SPOOL_FILE}.tmp"));
        {
            let mut out = File::create(&tmp)?;
            writeln!(out, "{MAGIC}\t{VERSION}\t{KIND}")?;
            let mut ids: Vec<&String> = watches.keys().collect();
            ids.sort();
            for id in ids {
                out.write_all(put_record(id, &watches[id]).as_bytes())?;
            }
            out.flush()?;
        }
        fs::rename(&tmp, &path)?;
        let file = OpenOptions::new().append(true).open(&path)?;
        let now = Instant::now();
        let entries = watches
            .into_iter()
            .map(|(id, spec)| (id, new_entry(spec, now)))
            .collect();
        Ok(WatchRegistry {
            inner: Mutex::new(Inner {
                watches: entries,
                spool: Some(Spool { path, file }),
            }),
            subscribers: AtomicUsize::new(0),
            webhook_deliveries: AtomicU64::new(0),
            webhook_failures: AtomicU64::new(0),
        })
    }

    /// Register (or replace) a watch. Returns `true` when the id is new.
    /// Replacement resets counters and the baseline snapshot — a new
    /// spec is a new subscription under the same name.
    pub fn put(&self, id: &str, spec: WatchSpec) -> bool {
        let mut inner = self.inner.lock().expect("watch registry poisoned");
        if let Some(spool) = &mut inner.spool {
            append_or_warn(spool, &put_record(id, &spec));
        }
        let created = inner
            .watches
            .insert(id.to_string(), new_entry(spec, Instant::now()))
            .is_none();
        debug_event!(
            "watch_registered",
            "watch" => id,
            "created" => created,
        );
        created
    }

    /// Delete a watch. Returns `true` when it existed.
    pub fn remove(&self, id: &str) -> bool {
        let mut inner = self.inner.lock().expect("watch registry poisoned");
        let existed = inner.watches.remove(id).is_some();
        if existed {
            if let Some(spool) = &mut inner.spool {
                append_or_warn(spool, &format!("del\t{}\n", escape(id)));
            }
            debug_event!("watch_removed", "watch" => id);
        }
        existed
    }

    /// Status of one watch.
    pub fn get(&self, id: &str) -> Option<WatchStatus> {
        let inner = self.inner.lock().expect("watch registry poisoned");
        inner.watches.get(id).map(|e| e.status(id))
    }

    /// True when `id` is registered.
    pub fn contains(&self, id: &str) -> bool {
        self.inner
            .lock()
            .expect("watch registry poisoned")
            .watches
            .contains_key(id)
    }

    /// All watches, id-sorted.
    pub fn list(&self) -> Vec<WatchStatus> {
        let inner = self.inner.lock().expect("watch registry poisoned");
        let mut all: Vec<WatchStatus> = inner.watches.iter().map(|(id, e)| e.status(id)).collect();
        all.sort_by(|a, b| a.id.cmp(&b.id));
        all
    }

    /// Number of registered watches.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("watch registry poisoned")
            .watches
            .len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A long-poll subscriber attached to a watch event stream.
    pub fn subscriber_started(&self) {
        self.subscribers.fetch_add(1, Ordering::Relaxed);
    }

    /// A long-poll subscriber detached.
    pub fn subscriber_finished(&self) {
        self.subscribers.fetch_sub(1, Ordering::Relaxed);
    }

    /// Currently parked long-poll subscribers.
    pub fn subscribers(&self) -> usize {
        self.subscribers.load(Ordering::Relaxed)
    }

    /// Record a webhook delivery attempt's outcome.
    pub fn record_webhook(&self, delivered: bool) {
        if delivered {
            self.webhook_deliveries.fetch_add(1, Ordering::Relaxed);
        } else {
            self.webhook_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counters for `/metrics`.
    pub fn sample(&self) -> WatchSample {
        WatchSample {
            registered: self.len(),
            subscribers: self.subscribers(),
            webhook_deliveries: self.webhook_deliveries.load(Ordering::Relaxed),
            webhook_failures: self.webhook_failures.load(Ordering::Relaxed),
            watches: self.list(),
        }
    }

    /// Claim every watch due at `now`: marks it inflight, schedules its
    /// next tick, and returns the request to submit.
    fn take_due(&self, now: Instant) -> Vec<(String, ExtractionRequest)> {
        let mut inner = self.inner.lock().expect("watch registry poisoned");
        let mut due = Vec::new();
        for (id, entry) in &mut inner.watches {
            if entry.inflight || entry.next_due > now {
                continue;
            }
            entry.inflight = true;
            entry.next_due = now + entry.spec.interval;
            due.push((
                id.clone(),
                ExtractionRequest {
                    trace: None,
                    wrapper: entry.spec.wrapper.clone(),
                    version: None,
                    source: RequestSource::Web {
                        url: entry.spec.url.clone(),
                    },
                },
            ));
        }
        due
    }

    /// A submission claimed by [`take_due`](WatchRegistry::take_due)
    /// never reached the pool. Backpressure is not an error — the watch
    /// just waits for its next tick (interactive traffic keeps its
    /// queue slots); anything else counts against the watch.
    fn submission_failed(&self, id: &str, error: &ServerError) {
        let mut inner = self.inner.lock().expect("watch registry poisoned");
        if let Some(entry) = inner.watches.get_mut(id) {
            entry.inflight = false;
            if !matches!(error, ServerError::Backpressure) {
                entry.errors += 1;
            }
        }
    }

    /// Fold a completed re-extraction into the watch: baseline on the
    /// first tick, otherwise diff against the stored snapshot. Returns
    /// the event to deliver iff something changed.
    fn resolve(
        &self,
        id: &str,
        outcome: Result<ExtractionResponse, ServerError>,
    ) -> Option<WatchEvent> {
        let mut inner = self.inner.lock().expect("watch registry poisoned");
        // The watch may have been deleted while its job was in flight;
        // the result is then nobody's business.
        let entry = inner.watches.get_mut(id)?;
        entry.inflight = false;
        let response = match outcome {
            Ok(response) => response,
            Err(_) => {
                entry.errors += 1;
                return None;
            }
        };
        entry.ticks += 1;
        let snapshot = ExtractionSnapshot::from_pairs(
            response
                .result
                .provenance
                .instances
                .iter()
                .map(|i| (i.pattern.as_str(), i.text.as_str())),
        );
        let Some(previous) = entry.snapshot.take() else {
            // Baseline: remember, deliver nothing.
            entry.snapshot = Some(snapshot);
            return None;
        };
        let diff = diff_snapshots(&previous, &snapshot);
        entry.snapshot = Some(snapshot);
        if diff.is_empty() {
            entry.suppressed += 1;
            return None;
        }
        entry.seq += 1;
        Some(WatchEvent {
            watch: id.to_string(),
            seq: entry.seq,
            wrapper: entry.spec.wrapper.clone(),
            url: entry.spec.url.clone(),
            webhook: entry.spec.webhook.clone(),
            diff,
        })
    }
}

fn new_entry(spec: WatchSpec, now: Instant) -> WatchEntry {
    WatchEntry {
        spec,
        ticks: 0,
        seq: 0,
        suppressed: 0,
        errors: 0,
        snapshot: None,
        next_due: now,
        inflight: false,
    }
}

fn put_record(id: &str, spec: &WatchSpec) -> String {
    format!(
        "put\t{}\t{}\t{}\t{}\t{}\n",
        escape(id),
        escape(&spec.wrapper),
        escape(&spec.url),
        spec.interval.as_millis().min(u128::from(u64::MAX)),
        escape(spec.webhook.as_deref().unwrap_or("")),
    )
}

enum Record {
    Put(String, WatchSpec),
    Del(String),
}

fn parse_record(line: &str) -> Option<Record> {
    let fields: Vec<&str> = line.split('\t').collect();
    match fields.as_slice() {
        ["put", id, wrapper, url, interval_ms, webhook] => {
            let webhook = unescape(webhook).ok()?;
            Some(Record::Put(
                unescape(id).ok()?,
                WatchSpec {
                    wrapper: unescape(wrapper).ok()?,
                    url: unescape(url).ok()?,
                    interval: Duration::from_millis(interval_ms.parse().ok()?),
                    webhook: (!webhook.is_empty()).then_some(webhook),
                },
            ))
        }
        ["del", id] => Some(Record::Del(unescape(id).ok()?)),
        _ => None,
    }
}

fn append_or_warn(spool: &mut Spool, record: &str) {
    if let Err(e) = spool
        .file
        .write_all(record.as_bytes())
        .and_then(|()| spool.file.flush())
    {
        warn_event!(
            "watch_spool_append_failed",
            "path" => spool.path.display().to_string(),
            "error" => e.to_string(),
        );
    }
}

struct SchedulerShared {
    /// `stop` latch + "a completion landed" flag, both under one lock so
    /// the scheduler can sleep on a single condvar.
    state: Mutex<SchedulerState>,
    wake: Condvar,
}

#[derive(Default)]
struct SchedulerState {
    stop: bool,
    completed: bool,
}

/// The scheduler thread: re-submits due watches through the pool and
/// feeds resolved results back into the registry, delivering non-empty
/// diffs to the sink. Completion notifies (from
/// [`try_submit_with_notify`](ExtractionServer::try_submit_with_notify))
/// wake it immediately, so change-to-notification latency is bounded by
/// the watch interval plus one extraction, not by the polling tick.
pub struct WatchScheduler {
    shared: Arc<SchedulerShared>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl WatchScheduler {
    /// Start the scheduler. `tick` bounds how long it sleeps between
    /// due-checks when nothing completes; `sink` receives every
    /// delivered [`WatchEvent`] (called on the scheduler thread, outside
    /// all registry locks).
    pub fn start(
        server: Arc<ExtractionServer>,
        registry: Arc<WatchRegistry>,
        tick: Duration,
        sink: Box<dyn Fn(WatchEvent) + Send + Sync>,
    ) -> WatchScheduler {
        let shared = Arc::new(SchedulerShared {
            state: Mutex::new(SchedulerState::default()),
            wake: Condvar::new(),
        });
        let tick = tick.max(Duration::from_millis(1));
        let loop_shared = shared.clone();
        let thread = std::thread::Builder::new()
            .name("lixto-watch-scheduler".into())
            .spawn(move || scheduler_loop(server, registry, tick, sink, loop_shared))
            .expect("spawn watch scheduler");
        WatchScheduler {
            shared,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// Stop and join the scheduler thread. In-flight extractions keep
    /// running in the pool; their results are dropped. Idempotent.
    pub fn stop(&self) {
        {
            let mut state = self.shared.state.lock().expect("scheduler poisoned");
            state.stop = true;
            self.shared.wake.notify_all();
        }
        if let Some(thread) = self
            .thread
            .lock()
            .expect("scheduler thread slot poisoned")
            .take()
        {
            let _ = thread.join();
        }
    }
}

impl Drop for WatchScheduler {
    fn drop(&mut self) {
        self.stop();
    }
}

fn scheduler_loop(
    server: Arc<ExtractionServer>,
    registry: Arc<WatchRegistry>,
    tick: Duration,
    sink: Box<dyn Fn(WatchEvent) + Send + Sync>,
    shared: Arc<SchedulerShared>,
) {
    let mut inflight: Vec<(String, JobTicket)> = Vec::new();
    loop {
        // Resolve whatever completed since the last pass.
        let mut resolved = Vec::new();
        inflight.retain_mut(|(id, ticket)| match ticket.try_take() {
            None => true,
            Some(outcome) => {
                resolved.push((std::mem::take(id), outcome));
                false
            }
        });
        for (id, outcome) in resolved {
            if let Some(event) = registry.resolve(&id, outcome) {
                debug_event!(
                    "watch_event",
                    "watch" => &event.watch,
                    "seq" => event.seq,
                    "added" => event.diff.added.len() as u64,
                    "removed" => event.diff.removed.len() as u64,
                    "changed" => event.diff.changed.len() as u64,
                );
                sink(event);
            }
        }
        // Submit everything due. A full shard queue is fine: the watch
        // retries next tick and interactive traffic keeps its slots.
        for (id, request) in registry.take_due(Instant::now()) {
            let notify_shared = shared.clone();
            match server.try_submit_with_notify(
                request,
                Box::new(move || {
                    let mut state = notify_shared.state.lock().expect("scheduler poisoned");
                    state.completed = true;
                    notify_shared.wake.notify_all();
                }),
            ) {
                Ok(ticket) => inflight.push((id, ticket)),
                Err(e) => registry.submission_failed(&id, &e),
            }
        }
        // Sleep until a completion lands, the tick elapses, or stop.
        let mut state = shared.state.lock().expect("scheduler poisoned");
        if !state.stop && !state.completed {
            let (guard, _) = shared
                .wake
                .wait_timeout(state, tick)
                .expect("scheduler poisoned");
            state = guard;
        }
        if state.stop {
            return;
        }
        state.completed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::WrapperRegistry;
    use crate::server::ServerConfig;
    use lixto_core::XmlDesign;
    use lixto_elog::SharedWeb;
    use std::sync::mpsc;

    const WRAPPER: &str = r#"
        offer(S, X) :- document("http://shop/", S), subelem(S, (?.li, []), X).
        name(S, X)  :- offer(_, S), subelem(S, (.b, []), X).
    "#;

    fn page(items: &[&str]) -> String {
        let mut h = String::from("<html><body><ul>");
        for it in items {
            h.push_str(&format!("<li><b>{it}</b></li>"));
        }
        h.push_str("</ul></body></html>");
        h
    }

    fn spec(url: &str) -> WatchSpec {
        WatchSpec {
            wrapper: "shop".into(),
            url: url.into(),
            interval: Duration::from_millis(5),
            webhook: None,
        }
    }

    fn pool(web: Arc<SharedWeb>) -> Arc<ExtractionServer> {
        let registry = Arc::new(WrapperRegistry::new());
        registry
            .register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
            .unwrap();
        Arc::new(ExtractionServer::start(
            ServerConfig::default(),
            registry,
            web,
        ))
    }

    #[test]
    fn registry_put_get_list_remove() {
        let reg = WatchRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.put("a", spec("http://shop/")));
        assert!(!reg.put("a", spec("http://shop/")), "replace is not create");
        assert!(reg.put("b", spec("http://other/")));
        assert_eq!(reg.len(), 2);
        let listed = reg.list();
        assert_eq!(listed[0].id, "a");
        assert_eq!(listed[1].id, "b");
        assert_eq!(reg.get("a").unwrap().url, "http://shop/");
        assert!(reg.get("ghost").is_none());
        assert!(reg.remove("a"));
        assert!(!reg.remove("a"));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn spool_survives_restart_and_skips_corrupt_records() {
        let dir = std::env::temp_dir().join(format!(
            "lixto-watch-spool-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        {
            let reg = WatchRegistry::with_spool(&dir).unwrap();
            reg.put(
                "news",
                WatchSpec {
                    wrapper: "shop".into(),
                    url: "http://shop/a\tb".into(),
                    interval: Duration::from_millis(250),
                    webhook: Some("http://sink:9/hook".into()),
                },
            );
            reg.put("doomed", spec("http://gone/"));
            reg.remove("doomed");
        }
        // Corrupt the log with garbage; recovery must shrug it off.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(SPOOL_FILE))
                .unwrap();
            writeln!(f, "put\tonly-three-fields\toops").unwrap();
        }
        let reg = WatchRegistry::with_spool(&dir).unwrap();
        assert_eq!(reg.len(), 1);
        let got = reg.get("news").unwrap();
        assert_eq!(got.url, "http://shop/a\tb");
        assert_eq!(got.interval_ms, 250);
        assert_eq!(got.webhook.as_deref(), Some("http://sink:9/hook"));
        assert_eq!(got.ticks, 0, "counters restart with the process");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scheduler_baselines_suppresses_and_delivers_exact_diffs() {
        let web = Arc::new(SharedWeb::new());
        web.put("http://shop/", page(&["espresso", "grinder"]));
        let server = pool(web.clone());
        let registry = Arc::new(WatchRegistry::new());
        registry.put("shop-watch", spec("http://shop/"));
        let (tx, rx) = mpsc::channel::<WatchEvent>();
        let scheduler = WatchScheduler::start(
            server.clone(),
            registry.clone(),
            Duration::from_millis(2),
            Box::new(move |event| {
                let _ = tx.send(event);
            }),
        );
        // Let the baseline tick plus several unchanged ticks pass.
        let deadline = Instant::now() + Duration::from_secs(10);
        while registry.get("shop-watch").unwrap().ticks < 3 {
            assert!(Instant::now() < deadline, "watch never ticked");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            rx.try_recv().is_err(),
            "unchanged ticks must deliver nothing"
        );
        let before = registry.get("shop-watch").unwrap();
        assert!(before.suppressed >= 1);
        assert_eq!(before.seq, 0);
        // Mutate the page: exactly one event, with the exact diff.
        web.put("http://shop/", page(&["espresso", "kettle", "mug"]));
        let event = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("diff event after mutation");
        assert_eq!(event.watch, "shop-watch");
        assert_eq!(event.seq, 1);
        // Reference recompute: the wrapper extracts one `offer` (the li
        // subtree) and one `name` (the b text) per item.
        assert!(event
            .diff
            .changed
            .iter()
            .any(|c| c.pattern == "name" && c.before == "grinder" && c.after == "kettle"));
        assert!(event
            .diff
            .added
            .iter()
            .any(|a| a.pattern == "name" && a.text == "mug"));
        assert!(event
            .diff
            .removed
            .iter()
            .all(|r| r.pattern == "offer" || r.pattern == "name"),);
        // No second event for the same content.
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
        scheduler.stop();
        // Idempotent stop; drop after stop is fine too.
        scheduler.stop();
        Arc::try_unwrap(server).ok().unwrap().shutdown();
    }

    #[test]
    fn deleted_watch_in_flight_result_is_dropped() {
        let web = Arc::new(SharedWeb::new());
        web.put("http://shop/", page(&["x"]));
        let server = pool(web);
        let registry = Arc::new(WatchRegistry::new());
        registry.put("w", spec("http://shop/"));
        let due = registry.take_due(Instant::now());
        assert_eq!(due.len(), 1);
        registry.remove("w");
        let outcome = server.execute(due.into_iter().next().unwrap().1);
        assert!(registry.resolve("w", outcome).is_none());
        Arc::try_unwrap(server).ok().unwrap().shutdown();
    }

    #[test]
    fn errors_count_against_the_watch() {
        let web = Arc::new(SharedWeb::new());
        let server = pool(web); // no pages: every fetch 404s
        let registry = Arc::new(WatchRegistry::new());
        registry.put("w", spec("http://shop/"));
        let due = registry.take_due(Instant::now());
        let outcome = server.execute(due.into_iter().next().unwrap().1);
        assert!(outcome.is_err());
        assert!(registry.resolve("w", outcome).is_none());
        assert_eq!(registry.get("w").unwrap().errors, 1);
        // Backpressure is not an error; other submit failures are.
        registry.submission_failed("w", &ServerError::Backpressure);
        assert_eq!(registry.get("w").unwrap().errors, 1);
        registry.submission_failed("w", &ServerError::ShuttingDown);
        assert_eq!(registry.get("w").unwrap().errors, 2);
        Arc::try_unwrap(server).ok().unwrap().shutdown();
    }

    #[test]
    fn sample_aggregates_counters() {
        let reg = WatchRegistry::new();
        reg.put("a", spec("http://shop/"));
        reg.subscriber_started();
        reg.record_webhook(true);
        reg.record_webhook(false);
        let sample = reg.sample();
        assert_eq!(sample.registered, 1);
        assert_eq!(sample.subscribers, 1);
        assert_eq!(sample.webhook_deliveries, 1);
        assert_eq!(sample.webhook_failures, 1);
        assert_eq!(sample.watches.len(), 1);
        reg.subscriber_finished();
        assert_eq!(reg.subscribers(), 0);
    }
}
