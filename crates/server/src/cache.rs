//! Content-addressed result cache, sharded across mutex'd segments.
//!
//! A wrapper is a pure function of (program version, fetched pages) —
//! the Extractor is deterministic — so results are cached under the
//! FxHash of the source document's bytes combined with the wrapper name
//! and version. Identical pages served to different users (the common
//! case for a portal polling slowly-changing sites) cost one extraction.
//!
//! The map is split into N independently locked segments selected by the
//! key's fxhash, so concurrent workers (and now the HTTP gateway's
//! handler threads) do not serialize on one big mutex. Aggregate
//! hit/miss/eviction/invalidation counters are kept in shared atomics and
//! stay exact regardless of which segment served an operation.
//!
//! Every cached value also carries a *crawl manifest*: the URL and body
//! hash of each page the extraction fetched beyond the entry document.
//! The server revalidates that manifest before serving a hit, closing the
//! stale-subpage window where a wrapper that crawls past its entry page
//! would keep serving results computed from since-changed subpages.
//!
//! Eviction is LRU over a fixed per-segment capacity, implemented as a
//! recency counter per entry (O(1) touch, O(n) eviction scan — eviction
//! is the rare path and capacities are small).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lixto_elog::eval::ExtractionResult;

/// FxHash-style 64-bit hash (the rustc-hash multiply-xor scheme): fast,
/// deterministic, good enough dispersion for content addressing and
/// shard selection. Not cryptographic — collisions only cost a stale
/// cache entry in an in-memory service, never corruption across
/// wrappers, because the full key compares name and version too.
pub fn fxhash64(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut hash: u64 = 0;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let word = u64::from_le_bytes(c.try_into().expect("chunk of 8"));
        hash = (hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
    let mut tail: u64 = 0;
    for (i, b) in chunks.remainder().iter().enumerate() {
        tail |= (*b as u64) << (8 * i);
    }
    hash = (hash.rotate_left(5) ^ tail).wrapping_mul(SEED);
    hash = (hash.rotate_left(5) ^ bytes.len() as u64).wrapping_mul(SEED);
    hash
}

/// The content address of a source document: its bytes *and* the URL it
/// is served at, combined. The URL matters because a wrapper's
/// `document(...)` entry atom matches on it — the same bytes at a
/// different URL can extract to something entirely different (usually
/// nothing), so they must not share a cache entry.
pub fn content_address(url: &str, html: &str) -> u64 {
    fxhash64(html.as_bytes()).rotate_left(17) ^ fxhash64(url.as_bytes())
}

/// Cache key: wrapper identity plus the content address of the source
/// document.
///
/// Wrapper identity is the *plan* fingerprint
/// ([`RegisteredWrapper::plan_id`](crate::RegisteredWrapper::plan_id)),
/// not the registry version number: two versions that compile to the
/// same plan over the same design (an operator redeploying unchanged
/// source) share cache entries, while any semantic change — program,
/// design or limits — keys separately.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Wrapper name.
    pub wrapper: String,
    /// Fingerprint of the compiled plan + output design + limits.
    pub plan: u64,
    /// [`content_address`] of the entry document (URL + bytes).
    pub content: u64,
}

/// One page an extraction fetched beyond its entry document (a crawl
/// target followed via `document(U)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlRecord {
    /// The fetched URL.
    pub url: String,
    /// `fxhash64` of the fetched body, or `None` when the fetch failed
    /// (a 404 at extraction time is part of the result's identity too).
    pub content: Option<u64>,
}

/// A cached extraction: the result, its serialized XML rendering (cached
/// too, so hits skip re-serialization), the crawl manifest used to
/// revalidate the entry before serving it again, and the provenance
/// record the tiered store persists beside it.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedExtraction {
    /// The extraction result.
    pub result: ExtractionResult,
    /// `lixto_xml::to_string` of the designed output document.
    pub xml: String,
    /// Pages fetched beyond the entry document, with their body hashes.
    /// Empty for single-page wrappers — the common case, which therefore
    /// pays no revalidation cost.
    pub crawl: Vec<CrawlRecord>,
    /// Whether `crawl` was recorded with live-web access (a `Web`
    /// request) or self-contained (`Inline`). A non-empty manifest only
    /// revalidates against the same capability — comparing a live hash
    /// with an offline fetch failure would spuriously invalidate.
    pub crawl_live: bool,
    /// Derivation record: which wrapper version and rules produced each
    /// instance, from which page (see
    /// [`Provenance`](crate::store::Provenance)).
    pub provenance: crate::store::Provenance,
}

struct Entry {
    value: Arc<CachedExtraction>,
    last_used: u64,
}

/// Counter snapshot of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a fresh extraction.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries dropped because change detection or crawl revalidation saw
    /// new source content.
    pub invalidations: u64,
    /// Entries currently held.
    pub len: usize,
    /// Maximum entries held (summed over segments).
    pub capacity: usize,
}

impl CacheStats {
    /// hits / (hits + misses), 0 when unused.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Most segments a [`ResultCache::new`] cache is split into.
pub const DEFAULT_CACHE_SEGMENTS: usize = 8;

/// Smallest per-segment capacity [`ResultCache::new`] will accept when
/// choosing its segment count: splitting a small cache into one-entry
/// segments would replace the LRU policy with hash-collision thrashing.
const MIN_SEGMENT_CAPACITY: usize = 8;

/// Bounded, thread-safe, content-addressed LRU cache of extraction
/// results, sharded over independently locked segments.
pub struct ResultCache {
    segments: Vec<Mutex<Segment>>,
    segment_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

struct Segment {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
}

impl ResultCache {
    /// A cache holding at most ~`capacity` entries (min 1), split into
    /// up to [`DEFAULT_CACHE_SEGMENTS`] segments — fewer for small
    /// capacities, so each segment keeps at least
    /// `MIN_SEGMENT_CAPACITY` entries of real LRU behavior (a capacity
    /// of 8 is one global-LRU segment, exactly as before sharding).
    pub fn new(capacity: usize) -> ResultCache {
        let segments = (capacity.max(1) / MIN_SEGMENT_CAPACITY).clamp(1, DEFAULT_CACHE_SEGMENTS);
        ResultCache::with_segments(capacity, segments)
    }

    /// A cache with an explicit segment count. The per-segment capacity
    /// is `ceil(capacity / segments)`, so the total capacity may round up
    /// slightly; `stats().capacity` reports the effective total.
    pub fn with_segments(capacity: usize, segments: usize) -> ResultCache {
        let capacity = capacity.max(1);
        let segments = segments.clamp(1, capacity);
        let segment_capacity = capacity.div_ceil(segments);
        ResultCache {
            segments: (0..segments)
                .map(|_| {
                    Mutex::new(Segment {
                        map: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            segment_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn segment(&self, key: &CacheKey) -> &Mutex<Segment> {
        // Finalizer mix (murmur3 style) so the modulo sees every bit of
        // the combined key hash, not just its low bits.
        let mut h = fxhash64(key.wrapper.as_bytes()) ^ key.content ^ key.plan.rotate_left(11);
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        &self.segments[(h % self.segments.len() as u64) as usize]
    }

    /// Look up `key`, counting a hit or miss and refreshing recency.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedExtraction>> {
        match self.peek(key) {
            Some(value) => {
                self.record_hit();
                Some(value)
            }
            None => {
                self.record_miss();
                None
            }
        }
    }

    /// Look up `key` and refresh recency *without* touching the hit/miss
    /// counters. The server uses this to revalidate a candidate's crawl
    /// manifest first and then record the lookup as a hit or a miss
    /// depending on the verdict, keeping the aggregate counters exact.
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<CachedExtraction>> {
        let mut seg = self.segment(key).lock().expect("cache poisoned");
        seg.clock += 1;
        let clock = seg.clock;
        seg.map.get_mut(key).map(|entry| {
            entry.last_used = clock;
            entry.value.clone()
        })
    }

    /// Count one cache hit (pairs with [`ResultCache::peek`]).
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one cache miss (pairs with [`ResultCache::peek`]).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Insert `value` under `key`, evicting the segment's least-recently-
    /// used entry when the segment is at capacity.
    pub fn insert(&self, key: CacheKey, value: Arc<CachedExtraction>) {
        let capacity = self.segment_capacity;
        let mut seg = self.segment(&key).lock().expect("cache poisoned");
        seg.clock += 1;
        let clock = seg.clock;
        if !seg.map.contains_key(&key) && seg.map.len() >= capacity {
            if let Some(lru) = seg
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                seg.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        seg.map.insert(
            key,
            Entry {
                value,
                last_used: clock,
            },
        );
    }

    /// Drop `key` because its source content changed; true if present.
    pub fn invalidate(&self, key: &CacheKey) -> bool {
        let mut seg = self.segment(key).lock().expect("cache poisoned");
        let removed = seg.map.remove(key).is_some();
        if removed {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let len = self
            .segments
            .iter()
            .map(|s| s.lock().expect("cache poisoned").map.len())
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            len,
            capacity: self.segment_capacity * self.segments.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(xml: &str) -> Arc<CachedExtraction> {
        Arc::new(CachedExtraction {
            result: ExtractionResult::empty(),
            xml: xml.to_string(),
            crawl: Vec::new(),
            crawl_live: false,
            provenance: crate::store::Provenance::default(),
        })
    }

    fn key(wrapper: &str, content: u64) -> CacheKey {
        CacheKey {
            wrapper: wrapper.to_string(),
            plan: 1,
            content,
        }
    }

    #[test]
    fn fxhash_is_deterministic_and_disperses() {
        assert_eq!(fxhash64(b"hello world"), fxhash64(b"hello world"));
        assert_ne!(fxhash64(b"hello world"), fxhash64(b"hello worle"));
        assert_ne!(fxhash64(b""), fxhash64(b"\0"));
        // Same prefix, different length.
        assert_ne!(fxhash64(b"aaaaaaaa"), fxhash64(b"aaaaaaaaa"));
    }

    #[test]
    fn content_address_separates_url_and_body() {
        let html = "<p>same bytes</p>";
        assert_eq!(
            content_address("http://a/", html),
            content_address("http://a/", html)
        );
        // Same bytes at a different URL are a different document.
        assert_ne!(
            content_address("http://a/", html),
            content_address("http://b/", html)
        );
        assert_ne!(
            content_address("http://a/", html),
            content_address("http://a/", "<p>other</p>")
        );
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ResultCache::new(8);
        let k = key("w", 1);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), dummy("<a/>"));
        assert_eq!(cache.get(&k).unwrap().xml, "<a/>");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One segment so the LRU order is global and deterministic.
        let cache = ResultCache::with_segments(2, 1);
        cache.insert(key("w", 1), dummy("1"));
        cache.insert(key("w", 2), dummy("2"));
        // Touch 1 so 2 becomes the LRU victim.
        cache.get(&key("w", 1));
        cache.insert(key("w", 3), dummy("3"));
        assert!(cache.get(&key("w", 1)).is_some());
        assert!(cache.get(&key("w", 2)).is_none());
        assert!(cache.get(&key("w", 3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn invalidation_counts() {
        let cache = ResultCache::new(4);
        cache.insert(key("w", 1), dummy("1"));
        assert!(cache.invalidate(&key("w", 1)));
        assert!(!cache.invalidate(&key("w", 1)));
        let s = cache.stats();
        assert_eq!((s.invalidations, s.len), (1, 0));
    }

    #[test]
    fn plan_identities_do_not_collide() {
        let cache = ResultCache::new(4);
        let mut k1 = key("w", 9);
        cache.insert(k1.clone(), dummy("v1"));
        k1.plan = 2;
        assert!(cache.get(&k1).is_none(), "a changed plan must miss");
    }

    #[test]
    fn segment_counts_clamp_to_capacity() {
        let tiny = ResultCache::with_segments(3, 8);
        assert_eq!(tiny.stats().capacity, 3);
        let cache = ResultCache::new(256);
        assert_eq!(cache.stats().capacity, 256);
        // Entries spread across segments; total len is the sum.
        for i in 0..64 {
            cache.insert(key("w", i), dummy("x"));
        }
        assert_eq!(cache.stats().len, 64);
    }

    #[test]
    fn small_caches_keep_global_lru_behavior() {
        // A capacity-8 cache must behave as one LRU, not as 8 one-entry
        // segments where two hot keys can thrash a shared slot.
        let cache = ResultCache::new(8);
        for i in 0..8 {
            cache.insert(key("w", i), dummy("x"));
        }
        for _ in 0..4 {
            for i in 0..8 {
                assert!(cache.get(&key("w", i)).is_some(), "key {i} evicted early");
            }
        }
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn sharded_counters_stay_exact_under_concurrency() {
        const THREADS: usize = 8;
        const OPS: u64 = 500;
        // Capacity comfortably above the 4000 distinct keys, so no
        // evictions interfere with the hit/miss accounting.
        let cache = ResultCache::new(8192);
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..OPS {
                        let k = key("w", t * OPS + i);
                        // First lookup misses, insert, second lookup hits.
                        assert!(cache.get(&k).is_none());
                        cache.insert(k.clone(), dummy("x"));
                        assert!(cache.get(&k).is_some());
                    }
                });
            }
        });
        let s = cache.stats();
        let total = THREADS as u64 * OPS;
        assert_eq!(s.hits, total, "every second lookup hits");
        assert_eq!(s.misses, total, "every first lookup misses");
        assert_eq!(s.hits + s.misses, 2 * total, "no lookup lost");
    }

    #[test]
    fn peek_does_not_count_but_record_does() {
        let cache = ResultCache::new(4);
        let k = key("w", 5);
        assert!(cache.peek(&k).is_none());
        cache.insert(k.clone(), dummy("x"));
        assert!(cache.peek(&k).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
        cache.record_hit();
        cache.record_miss();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }
}
