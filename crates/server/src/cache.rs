//! Content-addressed result cache.
//!
//! A wrapper is a pure function of (program version, document bytes) —
//! the Extractor is deterministic — so results are cached under the
//! FxHash of the source document's bytes combined with the wrapper name
//! and version. Identical pages served to different users (the common
//! case for a portal polling slowly-changing sites) cost one extraction.
//!
//! Eviction is LRU over a fixed capacity, implemented as a recency
//! counter per entry (O(1) touch, O(n) eviction scan — eviction is the
//! rare path and capacities are small). Hit/miss/eviction/invalidation
//! counters feed the server's metrics snapshot.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lixto_elog::eval::ExtractionResult;

/// FxHash-style 64-bit hash (the rustc-hash multiply-xor scheme): fast,
/// deterministic, good enough dispersion for content addressing and
/// shard selection. Not cryptographic — collisions only cost a stale
/// cache entry in an in-memory service, never corruption across
/// wrappers, because the full key compares name and version too.
pub fn fxhash64(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut hash: u64 = 0;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let word = u64::from_le_bytes(c.try_into().expect("chunk of 8"));
        hash = (hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
    let mut tail: u64 = 0;
    for (i, b) in chunks.remainder().iter().enumerate() {
        tail |= (*b as u64) << (8 * i);
    }
    hash = (hash.rotate_left(5) ^ tail).wrapping_mul(SEED);
    hash = (hash.rotate_left(5) ^ bytes.len() as u64).wrapping_mul(SEED);
    hash
}

/// The content address of a source document: its bytes *and* the URL it
/// is served at, combined. The URL matters because a wrapper's
/// `document(...)` entry atom matches on it — the same bytes at a
/// different URL can extract to something entirely different (usually
/// nothing), so they must not share a cache entry.
pub fn content_address(url: &str, html: &str) -> u64 {
    fxhash64(html.as_bytes()).rotate_left(17) ^ fxhash64(url.as_bytes())
}

/// Cache key: wrapper identity plus the content address of the source
/// document.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Wrapper name.
    pub wrapper: String,
    /// Wrapper version.
    pub version: u32,
    /// [`content_address`] of the source document (URL + bytes).
    pub content: u64,
}

/// A cached extraction: the result and its serialized XML rendering
/// (cached too, so hits skip re-serialization).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedExtraction {
    /// The extraction result.
    pub result: ExtractionResult,
    /// `lixto_xml::to_string` of the designed output document.
    pub xml: String,
}

struct Entry {
    value: Arc<CachedExtraction>,
    last_used: u64,
}

/// Counter snapshot of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a fresh extraction.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries dropped because change detection saw new source content.
    pub invalidations: u64,
    /// Entries currently held.
    pub len: usize,
    /// Maximum entries held.
    pub capacity: usize,
}

impl CacheStats {
    /// hits / (hits + misses), 0 when unused.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Bounded, thread-safe, content-addressed LRU cache of extraction
/// results.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

struct CacheInner {
    map: HashMap<CacheKey, Entry>,
    capacity: usize,
    clock: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                capacity: capacity.max(1),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Look up `key`, counting a hit or miss and refreshing recency.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedExtraction>> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert `value` under `key`, evicting the least-recently-used entry
    /// when at capacity.
    pub fn insert(&self, key: CacheKey, value: Arc<CachedExtraction>) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.map.contains_key(&key) && inner.map.len() >= inner.capacity {
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: clock,
            },
        );
    }

    /// Drop `key` because its source content changed; true if present.
    pub fn invalidate(&self, key: &CacheKey) -> bool {
        let mut inner = self.inner.lock().expect("cache poisoned");
        let removed = inner.map.remove(key).is_some();
        if removed {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache poisoned");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            len: inner.map.len(),
            capacity: inner.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_elog::InstanceBase;

    fn dummy(xml: &str) -> Arc<CachedExtraction> {
        Arc::new(CachedExtraction {
            result: ExtractionResult {
                base: InstanceBase::default(),
                docs: Vec::new(),
                doc_urls: Vec::new(),
            },
            xml: xml.to_string(),
        })
    }

    fn key(wrapper: &str, content: u64) -> CacheKey {
        CacheKey {
            wrapper: wrapper.to_string(),
            version: 1,
            content,
        }
    }

    #[test]
    fn fxhash_is_deterministic_and_disperses() {
        assert_eq!(fxhash64(b"hello world"), fxhash64(b"hello world"));
        assert_ne!(fxhash64(b"hello world"), fxhash64(b"hello worle"));
        assert_ne!(fxhash64(b""), fxhash64(b"\0"));
        // Same prefix, different length.
        assert_ne!(fxhash64(b"aaaaaaaa"), fxhash64(b"aaaaaaaaa"));
    }

    #[test]
    fn content_address_separates_url_and_body() {
        let html = "<p>same bytes</p>";
        assert_eq!(
            content_address("http://a/", html),
            content_address("http://a/", html)
        );
        // Same bytes at a different URL are a different document.
        assert_ne!(
            content_address("http://a/", html),
            content_address("http://b/", html)
        );
        assert_ne!(
            content_address("http://a/", html),
            content_address("http://a/", "<p>other</p>")
        );
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ResultCache::new(8);
        let k = key("w", 1);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), dummy("<a/>"));
        assert_eq!(cache.get(&k).unwrap().xml, "<a/>");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.insert(key("w", 1), dummy("1"));
        cache.insert(key("w", 2), dummy("2"));
        // Touch 1 so 2 becomes the LRU victim.
        cache.get(&key("w", 1));
        cache.insert(key("w", 3), dummy("3"));
        assert!(cache.get(&key("w", 1)).is_some());
        assert!(cache.get(&key("w", 2)).is_none());
        assert!(cache.get(&key("w", 3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn invalidation_counts() {
        let cache = ResultCache::new(4);
        cache.insert(key("w", 1), dummy("1"));
        assert!(cache.invalidate(&key("w", 1)));
        assert!(!cache.invalidate(&key("w", 1)));
        let s = cache.stats();
        assert_eq!((s.invalidations, s.len), (1, 0));
    }

    #[test]
    fn versions_do_not_collide() {
        let cache = ResultCache::new(4);
        let mut k1 = key("w", 9);
        cache.insert(k1.clone(), dummy("v1"));
        k1.version = 2;
        assert!(cache.get(&k1).is_none(), "new version must miss");
    }
}
