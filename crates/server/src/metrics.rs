//! Service metrics: a fixed-bucket latency histogram and a coherent
//! snapshot API.
//!
//! The histogram uses power-of-two microsecond buckets (bucket *i* counts
//! latencies in `[2^(i-1), 2^i)` µs, bucket 0 counts sub-microsecond
//! completions), so recording is one atomic increment and quantiles are
//! a cumulative walk — no allocation or locking on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use lixto_obs::{Stage, StageTimes, STAGE_COUNT};

use crate::cache::CacheStats;
use crate::store::StoreStats;

/// Number of histogram buckets; 2^30 µs ≈ 18 minutes caps the top one.
/// Public so consumers can carry raw bucket snapshots (see
/// [`LatencyHistogram::buckets`]) in fixed-size arrays.
pub const LATENCY_BUCKETS: usize = 31;
const BUCKETS: usize = LATENCY_BUCKETS;

/// Lock-free fixed-bucket latency histogram.
#[derive(Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl LatencyHistogram {
    /// A histogram with every bucket at zero.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one latency observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A snapshot of the raw bucket counters, in bucket order. Counters
    /// are cumulative since construction; diffing two snapshots yields
    /// the distribution of the observations recorded between them
    /// (see [`bucket_quantile_us`]).
    pub fn buckets(&self) -> [u64; LATENCY_BUCKETS] {
        let mut out = [0u64; LATENCY_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// The upper bound (µs) of the bucket containing quantile `q` in
    /// \[0,1\]; `None` with no observations. Resolution is the bucket
    /// width, i.e. a factor of two.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        bucket_quantile_us(&self.buckets(), q)
    }
}

/// The quantile walk over a bucket-count slice laid out like
/// [`LatencyHistogram`] (power-of-two µs buckets): the upper bound (µs)
/// of the bucket containing quantile `q` in \[0,1\]; `None` with no
/// observations. Shared by live histograms and *windowed* queries that
/// diff two [`LatencyHistogram::buckets`] snapshots — the counts need
/// not be a whole histogram's, only bucket-aligned.
pub fn bucket_quantile_us(counts: &[u64], q: f64) -> Option<u64> {
    let total: u64 = counts.iter().sum();
    if total == 0 || counts.is_empty() {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut cumulative = 0u64;
    for (i, c) in counts.iter().enumerate() {
        cumulative += c;
        if cumulative >= rank {
            return Some(if i == 0 { 1 } else { 1u64 << i });
        }
    }
    Some(1u64 << (counts.len() - 1))
}

/// One latency histogram per pipeline [`Stage`], recorded only for
/// stages a request actually executed (a cache hit contributes no
/// `exec` observation), so each stage's quantiles describe real work.
#[derive(Default)]
pub struct StageHistograms {
    histograms: [LatencyHistogram; STAGE_COUNT],
}

impl StageHistograms {
    /// All stages empty.
    pub fn new() -> StageHistograms {
        StageHistograms::default()
    }

    /// Record every touched stage of one request.
    pub fn record(&self, times: &StageTimes) {
        for (stage, ns) in times.iter() {
            self.histograms[stage.index()].record(Duration::from_nanos(ns));
        }
    }

    /// Record a single stage observation (the gateway uses this for
    /// wake latency, which never flows through a [`StageTimes`]).
    pub fn record_one(&self, stage: Stage, latency: Duration) {
        self.histograms[stage.index()].record(latency);
    }

    /// The histogram backing one stage.
    pub fn get(&self, stage: Stage) -> &LatencyHistogram {
        &self.histograms[stage.index()]
    }

    /// Copy out `(name, count, p50, p99)` per stage, in pipeline order.
    pub fn summaries(&self) -> Vec<StageSummary> {
        Stage::ALL
            .iter()
            .map(|&stage| {
                let h = self.get(stage);
                StageSummary {
                    stage: stage.name(),
                    count: h.count(),
                    p50_us: h.quantile_us(0.50).unwrap_or(0),
                    p99_us: h.quantile_us(0.99).unwrap_or(0),
                }
            })
            .collect()
    }
}

/// One stage's latency distribution, copied into a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSummary {
    /// Stable stage name ([`Stage::name`]).
    pub stage: &'static str,
    /// Observations recorded.
    pub count: u64,
    /// Median latency in µs (bucket upper bound); 0 if never observed.
    pub p50_us: u64,
    /// 99th-percentile latency in µs; 0 if never observed.
    pub p99_us: u64,
}

/// Shared mutable counters the server and its workers write into.
pub struct ServerMetrics {
    /// Requests accepted into a shard queue.
    pub submitted: AtomicU64,
    /// Requests completed successfully.
    pub completed: AtomicU64,
    /// Requests completed with an error.
    pub errors: AtomicU64,
    /// Requests rejected by backpressure (`try_submit` on a full queue).
    pub rejected: AtomicU64,
    /// End-to-end latency (enqueue → response) histogram.
    pub latency: LatencyHistogram,
    /// Per-stage latency histograms (queue wait, fetch, parse, cache,
    /// exec, serialize), fed by the workers per completed request.
    pub stages: StageHistograms,
    /// When the server started (throughput denominator).
    pub started_at: Instant,
}

impl ServerMetrics {
    /// Fresh counters starting now.
    pub fn new() -> ServerMetrics {
        ServerMetrics {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            stages: StageHistograms::new(),
            started_at: Instant::now(),
        }
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

/// A point-in-time, copyable view of the service's health.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Requests accepted into a shard queue.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests completed with an error.
    pub errors: u64,
    /// Requests rejected by backpressure.
    pub rejected: u64,
    /// Completions per second since the server started.
    pub throughput_per_sec: f64,
    /// Median end-to-end latency in µs (bucket upper bound); 0 if idle.
    pub p50_us: u64,
    /// 99th-percentile end-to-end latency in µs; 0 if idle.
    pub p99_us: u64,
    /// Per-stage latency summaries, in pipeline order (the `wake` slot
    /// stays empty here — the gateway owns that measurement).
    pub stages: Vec<StageSummary>,
    /// Jobs currently queued, per shard.
    pub queue_depths: Vec<usize>,
    /// Worker thread count.
    pub workers: usize,
    /// Hot-tier (result cache) counters.
    pub cache: CacheStats,
    /// Disk-tier (durable store) counters; all zero when the server runs
    /// memory-only.
    pub store: StoreStats,
}

impl MetricsSnapshot {
    /// Assemble a snapshot from live counters.
    pub fn collect(
        metrics: &ServerMetrics,
        queue_depths: Vec<usize>,
        workers: usize,
        cache: CacheStats,
        store: StoreStats,
    ) -> MetricsSnapshot {
        let completed = metrics.completed.load(Ordering::Relaxed);
        let elapsed = metrics.started_at.elapsed().as_secs_f64().max(1e-9);
        MetricsSnapshot {
            submitted: metrics.submitted.load(Ordering::Relaxed),
            completed,
            errors: metrics.errors.load(Ordering::Relaxed),
            rejected: metrics.rejected.load(Ordering::Relaxed),
            throughput_per_sec: completed as f64 / elapsed,
            p50_us: metrics.latency.quantile_us(0.50).unwrap_or(0),
            p99_us: metrics.latency.quantile_us(0.99).unwrap_or(0),
            stages: metrics.stages.summaries(),
            queue_depths,
            workers,
            cache,
            store,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), None);
        for _ in 0..98 {
            h.record(Duration::from_micros(100)); // bucket [64,128) → 128
        }
        h.record(Duration::from_micros(3)); // [2,4) → 4
        h.record(Duration::from_millis(20)); // [16384,32768) → 32768
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.0), Some(4));
        assert_eq!(h.quantile_us(0.5), Some(128));
        assert_eq!(h.quantile_us(0.99), Some(128));
        assert_eq!(h.quantile_us(1.0), Some(32768));
    }

    #[test]
    fn bucket_diff_quantiles_cover_only_the_window() {
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(Duration::from_millis(500)); // a slow burst
        }
        let before = h.buckets();
        for _ in 0..100 {
            h.record(Duration::from_micros(100)); // recovery traffic
        }
        let after = h.buckets();
        // The cumulative p99 stays pinned at the burst's bucket...
        assert_eq!(h.quantile_us(0.99), Some(524_288));
        // ...while the snapshot diff sees only the fast window.
        let delta: Vec<u64> = after.iter().zip(before).map(|(a, b)| a - b).collect();
        assert_eq!(bucket_quantile_us(&delta, 0.99), Some(128));
        assert_eq!(bucket_quantile_us(&[0; LATENCY_BUCKETS], 0.99), None);
    }

    #[test]
    fn zero_latency_lands_in_first_bucket() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.quantile_us(0.5), Some(1));
    }

    #[test]
    fn snapshot_collects_counters() {
        let m = ServerMetrics::new();
        m.submitted.store(10, Ordering::Relaxed);
        m.completed.store(8, Ordering::Relaxed);
        m.errors.store(2, Ordering::Relaxed);
        m.latency.record(Duration::from_micros(50));
        let snap = MetricsSnapshot::collect(
            &m,
            vec![1, 2],
            4,
            CacheStats::default(),
            StoreStats::default(),
        );
        assert_eq!((snap.submitted, snap.completed, snap.errors), (10, 8, 2));
        assert_eq!(snap.queue_depths, vec![1, 2]);
        assert_eq!(snap.workers, 4);
        assert!(snap.throughput_per_sec > 0.0);
        assert_eq!(snap.p50_us, 64);
    }

    #[test]
    fn stage_histograms_record_only_touched_stages() {
        let m = ServerMetrics::new();
        let mut times = StageTimes::new();
        times.add(Stage::QueueWait, Duration::from_micros(3));
        times.add(Stage::PlanExec, Duration::from_micros(100));
        m.stages.record(&times);
        m.stages.record_one(Stage::Wake, Duration::from_micros(3));
        let summaries = m.stages.summaries();
        assert_eq!(summaries.len(), STAGE_COUNT);
        let by_name = |n: &str| summaries.iter().find(|s| s.stage == n).unwrap().clone();
        assert_eq!(by_name("queue_wait").count, 1);
        assert_eq!(by_name("exec").p50_us, 128);
        assert_eq!(by_name("wake").count, 1);
        assert_eq!(by_name("fetch").count, 0);
        assert_eq!(by_name("fetch").p50_us, 0);
    }
}
