//! Durable, provenance-tracked tiered result store.
//!
//! The [`TieredStore`] layers the existing in-memory sharded
//! [`ResultCache`] (the *hot tier*) over an optional append-only,
//! log-structured *disk tier*, so a restarted gateway serves
//! previously-cached extractions without re-executing any plan. Every
//! stored entry carries a [`Provenance`] record — wrapper name and
//! version, plan fingerprint, source page URL and body hash, and the
//! producing plan-rule index of every extracted instance — answering
//! "why did this instance appear?" across restarts.
//!
//! # On-disk format
//!
//! A store directory holds exactly two files (see `docs/ARCHITECTURE.md`
//! for the normative spec):
//!
//! * `snapshot.log` — a compacted baseline, rewritten atomically
//!   (tmp-file + rename) by [`TieredStore::compact`];
//! * `wal.log` — the write-ahead log: every insert appends one `put`
//!   record, every invalidation one `del` tombstone.
//!
//! Both files are line-oriented UTF-8: one record per `\n`-terminated
//! line, fields separated by tabs, every string field escaped with the
//! same `\\` / `\n` / `\r` / `\t` convention as the wrapper-registry
//! spool (the two substrates share one durability directory convention —
//! see [`durability_layout`]). The first line of each file is a header,
//! `lixto-store v1 snapshot` or `lixto-store v1 wal`.
//!
//! A `put` record is:
//!
//! ```text
//! put <wrapper> <plan:016x> <content:016x> <created-epoch-secs>
//!     <crawl_live:0|1> <version> <source_url> <source_hash:016x> <xml>
//!     <n-instances> (<pattern> <parent|-> <rule|-> <text>)*
//!     <n-crawl> (<url> <hash:016x|->)*
//! ```
//!
//! (shown wrapped; on disk it is a single tab-separated line). A `del`
//! record is `del <wrapper> <plan:016x> <content:016x>`.
//!
//! # Recovery
//!
//! [`TieredStore::open`] reads `snapshot.log`, then replays `wal.log`
//! over it (later records win; tombstones remove). Any line that fails
//! to decode — a torn write at the WAL tail, a corrupted sector, a
//! future record type — is *skipped and counted*
//! ([`StoreStats::corrupt_records`]), never fatal: recovery always
//! yields the longest cleanly-parseable prefix of history. Entries
//! whose TTL has lapsed are dropped on load ([`StoreStats::expired`]).
//!
//! # Compaction
//!
//! When the WAL grows past half the configured byte budget, or live
//! entries exceed the budget, the store compacts: expired entries are
//! dropped, then the oldest entries are evicted until the live set fits
//! the budget, and `snapshot.log` is rewritten (entries sorted by key,
//! so equivalent stores compact to byte-identical snapshots) and the
//! WAL truncated back to its header.
//!
//! # Durability model
//!
//! Appends are flushed to the OS on every insert but not fsynced: the
//! store survives process crashes and restarts (the common gateway
//! redeploy), while a power failure may lose the last few records — each
//! of which is merely a cache entry, recomputable from source.

#![deny(missing_docs)]

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use lixto_elog::eval::ExtractionResult;
use lixto_elog::instances::{Instance, InstanceBase, Target};

use crate::cache::{CacheKey, CacheStats, CachedExtraction, CrawlRecord, ResultCache};
use crate::registry::{escape, unescape};

/// File-format magic, first field of each header line.
const MAGIC: &str = "lixto-store";
/// Format version, second field of each header line.
const VERSION: &str = "v1";

/// Where each durable substrate of a server lives under one data
/// directory — the single convention shared by the wrapper-registry
/// spool and the result store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityLayout {
    /// The data directory itself.
    pub root: PathBuf,
    /// Wrapper-registry spool directory (`<root>/wrappers`); pass to
    /// [`WrapperRegistry::with_spool`](crate::WrapperRegistry::with_spool).
    pub wrappers: PathBuf,
    /// Result-store directory (`<root>/store`); pass to
    /// [`StoreConfig::new`].
    pub store: PathBuf,
    /// Watch-subscription spool directory (`<root>/watches`); pass to
    /// [`WatchRegistry::with_spool`](crate::WatchRegistry::with_spool).
    pub watches: PathBuf,
}

/// The shared durability directory convention: one `root` data
/// directory with a `wrappers/` registry spool, a `store/` result store
/// and a `watches/` subscription spool beside each other, so "persist
/// this server" is a single path.
pub fn durability_layout(root: impl Into<PathBuf>) -> DurabilityLayout {
    let root = root.into();
    DurabilityLayout {
        wrappers: root.join("wrappers"),
        store: root.join("store"),
        watches: root.join("watches"),
        root,
    }
}

/// Per-instance derivation record: which rule of which wrapper produced
/// an extracted instance, from which page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceProvenance {
    /// Pattern the instance belongs to.
    pub pattern: String,
    /// Index of the parent instance in the base (`None` for page-entry
    /// instances).
    pub parent: Option<usize>,
    /// Index of the plan rule that derived the instance (`None` when the
    /// result came from the interpreted reference evaluator, which
    /// records no trace).
    pub rule: Option<u32>,
    /// The instance's extracted text.
    pub text: String,
}

/// The derivation of one cached extraction: enough to answer "which
/// wrapper version and rule produced this instance, from which page?"
/// — the audit record the paper's supervised re-deployment story needs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Provenance {
    /// Wrapper name.
    pub wrapper: String,
    /// Registry version that executed.
    pub version: u32,
    /// Fingerprint of the compiled plan (`WrapperSpec::plan_id`).
    pub plan: u64,
    /// URL of the entry document.
    pub source_url: String,
    /// `fxhash64` of the entry document's body.
    pub source_hash: u64,
    /// One record per instance of the result's base, index-parallel.
    pub instances: Vec<InstanceProvenance>,
}

/// Render a [`CacheKey`] as the stable string key served by
/// `GET /provenance/{key}`: the wrapper name percent-encoded to
/// `[A-Za-z0-9_-]` (the registry spool's file-name convention), then
/// the plan fingerprint and content address as fixed-width hex,
/// `@`-separated.
pub fn provenance_key(key: &CacheKey) -> String {
    let mut out = String::with_capacity(key.wrapper.len() + 36);
    for b in key.wrapper.bytes() {
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02x}"));
        }
    }
    out.push_str(&format!("@{:016x}@{:016x}", key.plan, key.content));
    out
}

/// Parse a string produced by [`provenance_key`] back into a
/// [`CacheKey`]. The two fixed-width hex fields are taken from the
/// right, so wrapper names containing `@` (percent-encoded as `%40`)
/// cannot confuse the split.
pub fn parse_provenance_key(s: &str) -> Option<CacheKey> {
    let (rest, content) = s.rsplit_once('@')?;
    let (wrapper_enc, plan) = rest.rsplit_once('@')?;
    let plan = u64::from_str_radix(plan, 16)
        .ok()
        .filter(|_| plan.len() == 16)?;
    let content = u64::from_str_radix(content, 16)
        .ok()
        .filter(|_| content.len() == 16)?;
    // Percent-decode the wrapper name.
    let bytes = wrapper_enc.as_bytes();
    let mut wrapper = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            wrapper.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            wrapper.push(bytes[i]);
            i += 1;
        }
    }
    Some(CacheKey {
        wrapper: String::from_utf8(wrapper).ok()?,
        plan,
        content,
    })
}

/// Disk-tier configuration for [`TieredStore::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Directory holding `snapshot.log` and `wal.log` (created if
    /// absent). Under the shared data-directory convention this is
    /// [`DurabilityLayout::store`].
    pub dir: PathBuf,
    /// Drop entries older than this at recovery, lookup and compaction;
    /// `None` keeps entries until evicted by the byte budget.
    pub ttl: Option<Duration>,
    /// Byte budget for live entries; compaction evicts oldest-first past
    /// it, and the WAL compacts at half this size.
    pub budget_bytes: u64,
}

impl StoreConfig {
    /// A config for `dir` with no TTL and the default 64 MiB budget.
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            ttl: None,
            budget_bytes: 64 * 1024 * 1024,
        }
    }
}

/// Disk-tier counters, all zero for a memory-only store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// `put` records appended to the WAL since open.
    pub persisted: u64,
    /// Entries recovered from disk at open (after TTL filtering).
    pub recovered: u64,
    /// Hot-tier misses answered by the disk tier (warm restarts show up
    /// here).
    pub disk_hits: u64,
    /// Live entries in the disk tier.
    pub disk_len: usize,
    /// Approximate encoded bytes of the live entries.
    pub disk_bytes: u64,
    /// Undecodable lines skipped during recovery (torn WAL tails,
    /// corrupted records).
    pub corrupt_records: u64,
    /// Snapshot rewrites performed.
    pub compactions: u64,
    /// Entries dropped because their TTL lapsed.
    pub expired: u64,
    /// Entries evicted oldest-first by the byte budget.
    pub disk_evictions: u64,
    /// Disk writes that failed (the store degrades to memory-only
    /// behavior for the affected records rather than erroring requests).
    pub write_errors: u64,
}

struct DiskEntry {
    value: Arc<CachedExtraction>,
    created: u64,
    bytes: u64,
}

struct DiskTier {
    dir: PathBuf,
    wal: File,
    wal_bytes: u64,
    index: HashMap<CacheKey, DiskEntry>,
    ttl: Option<Duration>,
    budget: u64,
    persisted: u64,
    recovered: u64,
    disk_hits: u64,
    corrupt: u64,
    compactions: u64,
    expired: u64,
    evictions: u64,
    write_errors: u64,
}

/// Seconds since the Unix epoch (0 on a pre-1970 clock).
fn epoch_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn header(kind: &str) -> String {
    format!("{MAGIC}\t{VERSION}\t{kind}\n")
}

/// Encode one `put` record (no trailing newline).
fn encode_put(key: &CacheKey, entry: &CachedExtraction, created: u64) -> String {
    let p = &entry.provenance;
    let mut out = String::with_capacity(entry.xml.len() + 256);
    out.push_str("put\t");
    out.push_str(&escape(&key.wrapper));
    out.push_str(&format!(
        "\t{:016x}\t{:016x}\t{created}\t{}\t{}\t",
        key.plan,
        key.content,
        u8::from(entry.crawl_live),
        p.version,
    ));
    out.push_str(&escape(&p.source_url));
    out.push_str(&format!("\t{:016x}\t", p.source_hash));
    out.push_str(&escape(&entry.xml));
    out.push_str(&format!("\t{}", p.instances.len()));
    for inst in &p.instances {
        out.push('\t');
        out.push_str(&escape(&inst.pattern));
        match inst.parent {
            Some(parent) => out.push_str(&format!("\t{parent}")),
            None => out.push_str("\t-"),
        }
        match inst.rule {
            Some(rule) => out.push_str(&format!("\t{rule}")),
            None => out.push_str("\t-"),
        }
        out.push('\t');
        out.push_str(&escape(&inst.text));
    }
    out.push_str(&format!("\t{}", entry.crawl.len()));
    for record in &entry.crawl {
        out.push('\t');
        out.push_str(&escape(&record.url));
        match record.content {
            Some(hash) => out.push_str(&format!("\t{hash:016x}")),
            None => out.push_str("\t-"),
        }
    }
    out
}

fn encode_del(key: &CacheKey) -> String {
    format!(
        "del\t{}\t{:016x}\t{:016x}",
        escape(&key.wrapper),
        key.plan,
        key.content
    )
}

enum Record {
    Header,
    Put(CacheKey, u64, Arc<CachedExtraction>),
    Del(CacheKey),
}

/// Decode one line; `None` marks it corrupt (skipped and counted).
fn decode_line(line: &str) -> Option<Record> {
    let mut fields = line.split('\t');
    match fields.next()? {
        MAGIC => (fields.next() == Some(VERSION)).then_some(Record::Header),
        "del" => {
            let wrapper = unescape(fields.next()?).ok()?;
            let plan = u64::from_str_radix(fields.next()?, 16).ok()?;
            let content = u64::from_str_radix(fields.next()?, 16).ok()?;
            fields.next().is_none().then_some(Record::Del(CacheKey {
                wrapper,
                plan,
                content,
            }))
        }
        "put" => decode_put(fields),
        _ => None,
    }
}

fn decode_put(mut fields: std::str::Split<'_, char>) -> Option<Record> {
    let wrapper = unescape(fields.next()?).ok()?;
    let plan = u64::from_str_radix(fields.next()?, 16).ok()?;
    let content = u64::from_str_radix(fields.next()?, 16).ok()?;
    let created: u64 = fields.next()?.parse().ok()?;
    let crawl_live = match fields.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let version: u32 = fields.next()?.parse().ok()?;
    let source_url = unescape(fields.next()?).ok()?;
    let source_hash = u64::from_str_radix(fields.next()?, 16).ok()?;
    let xml = unescape(fields.next()?).ok()?;
    let n_inst: usize = fields.next()?.parse().ok()?;
    let mut instances = Vec::with_capacity(n_inst.min(4096));
    for _ in 0..n_inst {
        let pattern = unescape(fields.next()?).ok()?;
        let parent = match fields.next()? {
            "-" => None,
            n => Some(n.parse().ok()?),
        };
        let rule = match fields.next()? {
            "-" => None,
            n => Some(n.parse().ok()?),
        };
        let text = unescape(fields.next()?).ok()?;
        instances.push(InstanceProvenance {
            pattern,
            parent,
            rule,
            text,
        });
    }
    let n_crawl: usize = fields.next()?.parse().ok()?;
    let mut crawl = Vec::with_capacity(n_crawl.min(4096));
    for _ in 0..n_crawl {
        let url = unescape(fields.next()?).ok()?;
        let content = match fields.next()? {
            "-" => None,
            h => Some(u64::from_str_radix(h, 16).ok()?),
        };
        crawl.push(CrawlRecord { url, content });
    }
    if fields.next().is_some() {
        return None;
    }
    // Parent indices must point backwards (children follow parents in
    // the base) or the record is corrupt.
    if instances
        .iter()
        .enumerate()
        .any(|(i, inst)| inst.parent.is_some_and(|p| p >= i))
    {
        return None;
    }
    let base = InstanceBase {
        instances: instances
            .iter()
            .map(|inst| Instance {
                pattern: inst.pattern.as_str().into(),
                parent: inst.parent,
                target: Target::Text(inst.text.clone()),
            })
            .collect(),
    };
    let rule_trace = if instances.iter().all(|i| i.rule.is_some()) {
        instances.iter().filter_map(|i| i.rule).collect()
    } else {
        Vec::new()
    };
    let provenance = Provenance {
        wrapper: wrapper.clone(),
        version,
        plan,
        source_url,
        source_hash,
        instances,
    };
    let value = Arc::new(CachedExtraction {
        result: ExtractionResult::from_parts(base, Vec::new(), Vec::new(), rule_trace),
        xml,
        crawl,
        crawl_live,
        provenance,
    });
    Some(Record::Put(
        CacheKey {
            wrapper,
            plan,
            content,
        },
        created,
        value,
    ))
}

impl DiskTier {
    fn open(config: &StoreConfig) -> io::Result<DiskTier> {
        fs::create_dir_all(&config.dir)?;
        let mut index: HashMap<CacheKey, DiskEntry> = HashMap::new();
        let mut corrupt = 0u64;
        for file in ["snapshot.log", "wal.log"] {
            let path = config.dir.join(file);
            let Ok(contents) = fs::read_to_string(&path) else {
                continue;
            };
            for line in contents.split('\n') {
                if line.is_empty() {
                    continue;
                }
                match decode_line(line) {
                    Some(Record::Header) => {}
                    Some(Record::Put(key, created, value)) => {
                        let bytes = line.len() as u64 + 1;
                        index.insert(
                            key,
                            DiskEntry {
                                value,
                                created,
                                bytes,
                            },
                        );
                    }
                    Some(Record::Del(key)) => {
                        index.remove(&key);
                    }
                    None => {
                        corrupt += 1;
                        lixto_obs::warn_event!(
                            "store_corrupt_record",
                            "file" => file,
                            "bytes" => line.len(),
                        );
                    }
                }
            }
        }
        let mut expired = 0u64;
        if let Some(ttl) = config.ttl {
            let now = epoch_secs();
            let before = index.len();
            index.retain(|_, e| e.created.saturating_add(ttl.as_secs()) > now);
            expired = (before - index.len()) as u64;
        }
        let wal_path = config.dir.join("wal.log");
        let fresh_wal = fs::metadata(&wal_path)
            .map(|m| m.len() == 0)
            .unwrap_or(true);
        let mut wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)?;
        if fresh_wal {
            wal.write_all(header("wal").as_bytes())?;
        }
        let wal_bytes = fs::metadata(&wal_path)?.len();
        let recovered = index.len() as u64;
        Ok(DiskTier {
            dir: config.dir.clone(),
            wal,
            wal_bytes,
            index,
            ttl: config.ttl,
            budget: config.budget_bytes.max(1),
            persisted: 0,
            recovered,
            disk_hits: 0,
            corrupt,
            compactions: 0,
            expired,
            evictions: 0,
            write_errors: 0,
        })
    }

    fn get(&mut self, key: &CacheKey) -> Option<Arc<CachedExtraction>> {
        if let Some(ttl) = self.ttl {
            let now = epoch_secs();
            if let Some(entry) = self.index.get(key) {
                if entry.created.saturating_add(ttl.as_secs()) <= now {
                    self.index.remove(key);
                    self.expired += 1;
                    return None;
                }
            }
        }
        let value = self.index.get(key).map(|e| e.value.clone())?;
        self.disk_hits += 1;
        Some(value)
    }

    fn insert(&mut self, key: CacheKey, value: Arc<CachedExtraction>) {
        let created = epoch_secs();
        let mut line = encode_put(&key, &value, created);
        line.push('\n');
        let bytes = line.len() as u64;
        match self
            .wal
            .write_all(line.as_bytes())
            .and_then(|()| self.wal.flush())
        {
            Ok(()) => {
                self.wal_bytes += bytes;
                self.persisted += 1;
            }
            Err(_) => self.write_errors += 1,
        }
        self.index.insert(
            key,
            DiskEntry {
                value,
                created,
                bytes,
            },
        );
        let live: u64 = self.index.values().map(|e| e.bytes).sum();
        if self.wal_bytes > self.budget / 2 || live > self.budget {
            self.compact();
        }
    }

    fn invalidate(&mut self, key: &CacheKey) -> bool {
        if self.index.remove(key).is_none() {
            return false;
        }
        let mut line = encode_del(key);
        line.push('\n');
        match self
            .wal
            .write_all(line.as_bytes())
            .and_then(|()| self.wal.flush())
        {
            Ok(()) => self.wal_bytes += line.len() as u64,
            Err(_) => self.write_errors += 1,
        }
        true
    }

    fn compact(&mut self) {
        // TTL sweep, then oldest-first eviction down to the budget.
        if let Some(ttl) = self.ttl {
            let now = epoch_secs();
            let before = self.index.len();
            self.index
                .retain(|_, e| e.created.saturating_add(ttl.as_secs()) > now);
            self.expired += (before - self.index.len()) as u64;
        }
        let mut live: u64 = self.index.values().map(|e| e.bytes).sum();
        while live > self.budget && self.index.len() > 1 {
            let victim = self
                .index
                .iter()
                .min_by_key(|(_, e)| e.created)
                .map(|(k, _)| k.clone())
                .expect("non-empty index");
            if let Some(dropped) = self.index.remove(&victim) {
                live -= dropped.bytes;
                self.evictions += 1;
            }
        }
        // Deterministic snapshot: entries sorted by key, written to a
        // tmp file and renamed over the old snapshot.
        let mut entries: Vec<(&CacheKey, &DiskEntry)> = self.index.iter().collect();
        entries.sort_by(|(a, _), (b, _)| {
            (&a.wrapper, a.plan, a.content).cmp(&(&b.wrapper, b.plan, b.content))
        });
        let mut out = header("snapshot");
        for (key, entry) in entries {
            out.push_str(&encode_put(key, &entry.value, entry.created));
            out.push('\n');
        }
        let tmp = self.dir.join("snapshot.tmp");
        let result = fs::write(&tmp, &out)
            .and_then(|()| fs::rename(&tmp, self.dir.join("snapshot.log")))
            .and_then(|()| {
                // Truncate the WAL back to its header; the snapshot now
                // carries everything.
                let mut wal = File::create(self.dir.join("wal.log"))?;
                wal.write_all(header("wal").as_bytes())?;
                self.wal = wal;
                self.wal_bytes = header("wal").len() as u64;
                Ok(())
            });
        match result {
            Ok(()) => self.compactions += 1,
            Err(_) => self.write_errors += 1,
        }
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            persisted: self.persisted,
            recovered: self.recovered,
            disk_hits: self.disk_hits,
            disk_len: self.index.len(),
            disk_bytes: self.index.values().map(|e| e.bytes).sum(),
            corrupt_records: self.corrupt,
            compactions: self.compactions,
            expired: self.expired,
            disk_evictions: self.evictions,
            write_errors: self.write_errors,
        }
    }
}

/// The tiered result store: the sharded in-memory [`ResultCache`] as hot
/// tier, optionally backed by the append-only disk tier described in the
/// module docs. All methods take `&self`; the disk tier serializes
/// behind one mutex (it is off the hot path — the hot tier answers
/// steady-state traffic, the disk tier absorbs inserts and warm-restart
/// promotion).
pub struct TieredStore {
    hot: ResultCache,
    disk: Option<Mutex<DiskTier>>,
}

impl TieredStore {
    /// A memory-only store (exactly the pre-persistence behavior).
    pub fn memory(capacity: usize) -> TieredStore {
        TieredStore {
            hot: ResultCache::new(capacity),
            disk: None,
        }
    }

    /// Open a durable store: a hot tier of `capacity` entries over the
    /// disk tier at `config.dir`, recovering whatever the directory
    /// holds (see the module docs for the recovery rules).
    pub fn open(capacity: usize, config: &StoreConfig) -> io::Result<TieredStore> {
        Ok(TieredStore {
            hot: ResultCache::new(capacity),
            disk: Some(Mutex::new(DiskTier::open(config)?)),
        })
    }

    /// Look up `key` without touching the hit/miss counters: hot tier
    /// first, then the disk tier, promoting a disk hit into the hot tier
    /// (pairs with [`record_hit`](TieredStore::record_hit) /
    /// [`record_miss`](TieredStore::record_miss), exactly like
    /// [`ResultCache::peek`]).
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<CachedExtraction>> {
        if let Some(value) = self.hot.peek(key) {
            return Some(value);
        }
        let disk = self.disk.as_ref()?;
        let value = disk.lock().expect("store poisoned").get(key)?;
        self.hot.insert(key.clone(), value.clone());
        Some(value)
    }

    /// Count one hit (pairs with [`peek`](TieredStore::peek)).
    pub fn record_hit(&self) {
        self.hot.record_hit();
    }

    /// Count one miss (pairs with [`peek`](TieredStore::peek)).
    pub fn record_miss(&self) {
        self.hot.record_miss();
    }

    /// Insert into the hot tier and append to the WAL.
    pub fn insert(&self, key: CacheKey, value: Arc<CachedExtraction>) {
        self.hot.insert(key.clone(), value.clone());
        if let Some(disk) = &self.disk {
            disk.lock().expect("store poisoned").insert(key, value);
        }
    }

    /// Drop `key` from both tiers (a tombstone is appended so the
    /// invalidation survives restart); true if either tier held it.
    pub fn invalidate(&self, key: &CacheKey) -> bool {
        let hot = self.hot.invalidate(key);
        let disk = match &self.disk {
            Some(disk) => disk.lock().expect("store poisoned").invalidate(key),
            None => false,
        };
        hot || disk
    }

    /// The stored entry for `key` — result, XML and [`Provenance`] —
    /// from either tier, without counting a hit or miss. This is the
    /// lookup behind `GET /provenance/{key}`.
    pub fn lookup(&self, key: &CacheKey) -> Option<Arc<CachedExtraction>> {
        self.peek(key)
    }

    /// Rewrite the snapshot and truncate the WAL now (compaction also
    /// triggers automatically; see the module docs). No-op for a
    /// memory-only store.
    pub fn compact(&self) {
        if let Some(disk) = &self.disk {
            disk.lock().expect("store poisoned").compact();
        }
    }

    /// Hot-tier counters (hits, misses, evictions, invalidations, len).
    pub fn cache_stats(&self) -> CacheStats {
        self.hot.stats()
    }

    /// Disk-tier counters; all zero when memory-only.
    pub fn store_stats(&self) -> StoreStats {
        match &self.disk {
            Some(disk) => disk.lock().expect("store poisoned").stats(),
            None => StoreStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn entry(wrapper: &str, xml: &str, texts: &[&str]) -> Arc<CachedExtraction> {
        let instances: Vec<InstanceProvenance> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| InstanceProvenance {
                pattern: "item".to_string(),
                parent: if i == 0 { None } else { Some(0) },
                rule: Some(i as u32),
                text: t.to_string(),
            })
            .collect();
        let base = InstanceBase {
            instances: instances
                .iter()
                .map(|p| Instance {
                    pattern: p.pattern.as_str().into(),
                    parent: p.parent,
                    target: Target::Text(p.text.clone()),
                })
                .collect(),
        };
        let rule_trace = instances.iter().filter_map(|p| p.rule).collect();
        Arc::new(CachedExtraction {
            result: ExtractionResult::from_parts(base, Vec::new(), Vec::new(), rule_trace),
            xml: xml.to_string(),
            crawl: vec![CrawlRecord {
                url: "http://sub/page".to_string(),
                content: Some(42),
            }],
            crawl_live: false,
            provenance: Provenance {
                wrapper: wrapper.to_string(),
                version: 1,
                plan: 7,
                source_url: "http://entry/".to_string(),
                source_hash: 99,
                instances,
            },
        })
    }

    fn key(wrapper: &str, content: u64) -> CacheKey {
        CacheKey {
            wrapper: wrapper.to_string(),
            plan: 7,
            content,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lixto-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn provenance_key_round_trips_awkward_names() {
        for name in ["shop", "weird name/v=1", "a@b", "ünïcode"] {
            let k = CacheKey {
                wrapper: name.to_string(),
                plan: 0xdead_beef,
                content: 42,
            };
            let s = provenance_key(&k);
            assert!(
                s.bytes().all(|b| b.is_ascii_alphanumeric()
                    || b == b'_'
                    || b == b'-'
                    || b == b'%'
                    || b == b'@'),
                "unsafe byte in {s:?}"
            );
            assert_eq!(parse_provenance_key(&s), Some(k));
        }
        assert_eq!(parse_provenance_key("no-separators"), None);
        assert_eq!(parse_provenance_key("w@123@xyz"), None);
    }

    #[test]
    fn put_record_round_trips() {
        let value = entry("shop", "<a>1 &amp; 2</a>\n<b/>", &["alpha\tbeta", "γ"]);
        let k = key("shop", 5);
        let line = encode_put(&k, &value, 1234);
        assert!(!line.contains('\n'), "records are single lines");
        match decode_line(&line) {
            Some(Record::Put(dk, created, dv)) => {
                assert_eq!(dk, k);
                assert_eq!(created, 1234);
                assert_eq!(*dv, *value);
                assert_eq!(dv.result.rule_trace, value.result.rule_trace);
                assert_eq!(dv.result.patterns(), value.result.patterns());
            }
            _ => panic!("round trip failed"),
        }
    }

    #[test]
    fn corrupt_lines_are_skipped_and_counted() {
        let dir = temp_dir("corrupt");
        {
            let store = TieredStore::open(4, &StoreConfig::new(&dir)).unwrap();
            store.insert(key("shop", 1), entry("shop", "<a/>", &["x"]));
            store.insert(key("shop", 2), entry("shop", "<b/>", &["y"]));
        }
        // Corruption in the middle and a torn tail.
        let wal = dir.join("wal.log");
        let mut contents = fs::read_to_string(&wal).unwrap();
        contents.push_str("garbage line that decodes to nothing\n");
        contents.push_str("put\tshop\t0000000000000007\ttorn-");
        fs::write(&wal, contents).unwrap();
        let store = TieredStore::open(4, &StoreConfig::new(&dir)).unwrap();
        assert!(store.peek(&key("shop", 1)).is_some());
        assert!(store.peek(&key("shop", 2)).is_some());
        let stats = store.store_stats();
        assert_eq!(stats.recovered, 2);
        assert_eq!(stats.corrupt_records, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tombstones_survive_restart() {
        let dir = temp_dir("tombstone");
        {
            let store = TieredStore::open(4, &StoreConfig::new(&dir)).unwrap();
            store.insert(key("shop", 1), entry("shop", "<a/>", &["x"]));
            store.insert(key("shop", 2), entry("shop", "<b/>", &["y"]));
            assert!(store.invalidate(&key("shop", 1)));
        }
        let store = TieredStore::open(4, &StoreConfig::new(&dir)).unwrap();
        assert!(store.peek(&key("shop", 1)).is_none());
        assert!(store.peek(&key("shop", 2)).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ttl_expires_entries_on_recovery() {
        let dir = temp_dir("ttl");
        {
            let store = TieredStore::open(4, &StoreConfig::new(&dir)).unwrap();
            store.insert(key("shop", 1), entry("shop", "<a/>", &["x"]));
        }
        let mut expired = StoreConfig::new(&dir);
        expired.ttl = Some(Duration::ZERO);
        let store = TieredStore::open(4, &expired).unwrap();
        assert!(store.peek(&key("shop", 1)).is_none());
        assert_eq!(store.store_stats().expired, 1);
        // A generous TTL keeps it.
        let mut keep = StoreConfig::new(&dir);
        keep.ttl = Some(Duration::from_secs(3600));
        let store = TieredStore::open(4, &keep).unwrap();
        assert!(store.peek(&key("shop", 1)).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budget_compaction_evicts_oldest_and_truncates_wal() {
        let dir = temp_dir("budget");
        let mut config = StoreConfig::new(&dir);
        config.budget_bytes = 2048;
        let store = TieredStore::open(64, &config).unwrap();
        let big = "x".repeat(300);
        for i in 0..16 {
            store.insert(key("shop", i), entry("shop", &big, &["t"]));
        }
        let stats = store.store_stats();
        assert!(stats.compactions >= 1, "WAL growth must trigger compaction");
        assert!(stats.disk_bytes <= 2048, "live bytes over budget");
        assert!(stats.disk_evictions >= 1);
        // The survivors are still served after a restart.
        drop(store);
        let store = TieredStore::open(64, &config).unwrap();
        assert!(store.store_stats().recovered >= 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_hits_promote_into_the_hot_tier() {
        let dir = temp_dir("promote");
        {
            let store = TieredStore::open(4, &StoreConfig::new(&dir)).unwrap();
            store.insert(key("shop", 1), entry("shop", "<a/>", &["x"]));
        }
        let store = TieredStore::open(4, &StoreConfig::new(&dir)).unwrap();
        assert!(store.peek(&key("shop", 1)).is_some());
        assert_eq!(store.store_stats().disk_hits, 1);
        // Second peek is answered by the hot tier.
        assert!(store.peek(&key("shop", 1)).is_some());
        assert_eq!(store.store_stats().disk_hits, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durability_layout_places_both_substrates() {
        let layout = durability_layout("/data/lixto");
        assert_eq!(layout.wrappers, Path::new("/data/lixto/wrappers"));
        assert_eq!(layout.store, Path::new("/data/lixto/store"));
        assert_eq!(layout.watches, Path::new("/data/lixto/watches"));
        assert_eq!(layout.root, Path::new("/data/lixto"));
    }
}
