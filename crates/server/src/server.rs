//! The extraction server: a sharded worker pool executing registered
//! wrappers against submitted documents.
//!
//! Requests are hashed to one of N shards (by wrapper name plus source
//! identity, so identical work lands on the same queue), each shard owns
//! a bounded job queue drained by one or more worker threads, and every
//! completed extraction is stored in the shared content-addressed
//! [`ResultCache`](crate::ResultCache). Bounded queues give
//! backpressure two ways: `submit`
//! blocks the producer when its shard is full, `try_submit` returns
//! [`ServerError::Backpressure`] instead.
//!
//! Shutdown is drain-ordered and callable through a shared handle
//! ([`ExtractionServer::initiate_shutdown`], which `shutdown` wraps):
//! intake stops first, the workers finish every queued job — answering
//! every outstanding [`JobTicket`] — and only then are the threads
//! joined. A ticket whose job can no longer be executed (its worker died
//! or its queue was torn down) resolves to [`ServerError::Canceled`]
//! rather than hanging, so frontend handler threads blocked in
//! [`JobTicket::wait`] always come back.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};
use lixto_core::to_xml;
use lixto_elog::eval::ExtractionResult;
use lixto_elog::{ExecProbe, Extractor, WebSource};
use lixto_obs::{debug_event, error_event, warn_event, Stage, StageTimes};
use lixto_transform::ChangeDetector;

use crate::cache::{content_address, fxhash64, CacheKey, CachedExtraction, CrawlRecord};
use crate::metrics::{MetricsSnapshot, ServerMetrics, LATENCY_BUCKETS};
use crate::registry::{RegisteredWrapper, WrapperRegistry};
use crate::store::{InstanceProvenance, Provenance, StoreConfig, TieredStore};

/// Where the document to wrap comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestSource {
    /// The client ships the page itself, served to the wrapper at `url`
    /// (the entry URL its `document(...)` atom fetches).
    Inline {
        /// Entry URL the page answers to.
        url: String,
        /// The page bytes.
        html: String,
    },
    /// The server fetches `url` from its configured [`WebSource`].
    Web {
        /// URL to fetch.
        url: String,
    },
}

impl RequestSource {
    fn url(&self) -> &str {
        match self {
            RequestSource::Inline { url, .. } | RequestSource::Web { url } => url,
        }
    }
}

/// One extraction request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractionRequest {
    /// Registered wrapper name.
    pub wrapper: String,
    /// Specific version, or `None` for the latest.
    pub version: Option<u32>,
    /// The document to wrap.
    pub source: RequestSource,
    /// Request trace id propagated from the gateway (batch items carry
    /// a `#i` suffix). `None` when tracing is disabled or the request
    /// was submitted in-process without a trace. Workers thread it into
    /// their structured log events, so a `worker_panic` line names the
    /// exact request to look up under `GET /debug/requests/{id}`.
    pub trace: Option<String>,
}

/// A completed extraction.
#[derive(Debug, Clone)]
pub struct ExtractionResponse {
    /// Wrapper name.
    pub wrapper: String,
    /// Version that executed.
    pub version: u32,
    /// The store key the result lives under — render it with
    /// [`provenance_key`](crate::store::provenance_key) to query
    /// `GET /provenance/{key}` later.
    pub key: CacheKey,
    /// The extraction result (shared with the cache).
    pub result: Arc<CachedExtraction>,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// End-to-end latency, enqueue to completion.
    pub latency: Duration,
    /// Per-stage wall times the worker measured for this request
    /// (queue wait, fetch, parse, cache lookup, plan execution, XML
    /// serialization). Stages that did not run — e.g. `exec` on a cache
    /// hit — are untouched. The gateway folds these into its span
    /// records and the pool records them into the per-stage histograms.
    pub stages: StageTimes,
}

impl ExtractionResponse {
    /// The serialized output XML document.
    pub fn xml(&self) -> &str {
        &self.result.xml
    }

    /// The underlying extraction result.
    pub fn extraction(&self) -> &ExtractionResult {
        &self.result.result
    }
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// No wrapper registered under this name.
    UnknownWrapper(String),
    /// The name exists but not this version.
    UnknownVersion {
        /// Wrapper name.
        wrapper: String,
        /// Requested version.
        version: u32,
    },
    /// A `Web` source URL the server's [`WebSource`] cannot fetch.
    FetchFailed(String),
    /// `try_submit` found the target shard queue full.
    Backpressure,
    /// The server is shutting down; no new work is accepted.
    ShuttingDown,
    /// The worker executing the job disappeared before replying.
    Canceled,
    /// The job panicked inside the worker; the panic was contained and
    /// the worker keeps serving.
    Internal(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::UnknownWrapper(name) => write!(f, "unknown wrapper {name:?}"),
            ServerError::UnknownVersion { wrapper, version } => {
                write!(f, "wrapper {wrapper:?} has no version {version}")
            }
            ServerError::FetchFailed(url) => write!(f, "failed to fetch {url:?}"),
            ServerError::Backpressure => f.write_str("shard queue full"),
            ServerError::ShuttingDown => f.write_str("server is shutting down"),
            ServerError::Canceled => f.write_str("job canceled"),
            ServerError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

/// Sizing knobs for [`ExtractionServer::start`].
///
/// Every field has a working default ([`ServerConfig::default`]); zero
/// values are clamped up to 1 at start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Number of shard queues. Requests hash to a shard by wrapper name
    /// plus source identity, so repeated work for the same (wrapper,
    /// document) lands on the same queue. Default 4.
    pub shards: usize,
    /// Worker threads per shard (sharing the shard's queue). Total
    /// worker count is `shards * workers_per_shard`. Default 1.
    pub workers_per_shard: usize,
    /// Bounded capacity of each shard queue — the backpressure limit:
    /// `submit` blocks and `try_submit` rejects past it. Default 64.
    pub queue_capacity: usize,
    /// Hot-tier (in-memory result cache) capacity in entries. Default
    /// 256.
    pub cache_capacity: usize,
    /// Durable result store configuration. `None` (the default) runs
    /// memory-only — exactly the pre-persistence behavior. `Some`
    /// backs the hot tier with the append-only disk tier at
    /// [`StoreConfig::dir`], so a restarted server serves
    /// previously-cached extractions without re-executing any plan. If
    /// the directory cannot be opened the server logs the error to
    /// stderr and falls back to memory-only rather than refusing to
    /// start.
    pub store: Option<StoreConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            workers_per_shard: 1,
            queue_capacity: 64,
            cache_capacity: 256,
            store: None,
        }
    }
}

/// Handle on an in-flight job; redeem with [`JobTicket::wait`].
pub struct JobTicket {
    reply: Receiver<Result<ExtractionResponse, ServerError>>,
}

impl std::fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JobTicket")
    }
}

impl JobTicket {
    /// Block until the job completes. Never hangs past the job's fate:
    /// if the job is dropped unprocessed (worker death, queue teardown),
    /// the reply channel disconnects and this returns
    /// [`ServerError::Canceled`].
    pub fn wait(self) -> Result<ExtractionResponse, ServerError> {
        self.reply.recv().unwrap_or(Err(ServerError::Canceled))
    }

    /// Non-blocking redemption for event-driven frontends: `Some` once
    /// the job has resolved (its real outcome, or
    /// [`ServerError::Canceled`] if it was destroyed unprocessed),
    /// `None` while it is still in flight. After a completion
    /// notification fired (see
    /// [`ExtractionServer::try_submit_with_notify`]) this is guaranteed
    /// to return `Some`.
    pub fn try_take(&mut self) -> Option<Result<ExtractionResponse, ServerError>> {
        match self.reply.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(ServerError::Canceled)),
        }
    }
}

/// Fires its callback exactly once, on drop. Declared as the *last*
/// field of [`Job`], so by the time the callback runs the job's reply
/// sender has already been dropped (fields drop in declaration order):
/// whether the worker sent a real outcome or the job was destroyed
/// unprocessed, [`JobTicket::try_take`] observes the resolution — never
/// an empty channel — from inside or after the callback.
struct CompletionNotice(Option<Box<dyn FnOnce() + Send>>);

impl CompletionNotice {
    /// Disarm without firing (the submission failed, so the caller never
    /// received a ticket to redeem).
    fn defuse(&mut self) {
        self.0 = None;
    }
}

impl Drop for CompletionNotice {
    fn drop(&mut self) {
        if let Some(notify) = self.0.take() {
            notify();
        }
    }
}

struct Job {
    request: ExtractionRequest,
    wrapper: Arc<RegisteredWrapper>,
    /// Content address of an `Inline` document, computed once at submit
    /// (it doubles as the shard key); `Web` documents are addressed
    /// after the fetch, in the worker.
    content: Option<u64>,
    submitted_at: Instant,
    reply: Sender<Result<ExtractionResponse, ServerError>>,
    /// Completion callback; must stay the last field (see
    /// [`CompletionNotice`] for the drop-order contract).
    notify: CompletionNotice,
}

/// Joint fate of a shutdown: how the pool wound down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Worker threads joined by *this* call (a second, idempotent call
    /// finds none left).
    pub workers_joined: usize,
    /// Jobs completed over the server's lifetime (including drained
    /// queue remainders).
    pub jobs_completed: u64,
}

/// A cheap, copyable sample of the pool's live counters for periodic
/// monitoring — see [`ExtractionServer::sample`]. Counters are
/// cumulative since server start; `queue_depth` and the quantiles are
/// instantaneous.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolSample {
    /// Requests accepted into a shard queue.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests completed with an error.
    pub errors: u64,
    /// Requests rejected by backpressure.
    pub rejected: u64,
    /// Jobs currently queued, summed over shards.
    pub queue_depth: u64,
    /// Total queue slots (shards × per-shard capacity).
    pub queue_capacity: u64,
    /// 99th-percentile end-to-end latency in µs (cumulative histogram).
    pub latency_p99_us: u64,
    /// 99th-percentile plan-execution latency in µs (cumulative).
    pub exec_p99_us: u64,
    /// Raw `exec`-stage histogram bucket counters (cumulative).
    /// Diffing two samples' buckets gives the latency distribution of
    /// just the executions between them — the gateway's watchdog uses
    /// this for *windowed* p99s with working hysteresis, which the
    /// since-start `exec_p99_us` cannot provide.
    pub exec_buckets: [u64; LATENCY_BUCKETS],
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Durable-store writes that failed.
    pub store_write_errors: u64,
}

/// Per-(wrapper, url) change detection for `Web`-sourced requests: when
/// the fetched body differs from the last one seen, the previous cache
/// entry is proactively invalidated. The detector is fed the word-sized
/// content address rather than the body itself, so each tracker costs a
/// few dozen bytes, not a page.
struct SourceTracker {
    detector: ChangeDetector,
    last_key: Option<CacheKey>,
    /// Segment-clock value of the last touch, for oldest-first eviction.
    last_used: u64,
}

/// Cap on tracked (wrapper, url) pairs, split evenly across segments.
/// Past a segment's share, its coldest tracker is evicted — losing only
/// the *proactive* invalidation of that one stale entry (content
/// addressing keeps results correct regardless), never growing without
/// bound under per-query URLs.
const MAX_TRACKED_SOURCES: usize = 4096;

/// Segment count for [`SourceTrackers`]. Like the result cache's
/// segments, this bounds lock contention: `Web`-sourced requests for
/// different (wrapper, url) pairs take different locks.
const SOURCE_SEGMENTS: usize = 8;

/// Change trackers for `Web` sources, sharded into fxhash-picked
/// segments so concurrent workers touching different sources never
/// serialize on one global lock (the result cache plays the same trick).
struct SourceTrackers {
    segments: Vec<Mutex<TrackerSegment>>,
    /// Per-segment tracker cap; the coldest entry is evicted past it.
    segment_capacity: usize,
}

#[derive(Default)]
struct TrackerSegment {
    map: HashMap<(String, String), SourceTracker>,
    /// Recency counter: bumped per touch, stamped into `last_used`.
    clock: u64,
}

impl SourceTrackers {
    fn new() -> SourceTrackers {
        SourceTrackers::with_limits(SOURCE_SEGMENTS, MAX_TRACKED_SOURCES / SOURCE_SEGMENTS)
    }

    /// Test constructor: explicit segment count and per-segment cap.
    fn with_limits(segments: usize, segment_capacity: usize) -> SourceTrackers {
        SourceTrackers {
            segments: (0..segments.max(1))
                .map(|_| Mutex::new(TrackerSegment::default()))
                .collect(),
            segment_capacity: segment_capacity.max(1),
        }
    }

    /// Which segment a (wrapper, url) pair lives in.
    fn segment_index(&self, wrapper: &str, url: &str) -> usize {
        let mut h = fxhash64(wrapper.as_bytes()).rotate_left(1) ^ fxhash64(url.as_bytes());
        // Murmur finalizer: spread the hash across the high bits so the
        // modulo below sees all of them.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h as usize) % self.segments.len()
    }

    /// Record an observation of `key` for (wrapper, url). Returns the
    /// previous cache key iff the content address changed — the stale
    /// entry the caller should invalidate. One segment lock, one map
    /// lookup, one key allocation (the `entry` call), no formatting.
    fn observe(&self, wrapper: &str, url: &str, key: &CacheKey) -> Option<CacheKey> {
        let capacity = self.segment_capacity;
        let mut seg = self.segments[self.segment_index(wrapper, url)]
            .lock()
            .expect("sources poisoned");
        seg.clock += 1;
        let clock = seg.clock;
        let tracker = seg
            .map
            .entry((wrapper.to_string(), url.to_string()))
            .or_insert_with(|| SourceTracker {
                detector: ChangeDetector::default(),
                last_key: None,
                last_used: 0,
            });
        tracker.last_used = clock;
        let mut stale = None;
        if tracker.detector.changed_u64(key.content) {
            if let Some(old) = tracker.last_key.take() {
                if old != *key {
                    stale = Some(old);
                }
            }
        }
        tracker.last_key = Some(key.clone());
        if seg.map.len() > capacity {
            // Oldest-first eviction, skipping the entry just touched:
            // one cold tracker goes, the hot set survives.
            if let Some(oldest) = seg
                .map
                .iter()
                .filter(|(_, t)| t.last_used != clock)
                .min_by_key(|(_, t)| t.last_used)
                .map(|(k, _)| k.clone())
            {
                seg.map.remove(&oldest);
            }
        }
        stale
    }

    /// Hold a segment's lock for the duration of `f` — lets tests prove
    /// a jammed segment cannot block observations landing elsewhere.
    #[cfg(test)]
    fn with_segment_locked<R>(&self, wrapper: &str, url: &str, f: impl FnOnce() -> R) -> R {
        let _guard = self.segments[self.segment_index(wrapper, url)]
            .lock()
            .expect("sources poisoned");
        f()
    }

    #[cfg(test)]
    fn tracked(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.lock().expect("sources poisoned").map.len())
            .sum()
    }
}

struct Shared {
    registry: Arc<WrapperRegistry>,
    store: TieredStore,
    metrics: ServerMetrics,
    web: Arc<dyn WebSource + Send + Sync>,
    sources: SourceTrackers,
}

/// The wrapper-execution service.
///
/// The pool is safe to share behind an `Arc` (the HTTP gateway does):
/// submission takes `&self`, and
/// [`initiate_shutdown`](ExtractionServer::initiate_shutdown) drains and joins
/// the pool through a shared reference. The by-value
/// [`shutdown`](ExtractionServer::shutdown) remains for exclusive owners.
pub struct ExtractionServer {
    shared: Arc<Shared>,
    config: ServerConfig,
    /// Shard queue senders; emptied (dropping every sender, which
    /// disconnects the workers once drained) when shutdown begins.
    queues: RwLock<Vec<Sender<Job>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A `Web` entry page pinned to the body the server fetched (and
/// hashed), with every other URL — crawl targets — falling through to
/// the live web.
struct PinnedPage<'a> {
    url: &'a str,
    html: &'a str,
    rest: Option<&'a (dyn WebSource + Send + Sync)>,
}

impl WebSource for PinnedPage<'_> {
    fn fetch(&self, url: &str) -> Option<String> {
        if url == self.url {
            Some(self.html.to_string())
        } else {
            self.rest.and_then(|w| w.fetch(url))
        }
    }
}

/// Wraps the page source handed to the Extractor and records every fetch
/// beyond the entry URL as a [`CrawlRecord`] — the crawl manifest the
/// cache revalidates before serving this result again.
struct RecordingWeb<'a> {
    inner: &'a dyn WebSource,
    entry: &'a str,
    fetched: RefCell<Vec<CrawlRecord>>,
}

impl WebSource for RecordingWeb<'_> {
    fn fetch(&self, url: &str) -> Option<String> {
        let body = self.inner.fetch(url);
        if url != self.entry {
            let mut fetched = self.fetched.borrow_mut();
            if !fetched.iter().any(|r| r.url == url) {
                fetched.push(CrawlRecord {
                    url: url.to_string(),
                    content: body.as_deref().map(|b| fxhash64(b.as_bytes())),
                });
            }
        }
        body
    }
}

/// True when every page in the crawl manifest still fetches to the body
/// hash (or the same 404) recorded at extraction time.
fn crawl_current(crawl: &[CrawlRecord], web: Option<&(dyn WebSource + Send + Sync)>) -> bool {
    crawl.iter().all(|record| {
        let now = web
            .and_then(|w| w.fetch(&record.url))
            .map(|body| fxhash64(body.as_bytes()));
        now == record.content
    })
}

impl ExtractionServer {
    /// Spawn the worker pool and start serving.
    pub fn start(
        config: ServerConfig,
        registry: Arc<WrapperRegistry>,
        web: Arc<dyn WebSource + Send + Sync>,
    ) -> ExtractionServer {
        let config = ServerConfig {
            shards: config.shards.max(1),
            workers_per_shard: config.workers_per_shard.max(1),
            queue_capacity: config.queue_capacity.max(1),
            cache_capacity: config.cache_capacity.max(1),
            store: config.store,
        };
        let store = match &config.store {
            Some(store_config) => TieredStore::open(config.cache_capacity, store_config)
                .unwrap_or_else(|e| {
                    warn_event!(
                        "store_open_failed",
                        "dir" => store_config.dir.display().to_string(),
                        "error" => e.to_string(),
                        "fallback" => "memory-only",
                    );
                    TieredStore::memory(config.cache_capacity)
                }),
            None => TieredStore::memory(config.cache_capacity),
        };
        let shared = Arc::new(Shared {
            registry,
            store,
            metrics: ServerMetrics::new(),
            web,
            sources: SourceTrackers::new(),
        });
        let mut queues = Vec::with_capacity(config.shards);
        let mut workers = Vec::new();
        for shard in 0..config.shards {
            let (tx, rx) = bounded::<Job>(config.queue_capacity);
            queues.push(tx);
            for worker in 0..config.workers_per_shard {
                let rx = rx.clone();
                let shared = shared.clone();
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("lixto-worker-{shard}.{worker}"))
                        .spawn(move || worker_loop(rx, shared))
                        .expect("spawn worker"),
                );
            }
        }
        ExtractionServer {
            shared,
            config,
            queues: RwLock::new(queues),
            workers: Mutex::new(workers),
        }
    }

    /// The registry this server executes from (register new wrappers or
    /// versions at any time — running jobs are unaffected).
    pub fn registry(&self) -> &Arc<WrapperRegistry> {
        &self.shared.registry
    }

    /// The effective (clamped) configuration the pool was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    fn resolve(&self, request: &ExtractionRequest) -> Result<Arc<RegisteredWrapper>, ServerError> {
        match request.version {
            None => self
                .shared
                .registry
                .latest(&request.wrapper)
                .ok_or_else(|| ServerError::UnknownWrapper(request.wrapper.clone())),
            Some(v) => self
                .shared
                .registry
                .version(&request.wrapper, v)
                .ok_or_else(|| {
                    if self.shared.registry.latest(&request.wrapper).is_none() {
                        ServerError::UnknownWrapper(request.wrapper.clone())
                    } else {
                        ServerError::UnknownVersion {
                            wrapper: request.wrapper.clone(),
                            version: v,
                        }
                    }
                }),
        }
    }

    fn make_job(
        request: ExtractionRequest,
        wrapper: Arc<RegisteredWrapper>,
        shards: usize,
        notify: Option<Box<dyn FnOnce() + Send>>,
    ) -> (usize, Job, JobTicket) {
        // Shard by wrapper name + source identity, so repeated work for
        // the same (wrapper, document) lands on the same queue. For
        // inline documents the source key *is* the content address, which
        // the worker then reuses as the cache key — the document is
        // hashed exactly once.
        let (content, source_key) = match &request.source {
            RequestSource::Inline { url, html } => {
                let address = content_address(url, html);
                (Some(address), address)
            }
            RequestSource::Web { url } => (None, fxhash64(url.as_bytes())),
        };
        let shard = ((fxhash64(request.wrapper.as_bytes()).rotate_left(1) ^ source_key)
            % shards as u64) as usize;
        let (tx, rx) = bounded(1);
        (
            shard,
            Job {
                request,
                wrapper,
                content,
                submitted_at: Instant::now(),
                reply: tx,
                notify: CompletionNotice(notify),
            },
            JobTicket { reply: rx },
        )
    }

    /// Enqueue a request, blocking while the target shard queue is full
    /// (producer-side backpressure).
    pub fn submit(&self, request: ExtractionRequest) -> Result<JobTicket, ServerError> {
        let wrapper = self.resolve(&request)?;
        let queues = self.queues.read().expect("queues poisoned");
        if queues.is_empty() {
            return Err(ServerError::ShuttingDown);
        }
        let (shard, job, ticket) = Self::make_job(request, wrapper, queues.len(), None);
        queues[shard]
            .send(job)
            .map_err(|_| ServerError::ShuttingDown)?;
        self.shared
            .metrics
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        Ok(ticket)
    }

    /// Enqueue a request without blocking; a full shard queue is
    /// reported as [`ServerError::Backpressure`].
    pub fn try_submit(&self, request: ExtractionRequest) -> Result<JobTicket, ServerError> {
        self.try_submit_inner(request, None)
    }

    /// Like [`try_submit`](ExtractionServer::try_submit), with a
    /// completion callback for event-driven frontends that cannot block
    /// in [`JobTicket::wait`]: `notify` runs exactly once, as soon as
    /// the returned ticket is redeemable without blocking —
    /// [`JobTicket::try_take`] is guaranteed to return `Some` from that
    /// point on. It fires on the worker thread after the job completes,
    /// or wherever an unprocessed job is destroyed (queue teardown
    /// during shutdown), so keep it small and non-blocking — typically
    /// "push a token and wake an event loop". When submission itself
    /// fails (backpressure, shutdown, unknown wrapper) no ticket exists
    /// and `notify` never runs.
    pub fn try_submit_with_notify(
        &self,
        request: ExtractionRequest,
        notify: Box<dyn FnOnce() + Send>,
    ) -> Result<JobTicket, ServerError> {
        self.try_submit_inner(request, Some(notify))
    }

    fn try_submit_inner(
        &self,
        request: ExtractionRequest,
        notify: Option<Box<dyn FnOnce() + Send>>,
    ) -> Result<JobTicket, ServerError> {
        let wrapper = self.resolve(&request)?;
        let queues = self.queues.read().expect("queues poisoned");
        if queues.is_empty() {
            return Err(ServerError::ShuttingDown);
        }
        let (shard, job, ticket) = Self::make_job(request, wrapper, queues.len(), notify);
        match queues[shard].try_send(job) {
            Ok(()) => {
                self.shared
                    .metrics
                    .submitted
                    .fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            Err(TrySendError::Full(mut job)) => {
                // The caller gets an error, not a ticket: the callback
                // must not fire for a submission that never happened.
                job.notify.defuse();
                self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServerError::Backpressure)
            }
            Err(TrySendError::Disconnected(mut job)) => {
                job.notify.defuse();
                Err(ServerError::ShuttingDown)
            }
        }
    }

    /// Submit and wait: the synchronous client call.
    pub fn execute(&self, request: ExtractionRequest) -> Result<ExtractionResponse, ServerError> {
        self.submit(request)?.wait()
    }

    /// A point-in-time view of throughput, latency, queues and cache.
    pub fn metrics(&self) -> MetricsSnapshot {
        let queue_depths = {
            let queues = self.queues.read().expect("queues poisoned");
            if queues.is_empty() {
                vec![0; self.config.shards]
            } else {
                queues.iter().map(|q| q.len()).collect()
            }
        };
        MetricsSnapshot::collect(
            &self.shared.metrics,
            queue_depths,
            self.workers.lock().expect("workers poisoned").len(),
            self.shared.store.cache_stats(),
            self.shared.store.store_stats(),
        )
    }

    /// A cheap point-in-time sample of the pool's counters for periodic
    /// monitoring: raw totals, queue occupancy and two latency
    /// quantiles, with none of the per-stage summary allocation
    /// [`metrics`](ExtractionServer::metrics) performs. This is the
    /// sampler hook the gateway's metrics-history thread calls once per
    /// tick.
    pub fn sample(&self) -> PoolSample {
        let queue_depth = {
            let queues = self.queues.read().expect("queues poisoned");
            queues.iter().map(|q| q.len() as u64).sum()
        };
        let metrics = &self.shared.metrics;
        let cache = self.shared.store.cache_stats();
        let store = self.shared.store.store_stats();
        PoolSample {
            submitted: metrics.submitted.load(Ordering::Relaxed),
            completed: metrics.completed.load(Ordering::Relaxed),
            errors: metrics.errors.load(Ordering::Relaxed),
            rejected: metrics.rejected.load(Ordering::Relaxed),
            queue_depth,
            queue_capacity: (self.config.shards * self.config.queue_capacity) as u64,
            latency_p99_us: metrics.latency.quantile_us(0.99).unwrap_or(0),
            exec_p99_us: metrics
                .stages
                .get(Stage::PlanExec)
                .quantile_us(0.99)
                .unwrap_or(0),
            exec_buckets: metrics.stages.get(Stage::PlanExec).buckets(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            store_write_errors: store.write_errors,
        }
    }

    /// The stored entry — result, XML and provenance — for `key`, from
    /// either tier of the result store, without counting a hit or miss.
    /// This backs the gateway's `GET /provenance/{key}` endpoint.
    pub fn provenance(&self, key: &CacheKey) -> Option<Arc<CachedExtraction>> {
        self.shared.store.lookup(key)
    }

    /// Rewrite the store's disk snapshot and truncate its WAL now; a
    /// no-op for a memory-only server.
    pub fn compact_store(&self) {
        self.shared.store.compact();
    }

    /// Graceful shutdown through a shared handle (e.g. an
    /// `Arc<ExtractionServer>` a frontend also holds), in strict drain
    /// order:
    ///
    /// 1. intake stops — the shard senders are dropped, so `submit` /
    ///    `try_submit` return [`ServerError::ShuttingDown`] from now on;
    /// 2. workers drain everything already queued, answering every
    ///    outstanding [`JobTicket`];
    /// 3. the worker threads are joined.
    ///
    /// Handler threads blocked in [`JobTicket::wait`] therefore always
    /// resolve: drained jobs get their real result, and a job destroyed
    /// unprocessed resolves to [`ServerError::Canceled`] when its reply
    /// sender is dropped — never a hang. The call is idempotent; a
    /// concurrent or repeated call joins whatever threads remain.
    pub fn initiate_shutdown(&self) -> ShutdownReport {
        // Step 1: stop intake. Blocking `submit` calls hold the read
        // lock while waiting for queue room, so this write acquisition
        // also orders shutdown after any in-progress enqueue — those
        // jobs are part of the drain, not lost.
        self.queues.write().expect("queues poisoned").clear();
        // Steps 2+3: workers drain their disconnected queues, then exit.
        let workers = std::mem::take(&mut *self.workers.lock().expect("workers poisoned"));
        let workers_joined = workers.len();
        for handle in workers {
            let _ = handle.join();
        }
        ShutdownReport {
            workers_joined,
            jobs_completed: self.shared.metrics.completed.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown for an exclusive owner: consumes the server so
    /// further use is a compile error. Equivalent to
    /// [`initiate_shutdown`](ExtractionServer::initiate_shutdown).
    pub fn shutdown(self) -> ShutdownReport {
        self.initiate_shutdown()
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

fn worker_loop(rx: Receiver<Job>, shared: Arc<Shared>) {
    while let Ok(job) = rx.recv() {
        // A panicking wrapper (or web source) must not take the worker
        // down — that would strand every job queued behind it. Contain
        // it and answer the ticket with an error instead.
        let outcome =
            catch_unwind(AssertUnwindSafe(|| process(&job, &shared))).unwrap_or_else(|payload| {
                let message = panic_message(payload);
                error_event!(
                    "worker_panic",
                    "request_id" => job.request.trace.as_deref().unwrap_or(""),
                    "wrapper" => &job.request.wrapper,
                    "url" => job.request.source.url(),
                    "error" => &message,
                );
                Err(ServerError::Internal(message))
            });
        match &outcome {
            Ok(response) => {
                shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
                shared.metrics.stages.record(&response.stages);
                debug_event!(
                    "job_done",
                    "request_id" => job.request.trace.as_deref().unwrap_or(""),
                    "wrapper" => &response.wrapper,
                    "version" => response.version,
                    "cache_hit" => response.cache_hit,
                    "latency_us" => job.submitted_at.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                );
            }
            Err(_) => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            }
        };
        shared.metrics.latency.record(job.submitted_at.elapsed());
        // The client may have dropped its ticket; that is its business.
        let _ = job.reply.send(outcome);
    }
}

fn process(job: &Job, shared: &Shared) -> Result<ExtractionResponse, ServerError> {
    let spec = &job.wrapper.spec;
    let url = job.request.source.url();
    let mut stages = StageTimes::new();
    stages.add(Stage::QueueWait, job.submitted_at.elapsed());
    let (html, from_web) = match &job.request.source {
        RequestSource::Inline { html, .. } => (html.clone(), false),
        RequestSource::Web { url } => {
            let fetch_started = Instant::now();
            let body = shared.web.fetch(url);
            stages.add(Stage::Fetch, fetch_started.elapsed());
            (
                body.ok_or_else(|| ServerError::FetchFailed(url.clone()))?,
                true,
            )
        }
    };
    let key = CacheKey {
        wrapper: job.wrapper.name.clone(),
        plan: job.wrapper.plan_id,
        content: job.content.unwrap_or_else(|| content_address(url, &html)),
    };
    if from_web {
        // Change detection over the live source: a changed body drops
        // the stale entry instead of leaving it to age out of the LRU.
        if let Some(stale) = shared.sources.observe(&job.wrapper.name, url, &key) {
            shared.store.invalidate(&stale);
        }
    }
    // Crawl targets resolve against the live web for `Web` requests; an
    // `Inline` request is self-contained (the client shipped one page).
    let crawl_web = from_web.then_some(shared.web.as_ref());
    // A candidate only counts as a hit once its crawl manifest
    // revalidates — the entry page being unchanged is not enough for a
    // wrapper that crawled beyond it. A manifest recorded with the
    // other fetch capability (live vs. self-contained) cannot be judged
    // here: recompute, but leave the entry alone — it is still valid
    // for requests of its own kind.
    let cache_started = Instant::now();
    if let Some(cached) = shared.store.peek(&key) {
        if cached.crawl.is_empty() || cached.crawl_live == from_web {
            if crawl_current(&cached.crawl, crawl_web) {
                shared.store.record_hit();
                stages.add(Stage::CacheLookup, cache_started.elapsed());
                return Ok(ExtractionResponse {
                    wrapper: job.wrapper.name.clone(),
                    version: job.wrapper.version,
                    key,
                    result: cached,
                    cache_hit: true,
                    latency: job.submitted_at.elapsed(),
                    stages,
                });
            }
            shared.store.invalidate(&key);
        }
        shared.store.record_miss();
    } else {
        shared.store.record_miss();
    }
    stages.add(Stage::CacheLookup, cache_started.elapsed());
    let page = PinnedPage {
        url,
        html: &html,
        rest: crawl_web,
    };
    let recorder = RecordingWeb {
        inner: &page,
        entry: url,
        fetched: RefCell::new(Vec::new()),
    };
    // The compile-once fast path: execute the optimized plan shared by
    // every job of this wrapper version — no AST clone, no per-request
    // regex compilation (concepts are baked into the plan), rule
    // schedule / fused path automata / hoist memo applied. The probe
    // feeds this version's per-rule counters and splits out the
    // fetch/parse time spent inside the run.
    let probe = ExecProbe::new(Some(job.wrapper.telemetry.clone()));
    let exec_started = Instant::now();
    let result = Extractor::from_optimized(spec.optimized.clone(), &recorder)
        .with_options(spec.options.clone())
        .with_probe(&probe)
        .run();
    stages.add(Stage::PlanExec, exec_started.elapsed());
    stages.add_ns(Stage::Parse, probe.parse_ns());
    stages.add_ns(Stage::Fetch, probe.fetch_ns());
    let serialize_started = Instant::now();
    let xml = lixto_xml::to_string(&to_xml(&result, &spec.design));
    stages.add(Stage::Serialize, serialize_started.elapsed());
    // Record the derivation beside the result: which rule produced each
    // instance (index-parallel to the base), from which page.
    let instances = result
        .base
        .instances
        .iter()
        .enumerate()
        .map(|(i, inst)| InstanceProvenance {
            pattern: inst.pattern.to_string(),
            parent: inst.parent,
            rule: result.producing_rule(i),
            text: result.base.text_of(i, &result.docs),
        })
        .collect();
    let provenance = Provenance {
        wrapper: job.wrapper.name.clone(),
        version: job.wrapper.version,
        plan: job.wrapper.plan_id,
        source_url: url.to_string(),
        source_hash: fxhash64(html.as_bytes()),
        instances,
    };
    let value = Arc::new(CachedExtraction {
        result,
        xml,
        crawl: recorder.fetched.into_inner(),
        crawl_live: from_web,
        provenance,
    });
    shared.store.insert(key.clone(), value.clone());
    Ok(ExtractionResponse {
        wrapper: job.wrapper.name.clone(),
        version: job.wrapper.version,
        key,
        result: value,
        cache_hit: false,
        latency: job.submitted_at.elapsed(),
        stages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_core::XmlDesign;
    use lixto_elog::StaticWeb;

    const WRAPPER: &str = r#"
        offer(S, X) :- document("http://shop/", S), subelem(S, (?.li, []), X).
        name(S, X)  :- offer(_, S), subelem(S, (.b, []), X).
    "#;

    fn page(items: &[&str]) -> String {
        let mut h = String::from("<html><body><ul>");
        for it in items {
            h.push_str(&format!("<li><b>{it}</b></li>"));
        }
        h.push_str("</ul></body></html>");
        h
    }

    fn server_with(web: Arc<dyn WebSource + Send + Sync>) -> ExtractionServer {
        let registry = Arc::new(WrapperRegistry::new());
        registry
            .register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
            .unwrap();
        ExtractionServer::start(ServerConfig::default(), registry, web)
    }

    fn inline_req(items: &[&str]) -> ExtractionRequest {
        ExtractionRequest {
            trace: None,
            wrapper: "shop".into(),
            version: None,
            source: RequestSource::Inline {
                url: "http://shop/".into(),
                html: page(items),
            },
        }
    }

    #[test]
    fn executes_inline_request_and_caches_repeats() {
        let server = server_with(Arc::new(StaticWeb::new()));
        let first = server
            .execute(inline_req(&["espresso", "grinder"]))
            .unwrap();
        assert!(!first.cache_hit);
        assert!(first.xml().contains("espresso"));
        assert_eq!(first.version, 1);
        let second = server
            .execute(inline_req(&["espresso", "grinder"]))
            .unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.xml(), second.xml());
        assert_eq!(first.extraction(), second.extraction());
        let snap = server.metrics();
        assert_eq!(snap.completed, 2);
        assert!(snap.cache.hits >= 1);
        let report = server.shutdown();
        assert_eq!(report.workers_joined, 4);
        assert_eq!(report.jobs_completed, 2);
    }

    #[test]
    fn same_bytes_at_different_url_do_not_share_cache_entries() {
        let server = server_with(Arc::new(StaticWeb::new()));
        let html = page(&["only-offer"]);
        let at_entry = server
            .execute(ExtractionRequest {
                trace: None,
                wrapper: "shop".into(),
                version: None,
                source: RequestSource::Inline {
                    url: "http://shop/".into(),
                    html: html.clone(),
                },
            })
            .unwrap();
        assert!(at_entry.xml().contains("only-offer"));
        // Same bytes served at a URL the wrapper's entry atom does not
        // match: a different document, so no cache hit and an empty
        // extraction — not the first request's result.
        let elsewhere = server
            .execute(ExtractionRequest {
                trace: None,
                wrapper: "shop".into(),
                version: None,
                source: RequestSource::Inline {
                    url: "http://elsewhere/".into(),
                    html,
                },
            })
            .unwrap();
        assert!(!elsewhere.cache_hit);
        assert!(!elsewhere.xml().contains("only-offer"));
        server.shutdown();
    }

    #[test]
    fn unknown_wrapper_and_version_error_fast() {
        let server = server_with(Arc::new(StaticWeb::new()));
        assert_eq!(
            server
                .execute(ExtractionRequest {
                    trace: None,
                    wrapper: "nope".into(),
                    version: None,
                    source: RequestSource::Web { url: "u".into() },
                })
                .unwrap_err(),
            ServerError::UnknownWrapper("nope".into())
        );
        assert_eq!(
            server
                .execute(ExtractionRequest {
                    trace: None,
                    wrapper: "shop".into(),
                    version: Some(9),
                    source: RequestSource::Web { url: "u".into() },
                })
                .unwrap_err(),
            ServerError::UnknownVersion {
                wrapper: "shop".into(),
                version: 9
            }
        );
        server.shutdown();
    }

    #[test]
    fn web_source_fetches_and_change_invalidates() {
        // A mutable web page: first two requests see body A (one miss,
        // one hit), then the page changes and the stale entry must be
        // invalidated, not merely missed.
        struct MutableWeb {
            body: Mutex<String>,
        }
        impl WebSource for MutableWeb {
            fn fetch(&self, url: &str) -> Option<String> {
                (url == "http://shop/").then(|| self.body.lock().unwrap().clone())
            }
        }
        let web = Arc::new(MutableWeb {
            body: Mutex::new(page(&["first"])),
        });
        let server = server_with(web.clone());
        let req = ExtractionRequest {
            trace: None,
            wrapper: "shop".into(),
            version: None,
            source: RequestSource::Web {
                url: "http://shop/".into(),
            },
        };
        let a1 = server.execute(req.clone()).unwrap();
        let a2 = server.execute(req.clone()).unwrap();
        assert!(!a1.cache_hit && a2.cache_hit);
        *web.body.lock().unwrap() = page(&["second"]);
        let b = server.execute(req.clone()).unwrap();
        assert!(!b.cache_hit);
        assert!(b.xml().contains("second"));
        let snap = server.metrics();
        assert_eq!(snap.cache.invalidations, 1);
        // 404s surface as FetchFailed.
        assert_eq!(
            server
                .execute(ExtractionRequest {
                    trace: None,
                    wrapper: "shop".into(),
                    version: None,
                    source: RequestSource::Web {
                        url: "http://gone/".into()
                    },
                })
                .unwrap_err(),
            ServerError::FetchFailed("http://gone/".into())
        );
        server.shutdown();
    }

    #[test]
    fn versions_execute_independently() {
        let server = server_with(Arc::new(StaticWeb::new()));
        server
            .registry()
            .register_source("shop", WRAPPER, XmlDesign::new().root("offers_v2"))
            .unwrap();
        let latest = server.execute(inline_req(&["x"])).unwrap();
        assert_eq!(latest.version, 2);
        assert!(latest.xml().starts_with("<offers_v2"));
        let mut pinned = inline_req(&["x"]);
        pinned.version = Some(1);
        let v1 = server.execute(pinned).unwrap();
        assert_eq!(v1.version, 1);
        assert!(v1.xml().starts_with("<offers"));
        assert!(!v1.cache_hit, "different versions must not share entries");
        server.shutdown();
    }

    #[test]
    fn submit_after_shutdown_not_possible_and_tickets_resolve() {
        let server = server_with(Arc::new(StaticWeb::new()));
        // In-flight tickets resolve before shutdown returns.
        let tickets: Vec<JobTicket> = (0..8)
            .map(|i| {
                server
                    .submit(inline_req(&["item", &format!("v{}", i % 2)]))
                    .unwrap()
            })
            .collect();
        let report = server.shutdown();
        assert_eq!(report.workers_joined, 4);
        assert_eq!(report.jobs_completed, 8);
        for t in tickets {
            assert!(t.wait().is_ok(), "queued jobs drain during shutdown");
        }
    }

    /// A wrapper that crawls from its entry page to a subpage via
    /// `attrbind` + `document(U)`.
    const CRAWLER: &str = r#"
        link(S, X)  :- document("http://start/", S), subelem(S, (?.a, []), X).
        page(S, X)  :- link(_, S), attrbind(S, href, U), document(U, X).
        para(S, X)  :- page(_, S), subelem(S, (?.p, []), X).
    "#;

    #[test]
    fn crawl_aware_cache_rejects_stale_subpages() {
        // Entry page unchanged, subpage mutated: the entry content
        // address still matches, so only crawl-manifest revalidation can
        // stop the stale result from being served.
        struct TwoPageWeb {
            sub_body: Mutex<String>,
        }
        impl WebSource for TwoPageWeb {
            fn fetch(&self, url: &str) -> Option<String> {
                match url {
                    "http://start/" => {
                        Some("<body><a href='http://sub/'>next</a></body>".to_string())
                    }
                    "http://sub/" => Some(self.sub_body.lock().unwrap().clone()),
                    _ => None,
                }
            }
        }
        let web = Arc::new(TwoPageWeb {
            sub_body: Mutex::new("<body><p>alpha</p></body>".to_string()),
        });
        let registry = Arc::new(WrapperRegistry::new());
        registry
            .register_source("crawler", CRAWLER, XmlDesign::new().root("pages"))
            .unwrap();
        let server = ExtractionServer::start(ServerConfig::default(), registry, web.clone());
        let req = ExtractionRequest {
            trace: None,
            wrapper: "crawler".into(),
            version: None,
            source: RequestSource::Web {
                url: "http://start/".into(),
            },
        };
        let first = server.execute(req.clone()).unwrap();
        assert!(!first.cache_hit);
        assert!(first.xml().contains("alpha"));
        assert_eq!(
            first.result.crawl.len(),
            1,
            "the subpage fetch must be recorded in the crawl manifest"
        );
        // Unchanged: a revalidated hit.
        let second = server.execute(req.clone()).unwrap();
        assert!(second.cache_hit);
        // Mutate only the subpage; the entry page (and so the cache key)
        // is untouched.
        *web.sub_body.lock().unwrap() = "<body><p>beta</p></body>".to_string();
        let third = server.execute(req.clone()).unwrap();
        assert!(!third.cache_hit, "stale subpage must not be served");
        assert!(third.xml().contains("beta"));
        let snap = server.metrics();
        assert!(snap.cache.invalidations >= 1);
        server.shutdown();
    }

    #[test]
    fn inline_requests_have_empty_crawl_manifest_for_single_page_wrappers() {
        let server = server_with(Arc::new(StaticWeb::new()));
        let response = server.execute(inline_req(&["x"])).unwrap();
        assert!(response.result.crawl.is_empty());
        server.shutdown();
    }

    #[test]
    fn single_page_wrappers_share_cache_across_inline_and_web_sources() {
        // For a non-crawling wrapper the manifest is empty, so an Inline
        // request and a Web fetch of the same document must share one
        // entry — and never invalidate each other.
        let html = page(&["shared"]);
        let mut web = StaticWeb::new();
        web.put("http://shop/", html.clone());
        let server = server_with(Arc::new(web));
        let web_req = ExtractionRequest {
            trace: None,
            wrapper: "shop".into(),
            version: None,
            source: RequestSource::Web {
                url: "http://shop/".into(),
            },
        };
        let inline = ExtractionRequest {
            trace: None,
            wrapper: "shop".into(),
            version: None,
            source: RequestSource::Inline {
                url: "http://shop/".into(),
                html,
            },
        };
        assert!(!server.execute(web_req.clone()).unwrap().cache_hit);
        assert!(server.execute(inline.clone()).unwrap().cache_hit);
        assert!(server.execute(web_req).unwrap().cache_hit);
        assert!(server.execute(inline).unwrap().cache_hit);
        let snap = server.metrics();
        assert_eq!(snap.cache.invalidations, 0);
        assert_eq!(snap.cache.misses, 1);
        server.shutdown();
    }

    #[test]
    fn shared_handle_shutdown_resolves_outstanding_tickets() {
        // The gateway scenario: the pool lives in an Arc, handler threads
        // hold JobTickets, and shutdown comes in through a *shared*
        // reference. Every wait() must resolve — Ok for drained jobs,
        // Canceled for destroyed ones — and never hang.
        let server = Arc::new(server_with(Arc::new(StaticWeb::new())));
        let mut holders = Vec::new();
        for i in 0..12 {
            let ticket = server
                .submit(inline_req(&["held", &format!("{i}")]))
                .unwrap();
            holders.push(std::thread::spawn(move || ticket.wait()));
        }
        let report = server.initiate_shutdown();
        assert_eq!(report.workers_joined, 4);
        for h in holders {
            let outcome = h.join().expect("holder thread panicked");
            assert!(
                matches!(outcome, Ok(_) | Err(ServerError::Canceled)),
                "ticket resolved to {outcome:?}, not a hang"
            );
        }
        // Intake is closed and the call is idempotent.
        assert_eq!(
            server.submit(inline_req(&["late"])).unwrap_err(),
            ServerError::ShuttingDown
        );
        assert_eq!(
            server.try_submit(inline_req(&["late"])).unwrap_err(),
            ServerError::ShuttingDown
        );
        let again = server.initiate_shutdown();
        assert_eq!(again.workers_joined, 0);
        // Metrics remain queryable after shutdown.
        let snap = server.metrics();
        assert_eq!(snap.queue_depths.len(), 4);
        assert_eq!(snap.workers, 0);
    }

    #[test]
    fn worker_contains_panics_as_internal_errors() {
        struct PanickyWeb;
        impl WebSource for PanickyWeb {
            fn fetch(&self, _url: &str) -> Option<String> {
                panic!("fetch exploded");
            }
        }
        let server = server_with(Arc::new(PanickyWeb));
        let err = server
            .execute(ExtractionRequest {
                trace: None,
                wrapper: "shop".into(),
                version: None,
                source: RequestSource::Web {
                    url: "http://shop/".into(),
                },
            })
            .unwrap_err();
        assert!(
            matches!(&err, ServerError::Internal(msg) if msg.contains("fetch exploded")),
            "got {err:?}"
        );
        // The worker survived the panic and keeps serving.
        let ok = server.execute(inline_req(&["still-alive"])).unwrap();
        assert!(ok.xml().contains("still-alive"));
        let snap = server.metrics();
        assert_eq!(snap.errors, 1);
        server.shutdown();
    }

    #[test]
    fn completion_notify_fires_once_and_ticket_is_redeemable() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::mpsc;

        let server = server_with(Arc::new(StaticWeb::new()));
        let fired = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        let counter = fired.clone();
        let mut ticket = server
            .try_submit_with_notify(
                inline_req(&["notified"]),
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    tx.send(()).unwrap();
                }),
            )
            .unwrap();
        rx.recv_timeout(Duration::from_secs(10))
            .expect("notify fired");
        // The contract: once notify ran, try_take never returns None.
        let outcome = ticket.try_take().expect("resolved after notify");
        assert!(outcome.unwrap().xml().contains("notified"));
        assert_eq!(fired.load(Ordering::SeqCst), 1, "exactly one firing");
        server.shutdown();
    }

    #[test]
    fn notify_fires_for_errored_jobs_and_is_defused_on_failed_submission() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::mpsc;

        // A worker-side error (panic containment) still notifies — the
        // frontend's parked connection must always be woken.
        struct PanickyWeb;
        impl WebSource for PanickyWeb {
            fn fetch(&self, _url: &str) -> Option<String> {
                panic!("fetch exploded");
            }
        }
        let server = server_with(Arc::new(PanickyWeb));
        let (tx, rx) = mpsc::channel();
        let mut ticket = server
            .try_submit_with_notify(
                ExtractionRequest {
                    trace: None,
                    wrapper: "shop".into(),
                    version: None,
                    source: RequestSource::Web {
                        url: "http://shop/".into(),
                    },
                },
                Box::new(move || tx.send(()).unwrap()),
            )
            .unwrap();
        rx.recv_timeout(Duration::from_secs(10))
            .expect("notify fired for errored job");
        assert!(matches!(
            ticket.try_take(),
            Some(Err(ServerError::Internal(_)))
        ));
        server.shutdown();

        // A submission that fails outright hands back an error, not a
        // ticket — so its callback must never run.
        struct BlockingWeb(Mutex<bool>, std::sync::Condvar);
        impl WebSource for BlockingWeb {
            fn fetch(&self, _url: &str) -> Option<String> {
                let mut open = self.0.lock().unwrap();
                while !*open {
                    open = self.1.wait(open).unwrap();
                }
                None
            }
        }
        let gate = Arc::new(BlockingWeb(Mutex::new(false), std::sync::Condvar::new()));
        let registry = Arc::new(WrapperRegistry::new());
        registry
            .register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
            .unwrap();
        let server = ExtractionServer::start(
            ServerConfig {
                shards: 1,
                workers_per_shard: 1,
                queue_capacity: 1,
                cache_capacity: 4,
                store: None,
            },
            registry,
            gate.clone(),
        );
        let web_req = || ExtractionRequest {
            trace: None,
            wrapper: "shop".into(),
            version: None,
            source: RequestSource::Web {
                url: "http://shop/".into(),
            },
        };
        // Wedge the worker and fill the one-slot queue...
        let occupant = server.submit(web_req()).unwrap();
        let queued = loop {
            match server.try_submit(web_req()) {
                Ok(t) => break t,
                Err(ServerError::Backpressure) => std::thread::sleep(Duration::from_millis(1)),
                Err(e) => panic!("unexpected {e:?}"),
            }
        };
        // ...so this submission is rejected; the callback must stay
        // silent forever.
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = fired.clone();
        assert_eq!(
            server
                .try_submit_with_notify(
                    web_req(),
                    Box::new(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    })
                )
                .unwrap_err(),
            ServerError::Backpressure
        );
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
        let _ = occupant.wait();
        let _ = queued.wait();
        server.shutdown();
        assert_eq!(
            fired.load(Ordering::SeqCst),
            0,
            "defused callback never fired, even through drop and shutdown"
        );
    }

    fn key_for(content: u64) -> CacheKey {
        CacheKey {
            wrapper: "w".into(),
            plan: 1,
            content,
        }
    }

    #[test]
    fn source_trackers_report_stale_key_only_on_change() {
        let trackers = SourceTrackers::new();
        // First sighting: a change, but nothing stale to invalidate.
        assert_eq!(trackers.observe("w", "http://a/", &key_for(10)), None);
        // Unchanged content: no change, nothing stale.
        assert_eq!(trackers.observe("w", "http://a/", &key_for(10)), None);
        // Changed content: the previous key comes back for invalidation.
        assert_eq!(
            trackers.observe("w", "http://a/", &key_for(11)),
            Some(key_for(10))
        );
        assert_eq!(trackers.observe("w", "http://a/", &key_for(11)), None);
        // An unrelated source does not disturb the first one's state.
        assert_eq!(trackers.observe("w", "http://b/", &key_for(11)), None);
        assert_eq!(
            trackers.observe("w", "http://a/", &key_for(12)),
            Some(key_for(11))
        );
    }

    #[test]
    fn source_trackers_evict_coldest_entry_not_everything() {
        // One segment, room for two trackers.
        let trackers = SourceTrackers::with_limits(1, 2);
        assert_eq!(trackers.observe("w", "http://cold/", &key_for(1)), None);
        assert_eq!(trackers.observe("w", "http://hot/", &key_for(2)), None);
        // Keep "hot" fresh, then overflow: "cold" must be the casualty.
        assert_eq!(trackers.observe("w", "http://hot/", &key_for(2)), None);
        assert_eq!(trackers.observe("w", "http://new/", &key_for(3)), None);
        assert_eq!(trackers.tracked(), 2);
        // "hot" survived with its detector state intact: re-observing
        // the same content is still not a change.
        assert_eq!(trackers.observe("w", "http://hot/", &key_for(2)), None);
        // "cold" was forgotten: it re-registers as a first sighting
        // rather than reporting key 1 as stale.
        assert_eq!(trackers.observe("w", "http://cold/", &key_for(9)), None);
    }

    #[test]
    fn source_trackers_jammed_segment_does_not_block_other_segments() {
        let trackers = Arc::new(SourceTrackers::with_limits(8, 64));
        // Find a URL that hashes to a different segment than the jammed
        // one — with 8 segments one exists within a handful of tries.
        let jammed_url = "http://jammed/";
        let jammed_seg = trackers.segment_index("w", jammed_url);
        let other_url = (0..64)
            .map(|i| format!("http://other-{i}/"))
            .find(|u| trackers.segment_index("w", u) != jammed_seg)
            .expect("some url lands in another segment");
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        trackers.with_segment_locked("w", jammed_url, || {
            let trackers = trackers.clone();
            let other = other_url.clone();
            let worker = std::thread::spawn(move || {
                trackers.observe("w", &other, &key_for(5));
                let _ = done_tx.send(());
            });
            // The observation on the other segment must complete while
            // this segment's lock is held.
            done_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("observe on a different segment completed despite the jammed one");
            worker.join().unwrap();
        });
    }
}
