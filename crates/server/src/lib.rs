//! # lixto-server
//!
//! The serving layer over the Lixto engines: an embeddable, concurrent
//! wrapper-execution service in the spirit of the paper's §6
//! Transformation Server deployments, where "wrappers run continuously
//! against changing web sources" and feed pipelines of postprocessors.
//! Where `lixto_transform` wires components into *pipes*, this crate
//! serves ad-hoc extraction *requests* at scale:
//!
//! * [`registry`] — named, versioned, compiled wrappers
//!   ([`WrapperRegistry`]); deploy a new version while the pool keeps
//!   executing the old one;
//! * [`server`] — the [`ExtractionServer`]: requests hash to one of N
//!   shards, each a bounded queue drained by worker threads (backpressure
//!   via blocking [`submit`](ExtractionServer::submit) or non-blocking
//!   [`try_submit`](ExtractionServer::try_submit)), with graceful
//!   [`shutdown`](ExtractionServer::shutdown) that drains queues and
//!   joins every thread;
//! * [`cache`] — a content-addressed [`ResultCache`], sharded over
//!   independently locked segments with exact aggregate counters and a
//!   crawl manifest per entry (stale subpages are revalidated before a
//!   hit is served): FxHash of the
//!   document bytes + wrapper version addresses an
//!   [`ExtractionResult`](lixto_elog::eval::ExtractionResult), LRU
//!   eviction, hit/miss/eviction/invalidation counters, and
//!   [`ChangeDetector`](lixto_transform::ChangeDetector)-driven
//!   invalidation when a live source changes;
//! * [`store`] — the durable [`TieredStore`]: the sharded LRU as hot
//!   tier over an append-only, log-structured disk tier with snapshot +
//!   WAL recovery, TTL and size-budget compaction, and a persisted
//!   [`Provenance`] record per entry (wrapper version, plan
//!   fingerprint, producing rule index, source page hash), so a
//!   restarted gateway serves previously-cached extractions — and can
//!   explain them — without recompute;
//! * [`metrics`] — a lock-free fixed-bucket latency histogram and the
//!   [`MetricsSnapshot`] API (throughput, p50/p99, queue depths, cache
//!   and store stats);
//! * [`watch`] — continuous extraction: a [`WatchRegistry`] of
//!   (wrapper, url, interval) subscriptions and a [`WatchScheduler`]
//!   that re-submits them through the pool and delivers instance-level
//!   diffs "only if the status changed between consecutive requests".
//!
//! # Durability directory convention
//!
//! The durable substrates live under one data directory (see
//! [`durability_layout`]): `<root>/wrappers` is the registry spool,
//! `<root>/store` the result store, `<root>/watches` the watch
//! subscription spool. All use the same line-oriented,
//! backslash-escaped UTF-8 file format family, and both recover by
//! skipping (and counting or warning about) corrupt records rather than
//! refusing to start.

#![forbid(unsafe_code)]

pub mod cache;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod store;
pub mod watch;

pub use lixto_core::XmlDesign;

pub use cache::{
    content_address, fxhash64, CacheKey, CacheStats, CachedExtraction, CrawlRecord, ResultCache,
    DEFAULT_CACHE_SEGMENTS,
};
pub use lixto_elog::{CompileError, ParseError, WrapperPlan};
pub use lixto_transform::{ChangedEntry, DiffEntry, InstanceDiff};
pub use metrics::{
    bucket_quantile_us, LatencyHistogram, MetricsSnapshot, ServerMetrics, StageHistograms,
    StageSummary, LATENCY_BUCKETS,
};
pub use registry::{DeployError, RegisteredWrapper, WrapperRegistry, WrapperSpec};
pub use server::{
    ExtractionRequest, ExtractionResponse, ExtractionServer, JobTicket, PoolSample, RequestSource,
    ServerConfig, ServerError, ShutdownReport,
};
pub use store::{
    durability_layout, parse_provenance_key, provenance_key, DurabilityLayout, InstanceProvenance,
    Provenance, StoreConfig, StoreStats, TieredStore,
};
pub use watch::{WatchEvent, WatchRegistry, WatchSample, WatchScheduler, WatchSpec, WatchStatus};
