//! Linear-time evaluation of acyclic conjunctive queries.
//!
//! Yannakakis' algorithm specialized to binary tree atoms: orient each
//! query-forest component, run a bottom-up semijoin pass (restrict each
//! variable's candidate set by its children's sets pulled through the
//! axis), then a top-down pass (restrict by the parent). Each pass step is
//! one O(|doc|) axis sweep from [`axisrel`](crate::axisrel), giving
//! O(|Q|·|doc|) total — the acyclic-case upper bound cited in Section 4.

use lixto_tree::{Document, NodeId};

use crate::acyclic::is_acyclic;
use crate::axisrel::{image, preimage};
use crate::model::Cq;

/// Error: the query is not acyclic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotAcyclic;

impl std::fmt::Display for NotAcyclic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query is not acyclic — use the generic solver")
    }
}

impl std::error::Error for NotAcyclic {}

/// Fully reduced candidate domains for every variable (the global
/// consistency property of acyclic queries: after both passes, every
/// remaining candidate participates in at least one solution).
pub fn reduce_domains(doc: &Document, cq: &Cq) -> Result<Vec<Vec<bool>>, NotAcyclic> {
    if !is_acyclic(cq) {
        return Err(NotAcyclic);
    }
    let n = doc.len();
    // Initial domains from label atoms.
    let mut dom: Vec<Vec<bool>> = vec![vec![true; n]; cq.n_vars];
    for la in &cq.labels {
        for (i, d) in dom[la.var].iter_mut().enumerate() {
            if *d && !doc.has_label(NodeId::from_index(i), &la.label) {
                *d = false;
            }
        }
    }
    // Build the forest: adjacency of (atom index, oriented towards child).
    let mut adj: Vec<Vec<(usize, usize, bool)>> = vec![Vec::new(); cq.n_vars];
    for (ai, a) in cq.atoms.iter().enumerate() {
        adj[a.x].push((ai, a.y, true)); // (atom, neighbor, neighbor-is-target)
        adj[a.y].push((ai, a.x, false));
    }
    // Process each connected component from an arbitrary root.
    let mut visited = vec![false; cq.n_vars];
    for root in 0..cq.n_vars {
        if visited[root] {
            continue;
        }
        // BFS order.
        let mut order = vec![root];
        visited[root] = true;
        let mut parent_edge: Vec<Option<(usize, bool)>> = vec![None; cq.n_vars];
        let mut qi = 0;
        while qi < order.len() {
            let u = order[qi];
            qi += 1;
            for &(ai, w, w_is_target) in &adj[u] {
                if !visited[w] {
                    visited[w] = true;
                    parent_edge[w] = Some((ai, w_is_target));
                    order.push(w);
                }
            }
        }
        // Bottom-up: child restricts parent.
        for &w in order.iter().rev() {
            if let Some((ai, w_is_target)) = parent_edge[w] {
                let a = &cq.atoms[ai];
                let u = if w_is_target { a.x } else { a.y };
                // u --axis--> w if w_is_target, else w --axis--> u.
                let allowed = if w_is_target {
                    preimage(doc, &dom[w], a.axis) // u with ∃w axis(u, w)
                } else {
                    image(doc, &dom[w], a.axis) // u with ∃w axis(w, u)
                };
                for i in 0..n {
                    dom[u][i] = dom[u][i] && allowed[i];
                }
            }
        }
        // Top-down: parent restricts child.
        for &w in order.iter() {
            if let Some((ai, w_is_target)) = parent_edge[w] {
                let a = &cq.atoms[ai];
                let u = if w_is_target { a.x } else { a.y };
                let allowed = if w_is_target {
                    image(doc, &dom[u], a.axis)
                } else {
                    preimage(doc, &dom[u], a.axis)
                };
                for i in 0..n {
                    dom[w][i] = dom[w][i] && allowed[i];
                }
            }
        }
    }
    Ok(dom)
}

/// Boolean evaluation: is the query satisfiable on `doc`?
pub fn eval_boolean(doc: &Document, cq: &Cq) -> Result<bool, NotAcyclic> {
    let dom = reduce_domains(doc, cq)?;
    Ok(dom.iter().all(|d| d.iter().any(|&b| b)))
}

/// Unary evaluation: the projection onto the free variable, in document
/// order. For acyclic queries the fully reduced domain of the free
/// variable *is* the projection (global consistency), provided every
/// other component is satisfiable.
pub fn eval_unary(doc: &Document, cq: &Cq) -> Result<Vec<NodeId>, NotAcyclic> {
    let free = cq.free.expect("eval_unary needs a free variable");
    let dom = reduce_domains(doc, cq)?;
    // If any component is empty the whole query is unsatisfiable.
    if dom.iter().any(|d| d.iter().all(|&b| !b)) {
        return Ok(Vec::new());
    }
    let mut out: Vec<NodeId> = (0..doc.len())
        .filter(|&i| dom[free][i])
        .map(NodeId::from_index)
        .collect();
    out.sort_by_key(|&x| doc.order().pre(x));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CqAtom, CqAxis, LabelAtom};
    use lixto_tree::build::from_sexp;

    fn atom(axis: CqAxis, x: usize, y: usize) -> CqAtom {
        CqAtom { axis, x, y }
    }

    fn label(var: usize, l: &str) -> LabelAtom {
        LabelAtom {
            var,
            label: l.to_string(),
        }
    }

    #[test]
    fn path_query() {
        // table // td with a following sibling td
        let doc = from_sexp("(html (table (tr (td (a)) (td)) (tr (td))) (div (td)))").unwrap();
        // v0=table, v1=td (v0 child+ v1), v2 = next sibling of v1
        let cq = Cq {
            n_vars: 3,
            atoms: vec![
                atom(CqAxis::ChildPlus, 0, 1),
                atom(CqAxis::NextSibling, 1, 2),
            ],
            labels: vec![label(0, "table"), label(1, "td"), label(2, "td")],
            free: Some(1),
        };
        let hits = eval_unary(&doc, &cq).unwrap();
        assert_eq!(hits.len(), 1, "only the first td of the 2-cell row");
    }

    #[test]
    fn unsatisfiable_component_empties_everything() {
        let doc = from_sexp("(a (b))").unwrap();
        let cq = Cq {
            n_vars: 2,
            atoms: vec![],
            labels: vec![label(0, "b"), label(1, "zzz")],
            free: Some(0),
        };
        assert!(eval_unary(&doc, &cq).unwrap().is_empty());
        assert!(!eval_boolean(&doc, &cq).unwrap());
    }

    #[test]
    fn cyclic_rejected() {
        let doc = from_sexp("(a (b))").unwrap();
        let cq = Cq::boolean(
            2,
            vec![atom(CqAxis::Child, 0, 1), atom(CqAxis::ChildPlus, 0, 1)],
            vec![],
        );
        assert_eq!(eval_boolean(&doc, &cq), Err(NotAcyclic));
    }

    #[test]
    fn following_query() {
        let doc = from_sexp("(r (a) (b (c)) (d))").unwrap();
        // v0 labeled a, v1 following v0 — everything after a's subtree.
        let cq = Cq {
            n_vars: 2,
            atoms: vec![atom(CqAxis::Following, 0, 1)],
            labels: vec![label(0, "a")],
            free: Some(1),
        };
        let hits = eval_unary(&doc, &cq).unwrap();
        let names: Vec<_> = hits.iter().map(|&h| doc.label_str(h).to_string()).collect();
        assert_eq!(names, vec!["b", "c", "d"]);
    }
}
