//! # lixto-cq
//!
//! Conjunctive queries over trees and the tractability dichotomy of
//! Section 4 of the PODS 2004 Lixto paper (detailed in the companion
//! PODS'04 paper \[18\]).
//!
//! The paper's Figure 6 landscape:
//!
//! * **acyclic** conjunctive queries over arbitrary axes evaluate in
//!   linear time (\[14\]) — [`yannakakis`] implements the semijoin
//!   program over per-axis O(|doc|) image sweeps;
//! * the subset-maximal **polynomial** axis sets are {child+, child*},
//!   {child, nextsibling, nextsibling+, nextsibling*} and {following};
//!   for every other combination (e.g. {child, child+}) evaluation is
//!   **NP-complete**. [`generic`] is an exact backtracking solver whose
//!   running time explodes on the NP-hard side — experiment E8 regenerates
//!   the dichotomy shape;
//! * [`preprocess`] implements the sound-and-complete simplifications for
//!   pure {child+, child*} queries (strict cycles are unsatisfiable,
//!   child*-cycles collapse variables), a key ingredient of the
//!   polynomial cases.
//!
//! DESIGN.md records the scope decision: the full GKS polynomial
//! algorithms for *cyclic* queries over each maximal tractable set belong
//! to the companion paper and are substituted here by the acyclic
//! algorithm + preprocessing + gadget generators, which suffice to
//! regenerate the published complexity shape.

#![forbid(unsafe_code)]

pub mod acyclic;
pub mod axisrel;
pub mod generate;
pub mod generic;
pub mod model;
pub mod preprocess;
pub mod yannakakis;

pub use model::{Cq, CqAtom, CqAxis, LabelAtom};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_tree;

    #[test]
    fn solvers_agree_on_random_acyclic_queries() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let doc = random_tree(&mut rng, 40, &["a", "b", "c"]);
            let cq = generate::random_acyclic_cq(
                &mut rng,
                4,
                &[CqAxis::Child, CqAxis::ChildPlus, CqAxis::NextSibling],
                &["a", "b", "c"],
            );
            let fast = yannakakis::eval_boolean(&doc, &cq).unwrap();
            let slow = generic::eval_boolean(&doc, &cq);
            assert_eq!(fast, slow, "trial {trial}: {cq:?}");
        }
    }

    #[test]
    fn unary_projection_agrees() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let doc = random_tree(&mut rng, 30, &["x", "y"]);
            let mut cq = generate::random_acyclic_cq(
                &mut rng,
                3,
                &[CqAxis::ChildPlus, CqAxis::Following],
                &["x", "y"],
            );
            cq.free = Some(0);
            let fast = yannakakis::eval_unary(&doc, &cq).unwrap();
            let slow = generic::eval_unary(&doc, &cq);
            assert_eq!(fast, slow, "{cq:?}");
        }
    }
}
