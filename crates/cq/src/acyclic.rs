//! Acyclicity of conjunctive queries.
//!
//! For binary atoms, GYO-reducibility coincides with the query multigraph
//! being a forest: parallel atoms between the same variable pair and
//! undirected cycles are exactly the cyclic cases.

use crate::model::Cq;

/// Is the query acyclic (its atom multigraph a forest)?
///
/// Self-loop atoms (`axis(x, x)`) count as cycles.
pub fn is_acyclic(cq: &Cq) -> bool {
    // Union-find; a cycle appears when an edge joins two already-connected
    // variables.
    let mut parent: Vec<usize> = (0..cq.n_vars).collect();
    fn find(p: &mut [usize], mut x: usize) -> usize {
        while p[x] != x {
            p[x] = p[p[x]];
            x = p[x];
        }
        x
    }
    for a in &cq.atoms {
        if a.x == a.y {
            return false;
        }
        let (rx, ry) = (find(&mut parent, a.x), find(&mut parent, a.y));
        if rx == ry {
            return false;
        }
        parent[rx] = ry;
    }
    true
}

/// Connected components of the query's variable graph (variables with no
/// atoms form their own components).
pub fn components(cq: &Cq) -> Vec<usize> {
    let mut parent: Vec<usize> = (0..cq.n_vars).collect();
    fn find(p: &mut [usize], mut x: usize) -> usize {
        while p[x] != x {
            p[x] = p[p[x]];
            x = p[x];
        }
        x
    }
    for a in &cq.atoms {
        let (rx, ry) = (find(&mut parent, a.x), find(&mut parent, a.y));
        if rx != ry {
            parent[rx] = ry;
        }
    }
    (0..cq.n_vars).map(|v| find(&mut parent, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CqAtom, CqAxis};

    fn atom(x: usize, y: usize) -> CqAtom {
        CqAtom {
            axis: CqAxis::Child,
            x,
            y,
        }
    }

    #[test]
    fn chains_and_stars_are_acyclic() {
        let q = Cq::boolean(4, vec![atom(0, 1), atom(1, 2), atom(1, 3)], vec![]);
        assert!(is_acyclic(&q));
    }

    #[test]
    fn cycles_and_multiedges_are_cyclic() {
        let q = Cq::boolean(3, vec![atom(0, 1), atom(1, 2), atom(2, 0)], vec![]);
        assert!(!is_acyclic(&q));
        let q = Cq::boolean(2, vec![atom(0, 1), atom(1, 0)], vec![]);
        assert!(!is_acyclic(&q));
        let q = Cq::boolean(2, vec![atom(0, 1), atom(0, 1)], vec![]);
        assert!(!is_acyclic(&q));
        let q = Cq::boolean(1, vec![atom(0, 0)], vec![]);
        assert!(!is_acyclic(&q));
    }

    #[test]
    fn component_partition() {
        let q = Cq::boolean(5, vec![atom(0, 1), atom(2, 3)], vec![]);
        let c = components(&q);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[2], c[3]);
        assert_ne!(c[0], c[2]);
        assert_ne!(c[4], c[0]);
        assert_ne!(c[4], c[2]);
    }
}
