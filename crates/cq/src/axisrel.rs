//! Axis relation membership tests and set images.
//!
//! Pair tests are O(1) via the pre/post interval numbering; set images
//! (needed by the semijoin passes of [`yannakakis`](crate::yannakakis))
//! are O(|doc|) document sweeps regardless of the input set size.

use lixto_tree::{Document, NodeId};

use crate::model::CqAxis;

/// Does `axis(x, y)` hold?
#[inline]
pub fn holds(doc: &Document, axis: CqAxis, x: NodeId, y: NodeId) -> bool {
    match axis {
        CqAxis::Child => doc.parent(y) == Some(x),
        CqAxis::ChildPlus => doc.is_ancestor(x, y),
        CqAxis::ChildStar => doc.is_ancestor_or_self(x, y),
        CqAxis::NextSibling => doc.next_sibling(x) == Some(y),
        CqAxis::NextSiblingPlus => {
            x != y
                && doc.parent(x).is_some()
                && doc.parent(x) == doc.parent(y)
                && doc.doc_before(x, y)
        }
        CqAxis::NextSiblingStar => {
            x == y
                || (doc.parent(x).is_some()
                    && doc.parent(x) == doc.parent(y)
                    && doc.doc_before(x, y))
        }
        CqAxis::Following => doc.is_following(x, y),
    }
}

/// Forward image `{y : ∃x∈S axis(x, y)}`, O(|doc|).
pub fn image(doc: &Document, s: &[bool], axis: CqAxis) -> Vec<bool> {
    let n = doc.len();
    let mut out = vec![false; n];
    match axis {
        CqAxis::Child => {
            for (i, o) in out.iter_mut().enumerate() {
                if let Some(p) = doc.parent(NodeId::from_index(i)) {
                    if s[p.index()] {
                        *o = true;
                    }
                }
            }
        }
        CqAxis::ChildPlus | CqAxis::ChildStar => {
            // Preorder with subtree-interval stack.
            let mut stack: Vec<usize> = Vec::new(); // subtree ends
            for &node in doc.order().preorder() {
                let pre = doc.order().pre(node) as usize;
                while let Some(&end) = stack.last() {
                    if pre >= end {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                if !stack.is_empty() || (axis == CqAxis::ChildStar && s[node.index()]) {
                    out[node.index()] = true;
                }
                if s[node.index()] {
                    stack.push(doc.order().subtree_range(node).1);
                }
            }
        }
        CqAxis::NextSibling => {
            for (i, &si) in s.iter().enumerate() {
                if si {
                    if let Some(ns) = doc.next_sibling(NodeId::from_index(i)) {
                        out[ns.index()] = true;
                    }
                }
            }
        }
        CqAxis::NextSiblingPlus | CqAxis::NextSiblingStar => {
            for &node in doc.order().preorder() {
                if let Some(prev) = doc.prev_sibling(node) {
                    if s[prev.index()] || out[prev.index()] {
                        out[node.index()] = true;
                    }
                }
            }
            if axis == CqAxis::NextSiblingStar {
                for i in 0..n {
                    out[i] = out[i] || s[i];
                }
            }
        }
        CqAxis::Following => {
            let mut min_end = usize::MAX;
            for (i, &si) in s.iter().enumerate() {
                if si {
                    min_end = min_end.min(doc.order().subtree_range(NodeId::from_index(i)).1);
                }
            }
            for (i, o) in out.iter_mut().enumerate() {
                if (doc.order().pre(NodeId::from_index(i)) as usize) >= min_end {
                    *o = true;
                }
            }
        }
    }
    out
}

/// Inverse image `{x : ∃y∈S axis(x, y)}`, O(|doc|).
pub fn preimage(doc: &Document, s: &[bool], axis: CqAxis) -> Vec<bool> {
    let n = doc.len();
    let mut out = vec![false; n];
    match axis {
        CqAxis::Child => {
            for (i, &si) in s.iter().enumerate() {
                if si {
                    if let Some(p) = doc.parent(NodeId::from_index(i)) {
                        out[p.index()] = true;
                    }
                }
            }
        }
        CqAxis::ChildPlus | CqAxis::ChildStar => {
            // x is a (proper) ancestor of some y∈S: propagate subtree flags
            // upward in reverse preorder.
            let mut contains = vec![false; n];
            for &node in doc.order().preorder().iter().rev() {
                let mut c = s[node.index()];
                for ch in doc.children(node) {
                    if contains[ch.index()] {
                        out[node.index()] = true;
                        c = true;
                    }
                }
                if axis == CqAxis::ChildStar && s[node.index()] {
                    out[node.index()] = true;
                }
                contains[node.index()] = c;
            }
        }
        CqAxis::NextSibling => {
            for (i, &si) in s.iter().enumerate() {
                if si {
                    if let Some(ps) = doc.prev_sibling(NodeId::from_index(i)) {
                        out[ps.index()] = true;
                    }
                }
            }
        }
        CqAxis::NextSiblingPlus | CqAxis::NextSiblingStar => {
            for &node in doc.order().preorder().iter().rev() {
                if let Some(next) = doc.next_sibling(node) {
                    if s[next.index()] || out[next.index()] {
                        out[node.index()] = true;
                    }
                }
            }
            if axis == CqAxis::NextSiblingStar {
                for i in 0..n {
                    out[i] = out[i] || s[i];
                }
            }
        }
        CqAxis::Following => {
            // x with following(x, y), y∈S ⇔ subtree_end(x) <= max pre(S).
            let mut max_pre = None;
            for (i, &si) in s.iter().enumerate() {
                if si {
                    let p = doc.order().pre(NodeId::from_index(i)) as usize;
                    max_pre = Some(max_pre.map_or(p, |m: usize| m.max(p)));
                }
            }
            if let Some(mp) = max_pre {
                for (i, o) in out.iter_mut().enumerate() {
                    if doc.order().subtree_range(NodeId::from_index(i)).1 <= mp {
                        *o = true;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_tree::build::from_sexp;

    fn all_axes() -> [CqAxis; 7] {
        [
            CqAxis::Child,
            CqAxis::ChildPlus,
            CqAxis::ChildStar,
            CqAxis::NextSibling,
            CqAxis::NextSiblingPlus,
            CqAxis::NextSiblingStar,
            CqAxis::Following,
        ]
    }

    #[test]
    fn images_agree_with_pairwise_holds() {
        let doc = from_sexp("(a (b (c) (d) (e)) (f (g)) (h))").unwrap();
        let n = doc.len();
        for axis in all_axes() {
            for seed in 0..n {
                let mut s = vec![false; n];
                s[seed] = true;
                let img = image(&doc, &s, axis);
                let pre = preimage(&doc, &s, axis);
                let x = NodeId::from_index(seed);
                for j in 0..n {
                    let y = NodeId::from_index(j);
                    assert_eq!(
                        img[j],
                        holds(&doc, axis, x, y),
                        "image {} x={seed} y={j}",
                        axis.name()
                    );
                    assert_eq!(
                        pre[j],
                        holds(&doc, axis, y, x),
                        "preimage {} x={j} y={seed}",
                        axis.name()
                    );
                }
            }
        }
    }

    #[test]
    fn images_union_over_sets() {
        // image(S) must equal union of image({x}) for x in S.
        let doc = from_sexp("(a (b (c)) (d (e) (f)))").unwrap();
        let n = doc.len();
        for axis in all_axes() {
            let mut s = vec![false; n];
            s[1] = true;
            s[3] = true;
            let img = image(&doc, &s, axis);
            for (j, &got) in img.iter().enumerate() {
                let y = NodeId::from_index(j);
                let expect = holds(&doc, axis, NodeId::from_index(1), y)
                    || holds(&doc, axis, NodeId::from_index(3), y);
                assert_eq!(got, expect, "{} j={j}", axis.name());
            }
        }
    }
}
