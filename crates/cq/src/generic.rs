//! Exact backtracking solver for arbitrary (cyclic) conjunctive queries.
//!
//! This is the honest NP-side algorithm: backtracking over variable
//! assignments with label-filtered domains and forward checking against
//! already-assigned neighbours. Exponential in the worst case — which is
//! the point: Boolean CQs over trees with mixed axes (e.g. Child together
//! with Child+) are NP-complete \[18\], and experiment E8 measures this
//! solver's blow-up on gadget queries while the acyclic solver stays flat.

use lixto_tree::{Document, NodeId};

use crate::axisrel::holds;
use crate::model::Cq;

/// Boolean evaluation by backtracking.
pub fn eval_boolean(doc: &Document, cq: &Cq) -> bool {
    let mut st = Search::new(doc, cq);
    st.solve(0)
}

/// Unary evaluation: all witnesses for the free variable (document order).
pub fn eval_unary(doc: &Document, cq: &Cq) -> Vec<NodeId> {
    let free = cq.free.expect("eval_unary needs a free variable");
    let n = doc.len();
    let mut out = Vec::new();
    for i in 0..n {
        let node = NodeId::from_index(i);
        let mut st = Search::new(doc, cq);
        if !st.domains[free][i] {
            continue;
        }
        // Pin the free variable and search the rest.
        st.assign[free] = Some(node);
        let order: Vec<usize> = st.order.iter().copied().filter(|&v| v != free).collect();
        st.order = order;
        if st.solve(0) {
            out.push(node);
        }
    }
    out.sort_by_key(|&x| doc.order().pre(x));
    out
}

/// Count the number of backtracking search nodes explored for a Boolean
/// query (the E8 work metric, more stable than wall time).
pub fn count_search_nodes(doc: &Document, cq: &Cq) -> u64 {
    let mut st = Search::new(doc, cq);
    let _ = st.solve(0);
    st.explored
}

struct Search<'d> {
    doc: &'d Document,
    cq: &'d Cq,
    domains: Vec<Vec<bool>>,
    assign: Vec<Option<NodeId>>,
    /// Variable ordering: connected-first heuristic.
    order: Vec<usize>,
    explored: u64,
}

impl<'d> Search<'d> {
    fn new(doc: &'d Document, cq: &'d Cq) -> Search<'d> {
        let n = doc.len();
        let mut domains = vec![vec![true; n]; cq.n_vars];
        for la in &cq.labels {
            for (i, d) in domains[la.var].iter_mut().enumerate() {
                if *d && !doc.has_label(NodeId::from_index(i), &la.label) {
                    *d = false;
                }
            }
        }
        // Order variables so each (after the first) connects to an earlier
        // one when possible — basic but effective for forward checking.
        let mut order: Vec<usize> = Vec::new();
        let mut placed = vec![false; cq.n_vars];
        while order.len() < cq.n_vars {
            let next = (0..cq.n_vars).filter(|&v| !placed[v]).max_by_key(|&v| {
                cq.atoms
                    .iter()
                    .filter(|a| (a.x == v && placed[a.y]) || (a.y == v && placed[a.x]))
                    .count()
            });
            let v = next.unwrap();
            placed[v] = true;
            order.push(v);
        }
        Search {
            doc,
            cq,
            domains,
            assign: vec![None; cq.n_vars],
            order,
            explored: 0,
        }
    }

    fn consistent(&self, v: usize, node: NodeId) -> bool {
        for a in &self.cq.atoms {
            if a.x == v {
                if let Some(y) = self.assign[a.y] {
                    if !holds(self.doc, a.axis, node, y) {
                        return false;
                    }
                }
                // Self-loop atoms check against the candidate itself.
                if a.y == v && !holds(self.doc, a.axis, node, node) {
                    return false;
                }
            } else if a.y == v {
                if let Some(x) = self.assign[a.x] {
                    if !holds(self.doc, a.axis, x, node) {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn solve(&mut self, depth: usize) -> bool {
        if depth == self.order.len() {
            return true;
        }
        let v = self.order[depth];
        for i in 0..self.doc.len() {
            if !self.domains[v][i] {
                continue;
            }
            let node = NodeId::from_index(i);
            self.explored += 1;
            if self.consistent(v, node) {
                self.assign[v] = Some(node);
                if self.solve(depth + 1) {
                    self.assign[v] = None;
                    return true;
                }
                self.assign[v] = None;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CqAtom, CqAxis, LabelAtom};
    use lixto_tree::build::from_sexp;

    fn atom(axis: CqAxis, x: usize, y: usize) -> CqAtom {
        CqAtom { axis, x, y }
    }

    #[test]
    fn cyclic_query_child_and_childplus() {
        // x Child y ∧ x Child+ y: holds exactly when y is a child of x.
        let doc = from_sexp("(a (b (c)))").unwrap();
        let cq = Cq::boolean(
            2,
            vec![atom(CqAxis::Child, 0, 1), atom(CqAxis::ChildPlus, 0, 1)],
            vec![],
        );
        assert!(eval_boolean(&doc, &cq));
        // And fails when additionally y must be a *grand*child via a third
        // variable chain that contradicts the direct-child requirement.
        let cq2 = Cq::boolean(
            3,
            vec![
                atom(CqAxis::Child, 0, 1),
                atom(CqAxis::Child, 1, 2),
                atom(CqAxis::Child, 0, 2),
            ],
            vec![],
        );
        assert!(!eval_boolean(&doc, &cq2), "no node is child and grandchild");
    }

    #[test]
    fn unary_matches_yannakakis_on_acyclic() {
        let doc = from_sexp("(t (tr (td) (td)) (tr (td)))").unwrap();
        let cq = Cq {
            n_vars: 2,
            atoms: vec![atom(CqAxis::Child, 0, 1)],
            labels: vec![LabelAtom {
                var: 1,
                label: "td".into(),
            }],
            free: Some(1),
        };
        let slow = eval_unary(&doc, &cq);
        let fast = crate::yannakakis::eval_unary(&doc, &cq).unwrap();
        assert_eq!(slow, fast);
    }

    #[test]
    fn search_node_counting() {
        let doc = from_sexp("(a (b) (b) (b))").unwrap();
        let cq = Cq::boolean(
            2,
            vec![atom(CqAxis::Child, 0, 1)],
            vec![LabelAtom {
                var: 1,
                label: "b".into(),
            }],
        );
        assert!(count_search_nodes(&doc, &cq) >= 2);
    }

    #[test]
    fn self_loop_unsatisfiable() {
        let doc = from_sexp("(a (b))").unwrap();
        let cq = Cq::boolean(1, vec![atom(CqAxis::Child, 0, 0)], vec![]);
        assert!(!eval_boolean(&doc, &cq));
        // But Child* self-loop holds trivially.
        let cq2 = Cq::boolean(1, vec![atom(CqAxis::ChildStar, 0, 0)], vec![]);
        assert!(eval_boolean(&doc, &cq2));
    }
}
