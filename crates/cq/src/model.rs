//! Conjunctive queries over tree axis relations.

/// The axis relations of Section 4 ("The most natural axis relations are
/// thus Child, Child*, Child+, Nextsibling, Nextsibling*, Nextsibling+,
/// and Following").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CqAxis {
    /// `Child(x, y)`.
    Child,
    /// `Child+(x, y)` — proper descendant.
    ChildPlus,
    /// `Child*(x, y)` — descendant or self.
    ChildStar,
    /// `Nextsibling(x, y)`.
    NextSibling,
    /// `Nextsibling+(x, y)`.
    NextSiblingPlus,
    /// `Nextsibling*(x, y)`.
    NextSiblingStar,
    /// `Following(x, y)`.
    Following,
}

impl CqAxis {
    /// Human-readable name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            CqAxis::Child => "Child",
            CqAxis::ChildPlus => "Child+",
            CqAxis::ChildStar => "Child*",
            CqAxis::NextSibling => "Nextsibling",
            CqAxis::NextSiblingPlus => "Nextsibling+",
            CqAxis::NextSiblingStar => "Nextsibling*",
            CqAxis::Following => "Following",
        }
    }
}

/// A binary atom `axis(x, y)` over variable indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CqAtom {
    /// The axis relation.
    pub axis: CqAxis,
    /// Source variable.
    pub x: usize,
    /// Target variable.
    pub y: usize,
}

/// A unary atom `label_a(x)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelAtom {
    /// The variable.
    pub var: usize,
    /// Required label.
    pub label: String,
}

/// A conjunctive query over trees: variables `0..n_vars`, binary axis
/// atoms, unary label atoms, and an optional free variable (None = Boolean
/// query).
#[derive(Debug, Clone, PartialEq)]
pub struct Cq {
    /// Number of variables.
    pub n_vars: usize,
    /// Binary atoms.
    pub atoms: Vec<CqAtom>,
    /// Unary label atoms.
    pub labels: Vec<LabelAtom>,
    /// Free variable for unary queries.
    pub free: Option<usize>,
}

impl Cq {
    /// A Boolean query.
    pub fn boolean(n_vars: usize, atoms: Vec<CqAtom>, labels: Vec<LabelAtom>) -> Cq {
        Cq {
            n_vars,
            atoms,
            labels,
            free: None,
        }
    }

    /// The set of axes used.
    pub fn axes_used(&self) -> Vec<CqAxis> {
        let mut v: Vec<CqAxis> = Vec::new();
        for a in &self.atoms {
            if !v.contains(&a.axis) {
                v.push(a.axis);
            }
        }
        v
    }

    /// Query size |Q| = number of atoms.
    pub fn size(&self) -> usize {
        self.atoms.len() + self.labels.len()
    }

    /// Is the query over one of the subset-maximal polynomial axis sets of
    /// \[18\]: {child+, child*}, {child, nextsibling, nextsibling+,
    /// nextsibling*}, or {following}?
    pub fn in_tractable_axis_set(&self) -> bool {
        let used = self.axes_used();
        let within = |allowed: &[CqAxis]| used.iter().all(|a| allowed.contains(a));
        within(&[CqAxis::ChildPlus, CqAxis::ChildStar])
            || within(&[
                CqAxis::Child,
                CqAxis::NextSibling,
                CqAxis::NextSiblingPlus,
                CqAxis::NextSiblingStar,
            ])
            || within(&[CqAxis::Following])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(axis: CqAxis, x: usize, y: usize) -> CqAtom {
        CqAtom { axis, x, y }
    }

    #[test]
    fn tractable_axis_set_classification() {
        let q = Cq::boolean(
            3,
            vec![atom(CqAxis::ChildPlus, 0, 1), atom(CqAxis::ChildStar, 1, 2)],
            vec![],
        );
        assert!(q.in_tractable_axis_set());
        let q = Cq::boolean(
            2,
            vec![atom(CqAxis::Child, 0, 1), atom(CqAxis::ChildPlus, 0, 1)],
            vec![],
        );
        assert!(!q.in_tractable_axis_set(), "Child with Child+ is NP-hard");
        let q = Cq::boolean(2, vec![atom(CqAxis::Following, 0, 1)], vec![]);
        assert!(q.in_tractable_axis_set());
        let q = Cq::boolean(
            2,
            vec![
                atom(CqAxis::Child, 0, 1),
                atom(CqAxis::NextSiblingStar, 0, 1),
            ],
            vec![],
        );
        assert!(q.in_tractable_axis_set());
    }

    #[test]
    fn size_and_axes() {
        let q = Cq::boolean(
            2,
            vec![atom(CqAxis::Child, 0, 1), atom(CqAxis::Child, 1, 0)],
            vec![LabelAtom {
                var: 0,
                label: "a".into(),
            }],
        );
        assert_eq!(q.size(), 3);
        assert_eq!(q.axes_used(), vec![CqAxis::Child]);
    }
}
