//! Random trees, random queries, and the E8 hardness gadgets.

use rand::Rng;

use lixto_tree::{Document, TreeBuilder};

use crate::model::{Cq, CqAtom, CqAxis, LabelAtom};

/// A random tree with `n` nodes and labels drawn uniformly from `labels`.
/// Shape: each new node attaches to a uniformly random existing node, a
/// standard random-recursive-tree model that produces realistic mixes of
/// depth and fanout.
pub fn random_tree(rng: &mut impl Rng, n: usize, labels: &[&str]) -> Document {
    assert!(n >= 1);
    // Choose parents first, then build with a DFS ordering.
    let mut parents = vec![0usize; n];
    for (i, p) in parents.iter_mut().enumerate().skip(1) {
        *p = rng.gen_range(0..i);
    }
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 1..n {
        children[parents[i]].push(i);
    }
    let mut b = TreeBuilder::new();
    // Iterative DFS emit.
    let mut stack: Vec<(usize, bool)> = vec![(0, false)];
    while let Some((u, done)) = stack.pop() {
        if done {
            b.close();
            continue;
        }
        b.open(labels[rng.gen_range(0..labels.len())]);
        stack.push((u, true));
        for &c in children[u].iter().rev() {
            stack.push((c, false));
        }
    }
    b.finish()
}

/// A random acyclic query: a random tree over `n_vars` variables with
/// random axes and a sprinkling of label atoms.
pub fn random_acyclic_cq(
    rng: &mut impl Rng,
    n_vars: usize,
    axes: &[CqAxis],
    labels: &[&str],
) -> Cq {
    let mut atoms = Vec::new();
    for v in 1..n_vars {
        let u = rng.gen_range(0..v);
        let axis = axes[rng.gen_range(0..axes.len())];
        // Random orientation keeps the generator honest.
        if rng.gen_bool(0.5) {
            atoms.push(CqAtom { axis, x: u, y: v });
        } else {
            atoms.push(CqAtom { axis, x: v, y: u });
        }
    }
    let mut label_atoms = Vec::new();
    for v in 0..n_vars {
        if rng.gen_bool(0.4) {
            label_atoms.push(LabelAtom {
                var: v,
                label: labels[rng.gen_range(0..labels.len())].to_string(),
            });
        }
    }
    Cq {
        n_vars,
        atoms,
        labels: label_atoms,
        free: None,
    }
}

/// The E8 hard instance family over the NP-complete axis pair
/// {Child, Child+}.
///
/// Tree: a path of `k` "level" nodes, each level carrying `width` decoy
/// children labeled `d` plus one continuation; only one decoy per level is
/// special (labeled `t`) — and the query asks for a chain of variables
/// where each `v_i` is a Child of the previous *and* an ancestor
/// (`Child+`) constraint ties variables two levels apart, while label
/// atoms demand the `t` decoys *in the last level only*. Backtracking must
/// try the decoys at every level before discovering the chain fails or
/// succeeds, exploring Θ(width^k) assignments; the mixed Child/Child+
/// cycles block both the acyclic solver and the ancestor-collapse
/// preprocessing — exactly the NP-hard corner of Figure 6.
pub fn hard_instance(k: usize, width: usize) -> (Document, Cq) {
    let mut b = TreeBuilder::new();
    b.open("root");
    fn level(b: &mut TreeBuilder, depth: usize, k: usize, width: usize) {
        if depth == k {
            return;
        }
        // Decoys: subtrees that look viable one level down.
        for _ in 0..width {
            b.open("s");
            b.open("d");
            b.close();
            b.close();
        }
        // The true continuation.
        b.open("s");
        level(b, depth + 1, k, width);
        if depth == k - 1 {
            b.open("t");
            b.close();
        }
        b.close();
    }
    level(&mut b, 0, k, width);
    let doc = b.finish();

    // Variables: v0 = root; then per level a pair (s_i, c_i): s_i child of
    // previous s, c_i child of s_i; cyclic reinforcement: s_{i-1} Child+ c_i.
    let mut atoms = Vec::new();
    let mut labels = Vec::new();
    let n_vars = 1 + 2 * k;
    let s = |i: usize| 1 + 2 * i;
    let c = |i: usize| 2 + 2 * i;
    for i in 0..k {
        let prev = if i == 0 { 0 } else { s(i - 1) };
        atoms.push(CqAtom {
            axis: CqAxis::Child,
            x: prev,
            y: s(i),
        });
        atoms.push(CqAtom {
            axis: CqAxis::Child,
            x: s(i),
            y: c(i),
        });
        // The cycle-maker: prev Child+ c_i (redundant semantically, cyclic
        // syntactically — knocks out the acyclic solver).
        atoms.push(CqAtom {
            axis: CqAxis::ChildPlus,
            x: prev,
            y: c(i),
        });
        labels.push(LabelAtom {
            var: s(i),
            label: "s".to_string(),
        });
    }
    labels.push(LabelAtom {
        var: 0,
        label: "root".to_string(),
    });
    // Only the deepest chain ends in a "t".
    labels.push(LabelAtom {
        var: c(k - 1),
        label: "t".to_string(),
    });
    (doc, Cq::boolean(n_vars, atoms, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_tree_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let doc = random_tree(&mut rng, 57, &["a", "b"]);
        assert_eq!(doc.len(), 57);
    }

    #[test]
    fn random_acyclic_cq_is_acyclic() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let cq = random_acyclic_cq(
                &mut rng,
                6,
                &[CqAxis::Child, CqAxis::Following, CqAxis::NextSiblingStar],
                &["a"],
            );
            assert!(crate::acyclic::is_acyclic(&cq));
        }
    }

    #[test]
    fn hard_instance_is_satisfiable_and_cyclic() {
        let (doc, cq) = hard_instance(3, 3);
        assert!(!crate::acyclic::is_acyclic(&cq));
        assert!(!cq.in_tractable_axis_set());
        assert!(crate::generic::eval_boolean(&doc, &cq));
    }

    #[test]
    fn hard_instance_work_grows_with_k() {
        let (d2, q2) = hard_instance(2, 4);
        let (d4, q4) = hard_instance(4, 4);
        let w2 = crate::generic::count_search_nodes(&d2, &q2);
        let w4 = crate::generic::count_search_nodes(&d4, &q4);
        assert!(w4 > w2 * 2, "search work should grow sharply: {w2} vs {w4}");
    }
}
