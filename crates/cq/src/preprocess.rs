//! Sound-and-complete simplification for {child+, child*} queries.
//!
//! Over the ancestor order of a tree, `child+` is a strict partial order
//! and `child*` its reflexive closure. Hence, in a query using only these
//! two axes:
//!
//! * a directed cycle containing a `child+` atom is **unsatisfiable**
//!   (strictness);
//! * a directed cycle of only `child*` atoms forces all its variables to
//!   be **equal** — the cycle collapses to a single variable.
//!
//! These are the cycle-elimination steps behind the polynomiality of
//! CQ[child+, child*] in \[18\]; after collapsing, gadget-free queries
//! typically become acyclic and fall to the Yannakakis solver.

use crate::model::{Cq, CqAtom, CqAxis, LabelAtom};

/// Result of preprocessing.
#[derive(Debug, Clone, PartialEq)]
pub enum Preprocessed {
    /// The query is unsatisfiable on every tree.
    Unsatisfiable,
    /// A simplified query plus the variable mapping old → new.
    Simplified(Cq, Vec<usize>),
}

/// Apply the collapse; `None` if the query uses axes outside
/// {child+, child*}.
pub fn collapse_ancestor_cycles(cq: &Cq) -> Option<Preprocessed> {
    if !cq
        .axes_used()
        .iter()
        .all(|a| matches!(a, CqAxis::ChildPlus | CqAxis::ChildStar))
    {
        return None;
    }
    // Strongly connected components over the directed atom graph (Tarjan
    // via iterative Kosaraju for simplicity at query scale).
    let n = cq.n_vars;
    let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for a in &cq.atoms {
        fwd[a.x].push(a.y);
        rev[a.y].push(a.x);
    }
    // Kosaraju pass 1: finish order.
    let mut visited = vec![false; n];
    let mut finish: Vec<usize> = Vec::new();
    for s in 0..n {
        if visited[s] {
            continue;
        }
        // Iterative DFS with explicit (node, child index) frames.
        let mut stack = vec![(s, 0usize)];
        visited[s] = true;
        while let Some(&mut (u, ref mut ci)) = stack.last_mut() {
            if *ci < fwd[u].len() {
                let w = fwd[u][*ci];
                *ci += 1;
                if !visited[w] {
                    visited[w] = true;
                    stack.push((w, 0));
                }
            } else {
                finish.push(u);
                stack.pop();
            }
        }
    }
    // Pass 2: reverse graph in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut n_comp = 0;
    for &s in finish.iter().rev() {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        comp[s] = n_comp;
        while let Some(u) = stack.pop() {
            for &w in &rev[u] {
                if comp[w] == usize::MAX {
                    comp[w] = n_comp;
                    stack.push(w);
                }
            }
        }
        n_comp += 1;
    }
    // A child+ atom inside one SCC ⇒ unsatisfiable.
    for a in &cq.atoms {
        if comp[a.x] == comp[a.y] && a.axis == CqAxis::ChildPlus {
            return Some(Preprocessed::Unsatisfiable);
        }
    }
    // Rebuild over components; intra-SCC child* atoms vanish (x = y).
    let mut atoms: Vec<CqAtom> = Vec::new();
    for a in &cq.atoms {
        if comp[a.x] != comp[a.y] {
            let na = CqAtom {
                axis: a.axis,
                x: comp[a.x],
                y: comp[a.y],
            };
            if !atoms.contains(&na) {
                atoms.push(na);
            }
        }
    }
    let labels: Vec<LabelAtom> = {
        let mut ls: Vec<LabelAtom> = Vec::new();
        for l in &cq.labels {
            let nl = LabelAtom {
                var: comp[l.var],
                label: l.label.clone(),
            };
            if !ls.contains(&nl) {
                ls.push(nl);
            }
        }
        ls
    };
    let simplified = Cq {
        n_vars: n_comp,
        atoms,
        labels,
        free: cq.free.map(|f| comp[f]),
    };
    Some(Preprocessed::Simplified(simplified, comp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_tree::build::from_sexp;

    fn atom(axis: CqAxis, x: usize, y: usize) -> CqAtom {
        CqAtom { axis, x, y }
    }

    #[test]
    fn strict_cycle_is_unsat() {
        let cq = Cq::boolean(
            2,
            vec![atom(CqAxis::ChildPlus, 0, 1), atom(CqAxis::ChildStar, 1, 0)],
            vec![],
        );
        assert_eq!(
            collapse_ancestor_cycles(&cq),
            Some(Preprocessed::Unsatisfiable)
        );
        // And the generic solver agrees on an actual tree.
        let doc = from_sexp("(a (b (c)))").unwrap();
        assert!(!crate::generic::eval_boolean(&doc, &cq));
    }

    #[test]
    fn star_cycle_collapses_to_equality() {
        // x child* y ∧ y child* x ⇒ x = y.
        let cq = Cq::boolean(
            3,
            vec![
                atom(CqAxis::ChildStar, 0, 1),
                atom(CqAxis::ChildStar, 1, 0),
                atom(CqAxis::ChildPlus, 1, 2),
            ],
            vec![],
        );
        match collapse_ancestor_cycles(&cq).unwrap() {
            Preprocessed::Simplified(s, map) => {
                assert_eq!(s.n_vars, 2);
                assert_eq!(map[0], map[1]);
                assert_ne!(map[0], map[2]);
                assert_eq!(s.atoms.len(), 1);
                // Collapsed query is acyclic and equivalent.
                let doc = from_sexp("(a (b (c)))").unwrap();
                assert_eq!(
                    crate::generic::eval_boolean(&doc, &cq),
                    crate::yannakakis::eval_boolean(&doc, &s).unwrap()
                );
            }
            other => panic!("expected simplification, got {other:?}"),
        }
    }

    #[test]
    fn mixed_axes_not_applicable() {
        let cq = Cq::boolean(2, vec![atom(CqAxis::Child, 0, 1)], vec![]);
        assert_eq!(collapse_ancestor_cycles(&cq), None);
    }

    #[test]
    fn acyclic_input_passes_through() {
        let cq = Cq::boolean(
            3,
            vec![atom(CqAxis::ChildPlus, 0, 1), atom(CqAxis::ChildStar, 1, 2)],
            vec![],
        );
        match collapse_ancestor_cycles(&cq).unwrap() {
            Preprocessed::Simplified(s, _) => {
                assert_eq!(s.n_vars, 3);
                assert_eq!(s.atoms.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
