//! XPath parser (recursive descent over the token stream).
//!
//! Grammar (the navigational fragment plus the pXPath-style extensions the
//! CVT evaluator supports):
//!
//! ```text
//! query     := '/'? relative | '//' relative
//! relative  := step (('/' | '//') step)*
//! step      := axis_step | '.' | '..'
//! axis_step := (axis '::')? nodetest predicate*
//! nodetest  := name | '*' | 'text' '(' ')' | 'node' '(' ')'
//! predicate := '[' or_expr ']'
//! or_expr   := and_expr ('or' and_expr)*
//! and_expr  := cmp_expr ('and' cmp_expr)*
//! cmp_expr  := value (('='|'!='|'<'|'<='|'>'|'>=') value)?
//! value     := 'not' '(' or_expr ')' | 'position' '(' ')' | 'last' '(' ')'
//!            | 'count' '(' query ')' | number | literal | query-or-relative
//! ```

use lixto_tree::Axis;

use crate::ast::{CmpOp, Expr, LocationPath, NodeTest, Step, XPathError};
use crate::lexer::{lex, Tok};

/// Parse an XPath query.
pub fn parse(src: &str) -> Result<LocationPath, XPathError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let path = p.location_path()?;
    if p.pos != p.toks.len() {
        return Err(XPathError::new("trailing tokens after query"));
    }
    Ok(path)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), XPathError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(XPathError::new(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn location_path(&mut self) -> Result<LocationPath, XPathError> {
        let mut steps = Vec::new();
        let absolute;
        if self.eat(&Tok::DoubleSlash) {
            absolute = true;
            steps.push(descendant_or_self_node());
        } else if self.eat(&Tok::Slash) {
            absolute = true;
            if self.peek().is_none() {
                return Ok(LocationPath {
                    absolute,
                    steps, // bare "/" selects the root
                });
            }
        } else {
            absolute = false;
        }
        steps.push(self.step()?);
        loop {
            if self.eat(&Tok::DoubleSlash) {
                steps.push(descendant_or_self_node());
                steps.push(self.step()?);
            } else if self.eat(&Tok::Slash) {
                steps.push(self.step()?);
            } else {
                break;
            }
        }
        Ok(LocationPath { absolute, steps })
    }

    fn step(&mut self) -> Result<Step, XPathError> {
        if self.eat(&Tok::Dot) {
            return Ok(Step {
                axis: Axis::SelfAxis,
                test: NodeTest::AnyNode,
                predicates: vec![],
            });
        }
        if self.eat(&Tok::DotDot) {
            return Ok(Step {
                axis: Axis::Parent,
                test: NodeTest::AnyNode,
                predicates: vec![],
            });
        }
        // (axis '::')? nodetest
        let mut axis = Axis::Child;
        if let Some(Tok::Name(n)) = self.peek() {
            if self.toks.get(self.pos + 1) == Some(&Tok::Axis) {
                axis = axis_by_name(n)
                    .ok_or_else(|| XPathError::new(format!("unknown axis '{n}'")))?;
                self.pos += 2;
            }
        }
        let test = self.node_test()?;
        let mut predicates = Vec::new();
        while self.eat(&Tok::LBracket) {
            predicates.push(self.or_expr()?);
            self.expect(&Tok::RBracket)?;
        }
        Ok(Step {
            axis,
            test,
            predicates,
        })
    }

    fn node_test(&mut self) -> Result<NodeTest, XPathError> {
        if self.eat(&Tok::Star) {
            return Ok(NodeTest::AnyElement);
        }
        match self.peek().cloned() {
            Some(Tok::Name(n)) => {
                self.pos += 1;
                if self.eat(&Tok::LParen) {
                    self.expect(&Tok::RParen)?;
                    match n.as_str() {
                        "text" => Ok(NodeTest::Text),
                        "node" => Ok(NodeTest::AnyNode),
                        other => Err(XPathError::new(format!(
                            "unsupported node-test function '{other}()'"
                        ))),
                    }
                } else {
                    Ok(NodeTest::Name(n))
                }
            }
            other => Err(XPathError::new(format!(
                "expected a node test, found {other:?}"
            ))),
        }
    }

    fn or_expr(&mut self) -> Result<Expr, XPathError> {
        let mut e = self.and_expr()?;
        while self.peek() == Some(&Tok::Name("or".into())) {
            self.pos += 1;
            let rhs = self.and_expr()?;
            e = Expr::Or(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, XPathError> {
        let mut e = self.cmp_expr()?;
        while self.peek() == Some(&Tok::Name("and".into())) {
            self.pos += 1;
            let rhs = self.cmp_expr()?;
            e = Expr::And(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<Expr, XPathError> {
        let lhs = self.value()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Some(CmpOp::Eq),
            Some(Tok::Ne) => Some(CmpOp::Ne),
            Some(Tok::Lt) => Some(CmpOp::Lt),
            Some(Tok::Le) => Some(CmpOp::Le),
            Some(Tok::Gt) => Some(CmpOp::Gt),
            Some(Tok::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.value()?;
            Ok(Expr::Cmp(Box::new(lhs), op, Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn value(&mut self) -> Result<Expr, XPathError> {
        match self.peek().cloned() {
            Some(Tok::Number(n)) => {
                self.pos += 1;
                Ok(Expr::Number(n))
            }
            Some(Tok::Literal(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(s))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.or_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Name(n)) if self.toks.get(self.pos + 1) == Some(&Tok::LParen) => {
                match n.as_str() {
                    "not" => {
                        self.pos += 2;
                        let e = self.or_expr()?;
                        self.expect(&Tok::RParen)?;
                        Ok(Expr::Not(Box::new(e)))
                    }
                    "position" => {
                        self.pos += 2;
                        self.expect(&Tok::RParen)?;
                        Ok(Expr::Position)
                    }
                    "last" => {
                        self.pos += 2;
                        self.expect(&Tok::RParen)?;
                        Ok(Expr::Last)
                    }
                    "count" => {
                        self.pos += 2;
                        let p = self.location_path()?;
                        self.expect(&Tok::RParen)?;
                        Ok(Expr::Count(p))
                    }
                    // text() / node() as a relative path step
                    "text" | "node" => Ok(Expr::Path(self.location_path()?)),
                    other => Err(XPathError::new(format!("unknown function '{other}'"))),
                }
            }
            Some(_) => Ok(Expr::Path(self.location_path()?)),
            None => Err(XPathError::new("expected an expression")),
        }
    }
}

fn descendant_or_self_node() -> Step {
    Step {
        axis: Axis::DescendantOrSelf,
        test: NodeTest::AnyNode,
        predicates: vec![],
    }
}

fn axis_by_name(n: &str) -> Option<Axis> {
    Some(match n {
        "child" => Axis::Child,
        "descendant" => Axis::Descendant,
        "descendant-or-self" => Axis::DescendantOrSelf,
        "parent" => Axis::Parent,
        "ancestor" => Axis::Ancestor,
        "ancestor-or-self" => Axis::AncestorOrSelf,
        "following-sibling" => Axis::FollowingSibling,
        "preceding-sibling" => Axis::PrecedingSibling,
        "following" => Axis::Following,
        "preceding" => Axis::Preceding,
        "self" => Axis::SelfAxis,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbreviations_expand() {
        let q = parse("//a").unwrap();
        assert!(q.absolute);
        assert_eq!(q.steps.len(), 2);
        assert_eq!(q.steps[0].axis, Axis::DescendantOrSelf);
        assert_eq!(q.steps[1].axis, Axis::Child);
        let q = parse("a/../b").unwrap();
        assert!(!q.absolute);
        assert_eq!(q.steps[1].axis, Axis::Parent);
    }

    #[test]
    fn explicit_axes() {
        let q = parse("/descendant::li/following-sibling::li").unwrap();
        assert_eq!(q.steps[0].axis, Axis::Descendant);
        assert_eq!(q.steps[1].axis, Axis::FollowingSibling);
    }

    #[test]
    fn predicates_nest() {
        let q = parse("//tr[td[a] and not(th)]").unwrap();
        let pred = &q.steps[1].predicates[0];
        assert!(matches!(pred, Expr::And(_, _)));
    }

    #[test]
    fn comparisons_and_functions() {
        let q = parse("//li[position() = last()]").unwrap();
        assert!(matches!(
            &q.steps[1].predicates[0],
            Expr::Cmp(a, CmpOp::Eq, b)
                if matches!(**a, Expr::Position) && matches!(**b, Expr::Last)
        ));
        let q = parse("//tr[count(td) >= 2]").unwrap();
        assert!(matches!(
            &q.steps[1].predicates[0],
            Expr::Cmp(_, CmpOp::Ge, _)
        ));
    }

    #[test]
    fn bare_slash_selects_root() {
        let q = parse("/").unwrap();
        assert!(q.absolute && q.steps.is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(parse("//").is_err());
        assert!(parse("a[").is_err());
        assert!(parse("a]").is_err());
        assert!(parse("foo::a").is_err());
        assert!(parse("a[frobnicate(2)]").is_err());
    }

    #[test]
    fn text_node_test() {
        let q = parse("//td/text()").unwrap();
        assert_eq!(q.steps[2].test, NodeTest::Text);
    }
}
