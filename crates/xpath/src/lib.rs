//! # lixto-xpath
//!
//! Core XPath and its complexity landscape (Section 4 of the PODS 2004
//! Lixto paper).
//!
//! The paper reports three headline results about XPath processing, all of
//! which this crate makes runnable:
//!
//! * **"All XPath engines available in 2002 took exponential time in the
//!   worst case"** — [`naive`] is that 2002-style evaluator: per-context-
//!   node recursion with duplicate contexts, exponential on crafted
//!   queries (experiment E4 regenerates the blow-up curve).
//! * **Theorem 4.1: XPath 1 is in PTIME (combined complexity)** — [`cvt`]
//!   is a polynomial-time evaluator in the spirit of the
//!   context-value-table algorithm of Gottlob–Koch–Pichler \[15\]:
//!   node-set-at-a-time evaluation with memoized predicate sets and
//!   per-context position/last handling. It supports an extended fragment
//!   (position(), last(), count(), string comparisons) beyond Core XPath.
//! * **Core XPath is linear-time** — [`core`] evaluates the navigational
//!   fragment in O(|Q|·|doc|) using per-axis document sweeps and global
//!   predicate satisfaction sets.
//!
//! [`positive`] classifies queries into the negation-free fragment
//! (LOGCFL-complete per Theorem 4.3 — experiment E6 uses this as an
//! ablation), and [`to_tmnf`] implements the Theorem 4.6 direction for
//! positive queries: Core XPath compiles to monadic datalog (TMNF-shaped
//! rules over τ_ur ∪ {child}) in linear time; `not(…)` translates via
//! stratified negation (the negation-free TMNF construction for full Core
//! XPath of \[12\] computes automata complements and is documented as
//! out of scope in DESIGN.md).
//!
//! # Example
//!
//! ```
//! use lixto_xpath::{parse, core::eval_core};
//!
//! let doc = lixto_html::parse(
//!     "<table><tr><td>item</td></tr><tr><td><a href='x'>Desc</a></td></tr></table>",
//! );
//! let q = parse("//tr[td/a]/td").unwrap();
//! let hits = eval_core(&doc, &q).unwrap();
//! assert_eq!(hits.len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod core;
pub mod cvt;
pub mod lexer;
pub mod naive;
pub mod parser;
pub mod positive;
pub mod to_tmnf;

pub use ast::{Expr, LocationPath, NodeTest, Step, XPathError};
pub use parser::parse;

#[cfg(test)]
mod tests {
    use super::*;

    /// The three evaluators must agree on Core XPath queries.
    #[test]
    fn evaluators_agree_on_core_queries() {
        let docs = [
            "<table><tr><td>item</td></tr><tr><td><a>D1</a></td><td>$1</td></tr></table>",
            "<ul><li>a<ul><li>b</li></ul></li><li>c</li></ul>",
            "<div><p>x</p><hr/><p>y</p><span><p>z</p></span></div>",
        ];
        let queries = [
            "/html/table/tr",
            "//td",
            "//tr[td/a]/td",
            "//li[not(ul)]",
            "//p[following-sibling::hr]",
            "//p[preceding::p]",
            "/descendant::li[ancestor::li]",
            "//tr[td and not(td/a)]",
            "//*[self::p or self::span]",
            "//text()",
        ];
        for d in &docs {
            let doc = lixto_html::parse(d);
            for q in &queries {
                let query = parse(q).unwrap();
                let via_core = core::eval_core(&doc, &query).unwrap();
                let via_cvt = cvt::eval(&doc, &query).unwrap();
                let mut via_naive = naive::eval_naive(&doc, &query);
                via_naive.sort_by_key(|&n| doc.order().pre(n));
                via_naive.dedup();
                assert_eq!(via_core, via_cvt, "core vs cvt on {q} over {d}");
                assert_eq!(via_core, via_naive, "core vs naive on {q} over {d}");
            }
        }
    }

    #[test]
    fn extended_features_only_in_cvt() {
        let doc = lixto_html::parse("<ul><li>a</li><li>b</li><li>c</li></ul>");
        let q = parse("//li[position() = 2]").unwrap();
        assert!(core::eval_core(&doc, &q).is_err(), "not Core XPath");
        let hits = cvt::eval(&doc, &q).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.text_content(hits[0]), "b");
    }
}
