//! The 2002-style naive XPath evaluator.
//!
//! "All XPath engines available in 2002 took exponential time in the worst
//! case to process XPath" \[15\] — because they evaluated location steps
//! *per context node*, carrying context **lists** (with duplicates) instead
//! of context sets, and re-evaluated predicates from scratch at every
//! node. This module reproduces that strategy faithfully so experiment E4
//! can regenerate the exponential-vs-polynomial contrast of Theorem 4.1:
//! on queries like `//a/parent::*/a/parent::*/…` the context list doubles
//! per step pair.
//!
//! Correct (modulo duplicates), deliberately not clever. Do not use for
//! anything but baselines.

use lixto_tree::{Document, NodeId};

use crate::ast::{CmpOp, Expr, LocationPath};

/// Evaluate `query` the 2002 way. The result may contain duplicates and is
/// in discovery order; callers sort/dedup for comparisons.
pub fn eval_naive(doc: &Document, query: &LocationPath) -> Vec<NodeId> {
    let start = vec![doc.root()];
    eval_path(doc, query, &start)
}

fn eval_path(doc: &Document, path: &LocationPath, context: &[NodeId]) -> Vec<NodeId> {
    // `None` marks the virtual document node above the root element.
    let mut current: Vec<Option<NodeId>> = if path.absolute {
        vec![None]
    } else {
        context.iter().map(|&n| Some(n)).collect()
    };
    if path.absolute && path.steps.is_empty() {
        return vec![doc.root()];
    }
    for step in &path.steps {
        let mut next: Vec<Option<NodeId>> = Vec::new();
        // Per context node — the exponential mistake: no dedup between
        // context nodes, so shared results multiply.
        for &cn in &current {
            let raw: Vec<Option<NodeId>> = match cn {
                Some(cn) => step.axis.partners(doc, cn).into_iter().map(Some).collect(),
                None => {
                    use lixto_tree::Axis;
                    match step.axis {
                        Axis::Child | Axis::FirstChild => vec![Some(doc.root())],
                        Axis::Descendant => {
                            doc.order().preorder().iter().map(|&n| Some(n)).collect()
                        }
                        Axis::DescendantOrSelf => std::iter::once(None)
                            .chain(doc.order().preorder().iter().map(|&n| Some(n)))
                            .collect(),
                        Axis::SelfAxis => vec![None],
                        _ => vec![],
                    }
                }
            };
            let candidates: Vec<Option<NodeId>> = raw
                .into_iter()
                .filter(|m| match m {
                    Some(m) => step.test.matches(doc, *m),
                    // The virtual node only passes node().
                    None => step.test == crate::ast::NodeTest::AnyNode,
                })
                .collect();
            let size = candidates.len();
            for (idx, m) in candidates.into_iter().enumerate() {
                let pos = idx + 1;
                let keep = match m {
                    Some(m) => step.predicates.iter().all(|p| truthy(doc, p, m, pos, size)),
                    None => step.predicates.is_empty(),
                };
                if keep {
                    next.push(m);
                }
            }
        }
        current = next;
    }
    current.into_iter().flatten().collect()
}

/// Predicate evaluation, re-done from scratch per candidate node.
fn truthy(doc: &Document, e: &Expr, node: NodeId, pos: usize, size: usize) -> bool {
    match e {
        Expr::And(a, b) => truthy(doc, a, node, pos, size) && truthy(doc, b, node, pos, size),
        Expr::Or(a, b) => truthy(doc, a, node, pos, size) || truthy(doc, b, node, pos, size),
        Expr::Not(a) => !truthy(doc, a, node, pos, size),
        Expr::Path(p) => !eval_path(doc, p, &[node]).is_empty(),
        Expr::Number(x) => *x != 0.0,
        Expr::Literal(s) => !s.is_empty(),
        Expr::Position | Expr::Last | Expr::Count(_) => {
            number_value(doc, e, node, pos, size) != 0.0
        }
        Expr::Cmp(a, op, b) => compare(doc, a, *op, b, node, pos, size),
    }
}

fn number_value(doc: &Document, e: &Expr, node: NodeId, pos: usize, size: usize) -> f64 {
    match e {
        Expr::Number(x) => *x,
        Expr::Position => pos as f64,
        Expr::Last => size as f64,
        Expr::Count(p) => eval_path(doc, p, &[node]).len() as f64,
        _ => f64::NAN,
    }
}

fn compare(
    doc: &Document,
    a: &Expr,
    op: CmpOp,
    b: &Expr,
    node: NodeId,
    pos: usize,
    size: usize,
) -> bool {
    // Node-set operands compare existentially over string values; other
    // operands numerically / stringly.
    let cmp_str = |x: &str, y: &str| match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    };
    let cmp_num = |x: f64, y: f64| match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    };
    match (a, b) {
        (Expr::Path(p), rhs) => {
            let nodes = eval_path(doc, p, &[node]);
            nodes.iter().any(|&m| {
                let sv = doc.text_content(m);
                match rhs {
                    Expr::Literal(s) => cmp_str(&sv, s),
                    _ => cmp_num(
                        sv.trim().parse().unwrap_or(f64::NAN),
                        number_value(doc, rhs, node, pos, size),
                    ),
                }
            })
        }
        (lhs, Expr::Path(p)) => {
            let nodes = eval_path(doc, p, &[node]);
            nodes.iter().any(|&m| {
                let sv = doc.text_content(m);
                match lhs {
                    Expr::Literal(s) => cmp_str(s, &sv),
                    _ => cmp_num(
                        number_value(doc, lhs, node, pos, size),
                        sv.trim().parse().unwrap_or(f64::NAN),
                    ),
                }
            })
        }
        (Expr::Literal(x), Expr::Literal(y)) => cmp_str(x, y),
        (lhs, rhs) => cmp_num(
            number_value(doc, lhs, node, pos, size),
            number_value(doc, rhs, node, pos, size),
        ),
    }
}

/// The pathological query family of experiment E4:
/// `//a/parent::*/a/parent::*/…` with `depth` parent/child zig-zags. On a
/// flat document with one parent holding `width` `<a>` children, the naive
/// context list grows by a factor `width` per zig-zag.
pub fn pathological_query(depth: usize) -> String {
    let mut q = String::from("//a");
    for _ in 0..depth {
        q.push_str("/parent::*/a");
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn agrees_with_core_after_dedup() {
        let doc = lixto_html::parse("<div><a>1</a><a>2</a><b><a>3</a></b></div>");
        let q = parse("//a").unwrap();
        let mut got = eval_naive(&doc, &q);
        got.sort_by_key(|&n| doc.order().pre(n));
        got.dedup();
        let want = crate::core::eval_core(&doc, &q).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn duplicates_grow_exponentially() {
        // 5 <a> children: //a = 5 results; each parent::*/a zig-zag
        // multiplies by 5.
        let doc = lixto_html::parse("<div><a/><a/><a/><a/><a/></div>");
        let q1 = parse(&pathological_query(1)).unwrap();
        let q2 = parse(&pathological_query(2)).unwrap();
        assert_eq!(eval_naive(&doc, &q1).len(), 25);
        assert_eq!(eval_naive(&doc, &q2).len(), 125);
    }

    #[test]
    fn position_and_last() {
        let doc = lixto_html::parse("<ul><li>a</li><li>b</li><li>c</li></ul>");
        let q = parse("//li[position() = last()]").unwrap();
        let hits = eval_naive(&doc, &q);
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.text_content(hits[0]), "c");
    }

    #[test]
    fn string_comparison() {
        let doc = lixto_html::parse("<tr><td>item</td><td>other</td></tr>");
        let q = parse("//td[. = 'item']").unwrap();
        // "." is self::node(); its string value is the text content.
        let hits = eval_naive(&doc, &q);
        assert_eq!(hits.len(), 1);
    }
}
