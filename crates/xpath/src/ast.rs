//! XPath abstract syntax.

use lixto_tree::Axis;

/// Error type shared by the parser and the evaluators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    /// Description.
    pub message: String,
}

impl XPathError {
    pub(crate) fn new(m: impl Into<String>) -> XPathError {
        XPathError { message: m.into() }
    }
}

impl std::fmt::Display for XPathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "xpath error: {}", self.message)
    }
}

impl std::error::Error for XPathError {}

/// A node test within a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// `*` — any element (not text).
    AnyElement,
    /// A name test.
    Name(String),
    /// `text()`.
    Text,
    /// `node()` — anything.
    AnyNode,
}

/// One location step `axis::test[pred]*`.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The axis.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Predicates, applied in order.
    pub predicates: Vec<Expr>,
}

/// A location path.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationPath {
    /// Absolute paths start at the root.
    pub absolute: bool,
    /// The steps.
    pub steps: Vec<Step>,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// An expression (used in predicates; a full query is a [`LocationPath`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A relative path — truthy iff non-empty.
    Path(LocationPath),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// `not(e)`.
    Not(Box<Expr>),
    /// Comparison; node-set operands compare existentially (XPath 1
    /// semantics).
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Literal(String),
    /// `position()`.
    Position,
    /// `last()`.
    Last,
    /// `count(path)`.
    Count(LocationPath),
}

impl NodeTest {
    /// Does node `n` of `doc` pass this test?
    pub fn matches(&self, doc: &lixto_tree::Document, n: lixto_tree::NodeId) -> bool {
        use lixto_tree::NodeKind;
        match self {
            NodeTest::AnyNode => true,
            NodeTest::Text => doc.kind(n) == NodeKind::Text,
            NodeTest::AnyElement => doc.kind(n) == NodeKind::Element,
            NodeTest::Name(name) => doc.kind(n) == NodeKind::Element && doc.label_str(n) == name,
        }
    }
}

impl LocationPath {
    /// Total number of steps including those nested in predicates —
    /// the |Q| of the complexity statements.
    pub fn size(&self) -> usize {
        self.steps
            .iter()
            .map(|s| 1 + s.predicates.iter().map(Expr::size).sum::<usize>())
            .sum()
    }
}

impl Expr {
    /// Size counting steps and operators.
    pub fn size(&self) -> usize {
        match self {
            Expr::Path(p) => p.size(),
            Expr::And(a, b) | Expr::Or(a, b) => 1 + a.size() + b.size(),
            Expr::Not(a) => 1 + a.size(),
            Expr::Cmp(a, _, b) => 1 + a.size() + b.size(),
            Expr::Number(_) | Expr::Literal(_) | Expr::Position | Expr::Last => 1,
            Expr::Count(p) => 1 + p.size(),
        }
    }
}

/// Axis display names (XPath spelling), used by the pretty printer and
/// parser error messages.
pub fn axis_name(axis: Axis) -> &'static str {
    axis.name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn size_counts_nested_steps() {
        let q = parse("//a[b/c and not(d)]/e").unwrap();
        // steps: desc-or-self::node, a, e = 3; predicate: b, c, d + and + not = 5
        assert_eq!(q.size(), 8);
    }

    #[test]
    fn node_tests() {
        let doc = lixto_html::parse("<p>hi</p>");
        let p = doc.node_ids().find(|&n| doc.label_str(n) == "p").unwrap();
        let t = doc.first_child(p).unwrap();
        assert!(NodeTest::Name("p".into()).matches(&doc, p));
        assert!(!NodeTest::Name("p".into()).matches(&doc, t));
        assert!(NodeTest::AnyElement.matches(&doc, p));
        assert!(!NodeTest::AnyElement.matches(&doc, t));
        assert!(NodeTest::Text.matches(&doc, t));
        assert!(NodeTest::AnyNode.matches(&doc, t));
    }
}
