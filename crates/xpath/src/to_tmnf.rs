//! Core XPath → monadic datalog (Theorem 4.6).
//!
//! "Each Core XPath query can be translated into an equivalent TMNF query
//! in linear time." The translation here emits one or two datalog rules
//! per query construct (so it is linear in |Q|), over the tree signature
//! τ_ur ∪ {child}; piping the result through
//! [`lixto_datalog::tmnf::to_tmnf`] yields strict TMNF (Definition 2.6).
//!
//! One honest caveat, recorded in DESIGN.md: `not(…)` is translated to
//! *stratified negation* (evaluated by the general engine), not to the
//! negation-free TMNF of the full theorem — that construction (from \[12\])
//! complements tree automata and is out of scope. Positive Core XPath
//! (the Theorem 4.3 fragment) translates fully into positive TMNF.

use lixto_datalog::ast::{Atom, Literal, Program, Rule, Term};
use lixto_datalog::{seminaive, structure::tree_db, EvalError, MonadicEvaluator};
use lixto_tree::{Axis, Document, NodeId};

use crate::ast::{Expr, LocationPath, NodeTest, Step, XPathError};

/// Result of the translation.
#[derive(Debug, Clone)]
pub struct Translation {
    /// The datalog program.
    pub program: Program,
    /// The answer predicate.
    pub answer: String,
    /// True if `not(…)` or `*` tests forced stratified negation.
    pub uses_negation: bool,
}

/// Translate a Core XPath query to datalog.
pub fn core_to_datalog(q: &LocationPath) -> Result<Translation, XPathError> {
    let mut cx = Ctx {
        rules: Vec::new(),
        fresh: 0,
        uses_negation: false,
        node_pred_done: false,
    };
    // Top-level queries start at the virtual document node (see the
    // evaluators); consume leading steps that interact with it, then
    // proceed with ordinary per-step translation.
    let mut cur: Option<String> = None; // None = still at the virtual node
    for step in &q.steps {
        cur = Some(match cur {
            None => cx.virtual_step(step)?,
            Some(p) => cx.step(&p, step)?,
        });
    }
    let answer = match cur {
        Some(p) => p,
        None => {
            // Bare "/": the root element stands in for the document node.
            let p = cx.fresh("start");
            cx.rule(&p, vec![Atom::new("root", vec![var("X")])]);
            p
        }
    };
    Ok(Translation {
        program: Program::new(cx.rules),
        answer,
        uses_negation: cx.uses_negation,
    })
}

/// Evaluate a translated query over a document: positive programs run
/// through the linear monadic pipeline (TMNF → ground → LTUR); programs
/// with negation run on the general engine.
pub fn eval_translated(doc: &Document, t: &Translation) -> Result<Vec<NodeId>, EvalError> {
    if !t.uses_negation {
        MonadicEvaluator::new(doc).eval_predicate(&t.program, &t.answer)
    } else {
        let db = tree_db(doc);
        let out = seminaive::eval(&db, &t.program)?;
        let mut nodes: Vec<NodeId> = out
            .tuples(&t.answer)
            .map(|tu| NodeId::from_index(tu[0] as usize))
            .collect();
        nodes.sort_by_key(|&n| doc.order().pre(n));
        Ok(nodes)
    }
}

fn var(n: &str) -> Term {
    Term::Var(n.to_string())
}

struct Ctx {
    rules: Vec<Rule>,
    fresh: usize,
    uses_negation: bool,
    node_pred_done: bool,
}

impl Ctx {
    fn fresh(&mut self, hint: &str) -> String {
        self.fresh += 1;
        format!("q_{hint}{}", self.fresh)
    }

    fn rule(&mut self, head: &str, body: Vec<Atom>) {
        self.rules.push(Rule {
            head: Atom::new(head, vec![var("X")]),
            body: body.into_iter().map(Literal::pos).collect(),
        });
    }

    fn rule_lits(&mut self, head: &str, body: Vec<Literal>) {
        self.rules.push(Rule {
            head: Atom::new(head, vec![var("X")]),
            body,
        });
    }

    /// `node(X)` — every node, defined by reachability from the root so
    /// the program stays tree-shaped for the monadic pipeline.
    fn node_pred(&mut self) -> String {
        if !self.node_pred_done {
            self.rule("q_node", vec![Atom::new("root", vec![var("X")])]);
            self.rules.push(Rule {
                head: Atom::new("q_node", vec![var("X")]),
                body: vec![
                    Literal::pos(Atom::new("q_node", vec![var("Y")])),
                    Literal::pos(Atom::new("child", vec![var("Y"), var("X")])),
                ],
            });
            self.node_pred_done = true;
        }
        "q_node".to_string()
    }

    /// Image of `from` under `axis`: returns a predicate holding exactly on
    /// {x : ∃y from(y) ∧ axis(y, x)}.
    fn axis_pred(&mut self, from: &str, axis: Axis) -> String {
        use Axis::*;
        let out = self.fresh("ax");
        let step = |cx: &mut Ctx, head: &str, src: &str, rel: &str| {
            cx.rule(
                head,
                vec![
                    Atom::new(src, vec![var("Y")]),
                    Atom::new(rel, vec![var("Y"), var("X")]),
                ],
            );
        };
        match axis {
            SelfAxis => {
                self.rule(&out, vec![Atom::new(from, vec![var("X")])]);
            }
            Child => step(self, &out.clone(), from, "child"),
            Parent => step(self, &out.clone(), from, "child_inv"),
            NextSibling => step(self, &out.clone(), from, "nextsibling"),
            PrevSibling => step(self, &out.clone(), from, "nextsibling_inv"),
            FirstChild => step(self, &out.clone(), from, "firstchild"),
            FirstChildInv => step(self, &out.clone(), from, "firstchild_inv"),
            Descendant => {
                step(self, &out.clone(), from, "child");
                step(self, &out.clone(), &out.clone(), "child");
            }
            Ancestor => {
                step(self, &out.clone(), from, "child_inv");
                step(self, &out.clone(), &out.clone(), "child_inv");
            }
            DescendantOrSelf => {
                self.rule(&out, vec![Atom::new(from, vec![var("X")])]);
                step(self, &out.clone(), &out.clone(), "child");
            }
            AncestorOrSelf => {
                self.rule(&out, vec![Atom::new(from, vec![var("X")])]);
                step(self, &out.clone(), &out.clone(), "child_inv");
            }
            FollowingSibling => {
                step(self, &out.clone(), from, "nextsibling");
                step(self, &out.clone(), &out.clone(), "nextsibling");
            }
            PrecedingSibling => {
                step(self, &out.clone(), from, "nextsibling_inv");
                step(self, &out.clone(), &out.clone(), "nextsibling_inv");
            }
            FollowingSiblingOrSelf => {
                self.rule(&out, vec![Atom::new(from, vec![var("X")])]);
                step(self, &out.clone(), &out.clone(), "nextsibling");
            }
            PrecedingSiblingOrSelf => {
                self.rule(&out, vec![Atom::new(from, vec![var("X")])]);
                step(self, &out.clone(), &out.clone(), "nextsibling_inv");
            }
            Following => {
                // anc-or-self ∘ following-sibling ∘ desc-or-self
                let a = self.axis_pred(from, AncestorOrSelf);
                let f = self.axis_pred(&a, FollowingSibling);
                let d = self.axis_pred(&f, DescendantOrSelf);
                self.rule(&out, vec![Atom::new(&d, vec![var("X")])]);
            }
            Preceding => {
                let a = self.axis_pred(from, AncestorOrSelf);
                let p = self.axis_pred(&a, PrecedingSibling);
                let d = self.axis_pred(&p, DescendantOrSelf);
                self.rule(&out, vec![Atom::new(&d, vec![var("X")])]);
            }
        }
        out
    }

    /// Node-test filter over `from`.
    fn test_pred(&mut self, from: &str, test: &NodeTest) -> String {
        match test {
            NodeTest::AnyNode => from.to_string(),
            NodeTest::Name(n) => {
                let out = self.fresh("test");
                self.rule(
                    &out,
                    vec![
                        Atom::new(from, vec![var("X")]),
                        Atom::new("label", vec![var("X"), Term::Const(n.clone())]),
                    ],
                );
                out
            }
            NodeTest::Text => {
                let out = self.fresh("test");
                self.rule(
                    &out,
                    vec![
                        Atom::new(from, vec![var("X")]),
                        Atom::new("label", vec![var("X"), Term::Const("#text".into())]),
                    ],
                );
                out
            }
            NodeTest::AnyElement => {
                // element ⇔ not a text node: needs stratified negation.
                self.uses_negation = true;
                let node = self.node_pred();
                let textp = self.fresh("textnode");
                self.rule(
                    &textp,
                    vec![Atom::new(
                        "label",
                        vec![var("X"), Term::Const("#text".into())],
                    )],
                );
                let out = self.fresh("test");
                self.rule_lits(
                    &out,
                    vec![
                        Literal::pos(Atom::new(from, vec![var("X")])),
                        Literal::pos(Atom::new(node, vec![var("X")])),
                        Literal::neg(Atom::new(textp, vec![var("X")])),
                    ],
                );
                out
            }
        }
    }

    /// First step, taken from the virtual document node.
    fn virtual_step(&mut self, step: &Step) -> Result<String, XPathError> {
        use Axis::*;
        let base = match step.axis {
            Child | FirstChild => {
                let p = self.fresh("vroot");
                self.rule(&p, vec![Atom::new("root", vec![var("X")])]);
                p
            }
            Descendant | DescendantOrSelf => self.node_pred(),
            // Other axes from the document node select nothing.
            _ => self.fresh("vempty"),
        };
        let mut cur = self.test_pred(&base, &step.test);
        for pred in &step.predicates {
            let sat = self.pred_expr(pred)?;
            let out = self.fresh("filt");
            self.rule(
                &out,
                vec![
                    Atom::new(&cur, vec![var("X")]),
                    Atom::new(&sat, vec![var("X")]),
                ],
            );
            cur = out;
        }
        Ok(cur)
    }

    fn step(&mut self, from: &str, step: &Step) -> Result<String, XPathError> {
        let image = self.axis_pred(from, step.axis);
        let mut cur = self.test_pred(&image, &step.test);
        for pred in &step.predicates {
            let sat = self.pred_expr(pred)?;
            let out = self.fresh("filt");
            self.rule(
                &out,
                vec![
                    Atom::new(&cur, vec![var("X")]),
                    Atom::new(&sat, vec![var("X")]),
                ],
            );
            cur = out;
        }
        Ok(cur)
    }

    /// Satisfaction predicate of a Core XPath boolean expression.
    fn pred_expr(&mut self, e: &Expr) -> Result<String, XPathError> {
        match e {
            Expr::And(a, b) => {
                let pa = self.pred_expr(a)?;
                let pb = self.pred_expr(b)?;
                let out = self.fresh("and");
                self.rule(
                    &out,
                    vec![
                        Atom::new(&pa, vec![var("X")]),
                        Atom::new(&pb, vec![var("X")]),
                    ],
                );
                Ok(out)
            }
            Expr::Or(a, b) => {
                let pa = self.pred_expr(a)?;
                let pb = self.pred_expr(b)?;
                let out = self.fresh("or");
                self.rule(&out, vec![Atom::new(&pa, vec![var("X")])]);
                self.rule(&out, vec![Atom::new(&pb, vec![var("X")])]);
                Ok(out)
            }
            Expr::Not(a) => {
                self.uses_negation = true;
                let pa = self.pred_expr(a)?;
                let node = self.node_pred();
                let out = self.fresh("not");
                self.rule_lits(
                    &out,
                    vec![
                        Literal::pos(Atom::new(node, vec![var("X")])),
                        Literal::neg(Atom::new(pa, vec![var("X")])),
                    ],
                );
                Ok(out)
            }
            Expr::Path(p) if p.absolute => {
                // Global boolean: translate the absolute path, then spread
                // "non-empty" to every node via a disconnected rule (the
                // TMNF rewriter turns it into the up-and-down propagation).
                let mut cur: Option<String> = None;
                for s in &p.steps {
                    cur = Some(match cur {
                        None => self.virtual_step(s)?,
                        Some(c) => self.step(&c, s)?,
                    });
                }
                let cur = match cur {
                    Some(c) => c,
                    None => {
                        let c = self.fresh("abs");
                        self.rule(&c, vec![Atom::new("root", vec![var("X")])]);
                        c
                    }
                };
                let out = self.fresh("glob");
                self.rules.push(Rule {
                    head: Atom::new(&out, vec![var("X")]),
                    body: vec![
                        Literal::pos(Atom::new("label", vec![var("X"), var("L1")])),
                        Literal::pos(Atom::new(cur, vec![var("Z")])),
                    ],
                });
                Ok(out)
            }
            Expr::Path(p) => {
                // Backwards: innermost step first, pull through inverse
                // axes back to the origin.
                let mut cur: Option<String> = None;
                for s in p.steps.iter().rev() {
                    // Conditions at this step's node.
                    let base = match &cur {
                        Some(c) => c.clone(),
                        None => self.node_pred(),
                    };
                    let mut here = self.test_pred(&base, &s.test);
                    for pred in &s.predicates {
                        let sat = self.pred_expr(pred)?;
                        let out = self.fresh("pfilt");
                        self.rule(
                            &out,
                            vec![
                                Atom::new(&here, vec![var("X")]),
                                Atom::new(&sat, vec![var("X")]),
                            ],
                        );
                        here = out;
                    }
                    // Pull back: origin x relates to here-y via axis(x,y),
                    // i.e. image of `here` under the inverse axis.
                    cur = Some(self.axis_pred(&here, s.axis.inverse()));
                }
                Ok(cur.unwrap_or_else(|| self.node_pred()))
            }
            Expr::Cmp(..)
            | Expr::Number(_)
            | Expr::Literal(_)
            | Expr::Position
            | Expr::Last
            | Expr::Count(_) => Err(XPathError::new(
                "only Core XPath translates to TMNF (Theorem 4.6)",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::eval_core;
    use crate::parse;
    use crate::positive::is_positive_core;

    fn check(q: &str, html: &str) {
        let query = parse(q).unwrap();
        let doc = lixto_html::parse(html);
        let want = eval_core(&doc, &query).unwrap();
        let t = core_to_datalog(&query).unwrap();
        let got = eval_translated(&doc, &t).unwrap();
        assert_eq!(got, want, "query {q} over {html}");
        if is_positive_core(&query) {
            assert!(!t.uses_negation, "positive query must stay positive: {q}");
        }
    }

    const HTML: &str = "<div><table><tr><td>item</td></tr><tr><td><a>D</a></td>\
                        <td>$1</td></tr></table><hr/><p>after</p></div>";

    #[test]
    fn simple_paths() {
        check("//td", HTML);
        check("/html/div/table", HTML);
        check("//tr/td", HTML);
        check("//text()", HTML);
    }

    #[test]
    fn predicates() {
        check("//tr[td/a]/td", HTML);
        check("//tr[td]", HTML);
        check("//td[a or ancestor::div]", HTML);
    }

    #[test]
    fn negation_via_stratified_engine() {
        let q = parse("//tr[not(td/a)]").unwrap();
        let t = core_to_datalog(&q).unwrap();
        assert!(t.uses_negation);
        let doc = lixto_html::parse(HTML);
        let got = eval_translated(&doc, &t).unwrap();
        let want = eval_core(&doc, &q).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn context_axes_roundtrip() {
        check("//p[preceding-sibling::hr]", HTML);
        check("//td[following::p]", HTML);
        check("//a[preceding::td]", HTML);
        check("//td[ancestor::table]", HTML);
    }

    #[test]
    fn absolute_predicate_global() {
        check("//td[/html/div/hr]", HTML);
        check("//td[/html/div/blink]", HTML); // empty global
    }

    #[test]
    fn positive_output_passes_strict_tmnf() {
        let q = parse("//tr[td/a]/td").unwrap();
        let t = core_to_datalog(&q).unwrap();
        assert!(!t.uses_negation);
        let strict = lixto_datalog::tmnf::to_tmnf(
            &t.program,
            lixto_datalog::tmnf::TmnfOptions {
                eliminate_child: true,
            },
        )
        .unwrap();
        assert!(
            lixto_datalog::tmnf::is_tmnf(&strict.program),
            "Theorem 4.6: Core XPath lands in strict TMNF"
        );
    }

    #[test]
    fn translation_is_linear_in_query_size() {
        let mut sizes = Vec::new();
        for k in [2usize, 4, 8, 16] {
            let q = format!("//tr{}", "[td]/td/parent::tr".repeat(k));
            let query = parse(&q).unwrap();
            let t = core_to_datalog(&query).unwrap();
            sizes.push((query.size(), t.program.size()));
        }
        let r0 = sizes[0].1 as f64 / sizes[0].0 as f64;
        let r3 = sizes[3].1 as f64 / sizes[3].0 as f64;
        assert!(r3 < r0 * 2.0, "translation must stay linear: {sizes:?}");
    }
}
