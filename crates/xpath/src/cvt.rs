//! Polynomial-time evaluation of the extended XPath fragment —
//! the Theorem 4.1 algorithm class.
//!
//! Gottlob–Koch–Pichler showed XPath 1 has PTIME combined complexity via
//! *context-value tables*: every subexpression is evaluated once per
//! context, bottom-up, instead of once per (context × enclosing
//! recursion). This module implements that discipline in node-set style:
//!
//! * location paths are evaluated set-at-a-time (sharing the linear-time
//!   axis sweeps of [`core`](crate::core));
//! * steps whose predicates use `position()` / `last()` are expanded per
//!   context node, but each candidate is tested once — positions are known
//!   from the candidate list, never recomputed recursively;
//! * predicates *not* using position/last/comparisons are evaluated once
//!   globally into satisfaction sets and cached per subexpression
//!   (the "table" of the CVT algorithm);
//! * comparisons use XPath's existential node-set semantics with memoized
//!   string values.
//!
//! The result is polynomial in |Q|·|doc| — the shape experiment E4
//! contrasts with the exponential [`naive`](crate::naive) baseline.

use std::collections::HashMap;

use lixto_tree::{Axis, Document, NodeId};

use crate::ast::{CmpOp, Expr, LocationPath, Step, XPathError};
use crate::core::{axis_image, NodeSet};

/// Evaluate `query` (extended fragment) in polynomial time.
pub fn eval(doc: &Document, query: &LocationPath) -> Result<Vec<NodeId>, XPathError> {
    let mut cx = Cvt {
        doc,
        sat_cache: HashMap::new(),
        string_values: HashMap::new(),
    };
    let start = NodeSet::singleton(doc.len(), doc.root());
    let set = cx.eval_path(query, &start)?;
    Ok(set.to_vec(doc))
}

struct Cvt<'d> {
    doc: &'d Document,
    /// Satisfaction sets per (formatted) position-free predicate — the
    /// context-value table for boolean subexpressions.
    sat_cache: HashMap<String, NodeSet>,
    /// Memoized string values of nodes.
    string_values: HashMap<NodeId, String>,
}

impl Cvt<'_> {
    fn eval_path(&mut self, path: &LocationPath, start: &NodeSet) -> Result<NodeSet, XPathError> {
        let (mut current, mut virtual_ctx) = if path.absolute {
            (NodeSet::empty(self.doc.len()), true)
        } else {
            (start.clone(), false)
        };
        if path.absolute && path.steps.is_empty() {
            return Ok(NodeSet::singleton(self.doc.len(), self.doc.root()));
        }
        for step in &path.steps {
            let next_virtual = virtual_ctx
                && matches!(step.axis, Axis::SelfAxis | Axis::DescendantOrSelf)
                && step.test == crate::ast::NodeTest::AnyNode
                && step.predicates.is_empty();
            current = self.eval_step(step, &current, virtual_ctx)?;
            virtual_ctx = next_virtual;
        }
        Ok(current)
    }

    fn eval_step(
        &mut self,
        step: &Step,
        from: &NodeSet,
        virtual_ctx: bool,
    ) -> Result<NodeSet, XPathError> {
        let n = self.doc.len();
        let positional = step.predicates.iter().any(uses_position);
        if !positional {
            // Set-at-a-time: axis sweep + test + global satisfaction sets.
            let mut image = axis_image(self.doc, from, step.axis);
            if virtual_ctx {
                match step.axis {
                    Axis::Child | Axis::FirstChild => image.insert(self.doc.root()),
                    Axis::Descendant | Axis::DescendantOrSelf => {
                        image.union_with(&NodeSet::full(n))
                    }
                    _ => {}
                }
            }
            let mut out = NodeSet::empty(n);
            for i in 0..n {
                let node = NodeId::from_index(i);
                if image.contains(node) && step.test.matches(self.doc, node) {
                    out.insert(node);
                }
            }
            for pred in &step.predicates {
                let sat = self.sat_set(pred)?;
                out.intersect_with(&sat);
            }
            Ok(out)
        } else {
            // Positional: expand per context node — each candidate list is
            // materialized once, positions assigned by axis order.
            let mut out = NodeSet::empty(n);
            // The virtual document node is one more context if present.
            let mut contexts: Vec<Option<NodeId>> = Vec::new();
            if virtual_ctx {
                contexts.push(None);
            }
            for i in 0..n {
                let cn = NodeId::from_index(i);
                if from.contains(cn) {
                    contexts.push(Some(cn));
                }
            }
            for ctx in contexts {
                let raw: Vec<NodeId> = match ctx {
                    Some(cn) => step.axis.partners(self.doc, cn),
                    None => match step.axis {
                        Axis::Child | Axis::FirstChild => vec![self.doc.root()],
                        Axis::Descendant | Axis::DescendantOrSelf => {
                            self.doc.order().preorder().to_vec()
                        }
                        _ => vec![],
                    },
                };
                let mut candidates: Vec<NodeId> = raw
                    .into_iter()
                    .filter(|&m| step.test.matches(self.doc, m))
                    .collect();
                if is_reverse_axis(step.axis) {
                    candidates.reverse(); // positions count against document order
                }
                let size = candidates.len();
                'cand: for (idx, m) in candidates.iter().copied().enumerate() {
                    for pred in &step.predicates {
                        if !self.truthy(pred, m, idx + 1, size)? {
                            continue 'cand;
                        }
                    }
                    out.insert(m);
                }
            }
            Ok(out)
        }
    }

    /// Global satisfaction set for a position-free predicate, cached.
    fn sat_set(&mut self, e: &Expr) -> Result<NodeSet, XPathError> {
        let key = format!("{e:?}");
        if let Some(s) = self.sat_cache.get(&key) {
            return Ok(s.clone());
        }
        let n = self.doc.len();
        let s = match e {
            Expr::And(a, b) => {
                let mut s = self.sat_set(a)?;
                s.intersect_with(&self.sat_set(b)?);
                s
            }
            Expr::Or(a, b) => {
                let mut s = self.sat_set(a)?;
                s.union_with(&self.sat_set(b)?);
                s
            }
            Expr::Not(a) => {
                let mut s = self.sat_set(a)?;
                s.complement();
                s
            }
            Expr::Path(_) | Expr::Cmp(..) | Expr::Count(_) => {
                // Evaluate per node, but memoize: overall O(|e|·n²) worst
                // case, polynomial.
                let mut s = NodeSet::empty(n);
                for i in 0..n {
                    let node = NodeId::from_index(i);
                    if self.truthy(e, node, 1, 1)? {
                        s.insert(node);
                    }
                }
                s
            }
            Expr::Number(x) => {
                if *x != 0.0 {
                    NodeSet::full(n)
                } else {
                    NodeSet::empty(n)
                }
            }
            Expr::Literal(s0) => {
                if s0.is_empty() {
                    NodeSet::empty(n)
                } else {
                    NodeSet::full(n)
                }
            }
            Expr::Position | Expr::Last => {
                return Err(XPathError::new("position()/last() outside a step"))
            }
        };
        self.sat_cache.insert(key, s.clone());
        Ok(s)
    }

    fn truthy(
        &mut self,
        e: &Expr,
        node: NodeId,
        pos: usize,
        size: usize,
    ) -> Result<bool, XPathError> {
        Ok(match e {
            Expr::And(a, b) => {
                self.truthy(a, node, pos, size)? && self.truthy(b, node, pos, size)?
            }
            Expr::Or(a, b) => {
                self.truthy(a, node, pos, size)? || self.truthy(b, node, pos, size)?
            }
            Expr::Not(a) => !self.truthy(a, node, pos, size)?,
            Expr::Path(p) => {
                let start = NodeSet::singleton(self.doc.len(), node);
                !self.eval_path(p, &start)?.is_empty()
            }
            Expr::Number(x) => *x != 0.0,
            Expr::Literal(s) => !s.is_empty(),
            Expr::Position => pos != 0,
            Expr::Last => size != 0,
            Expr::Count(p) => {
                let start = NodeSet::singleton(self.doc.len(), node);
                !self.eval_path(p, &start)?.is_empty()
            }
            Expr::Cmp(a, op, b) => self.compare(a, *op, b, node, pos, size)?,
        })
    }

    fn number_value(
        &mut self,
        e: &Expr,
        node: NodeId,
        pos: usize,
        size: usize,
    ) -> Result<f64, XPathError> {
        Ok(match e {
            Expr::Number(x) => *x,
            Expr::Position => pos as f64,
            Expr::Last => size as f64,
            Expr::Count(p) => {
                let start = NodeSet::singleton(self.doc.len(), node);
                let set = self.eval_path(p, &start)?;
                set.to_vec(self.doc).len() as f64
            }
            Expr::Literal(s) => s.trim().parse().unwrap_or(f64::NAN),
            _ => f64::NAN,
        })
    }

    fn string_value(&mut self, node: NodeId) -> String {
        if let Some(s) = self.string_values.get(&node) {
            return s.clone();
        }
        let s = self.doc.text_content(node);
        self.string_values.insert(node, s.clone());
        s
    }

    fn compare(
        &mut self,
        a: &Expr,
        op: CmpOp,
        b: &Expr,
        node: NodeId,
        pos: usize,
        size: usize,
    ) -> Result<bool, XPathError> {
        let cmp_str = |x: &str, y: &str| match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        };
        let cmp_num = |x: f64, y: f64| match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        };
        match (a, b) {
            (Expr::Path(p), rhs) => {
                let start = NodeSet::singleton(self.doc.len(), node);
                let nodes = self.eval_path(p, &start)?.to_vec(self.doc);
                for m in nodes {
                    let sv = self.string_value(m);
                    let hit = match rhs {
                        Expr::Literal(s) => cmp_str(&sv, s),
                        _ => {
                            let rv = self.number_value(rhs, node, pos, size)?;
                            cmp_num(sv.trim().parse().unwrap_or(f64::NAN), rv)
                        }
                    };
                    if hit {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            (lhs, Expr::Path(p)) => {
                let start = NodeSet::singleton(self.doc.len(), node);
                let nodes = self.eval_path(p, &start)?.to_vec(self.doc);
                for m in nodes {
                    let sv = self.string_value(m);
                    let hit = match lhs {
                        Expr::Literal(s) => cmp_str(s, &sv),
                        _ => {
                            let lv = self.number_value(lhs, node, pos, size)?;
                            cmp_num(lv, sv.trim().parse().unwrap_or(f64::NAN))
                        }
                    };
                    if hit {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            (Expr::Literal(x), Expr::Literal(y)) => Ok(cmp_str(x, y)),
            (lhs, rhs) => {
                let lv = self.number_value(lhs, node, pos, size)?;
                let rv = self.number_value(rhs, node, pos, size)?;
                Ok(cmp_num(lv, rv))
            }
        }
    }
}

fn uses_position(e: &Expr) -> bool {
    match e {
        Expr::Position | Expr::Last => true,
        Expr::And(a, b) | Expr::Or(a, b) => uses_position(a) || uses_position(b),
        Expr::Not(a) => uses_position(a),
        Expr::Cmp(a, _, b) => uses_position(a) || uses_position(b),
        // position() inside a nested path's predicates is positional for
        // *that* step, not this one.
        Expr::Path(_) | Expr::Number(_) | Expr::Literal(_) | Expr::Count(_) => false,
    }
}

fn is_reverse_axis(axis: Axis) -> bool {
    matches!(
        axis,
        Axis::Ancestor
            | Axis::AncestorOrSelf
            | Axis::Parent
            | Axis::Preceding
            | Axis::PrecedingSibling
            | Axis::PrecedingSiblingOrSelf
            | Axis::PrevSibling
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn positional_predicates() {
        let doc = lixto_html::parse("<ul><li>a</li><li>b</li><li>c</li></ul>");
        let cases = [
            ("//li[position() = 1]", vec!["a"]),
            ("//li[position() = last()]", vec!["c"]),
            ("//li[position() >= 2]", vec!["b", "c"]),
            ("//li[not(position() = 2)]", vec!["a", "c"]),
        ];
        for (q, want) in cases {
            let query = parse(q).unwrap();
            let hits = eval(&doc, &query).unwrap();
            let texts: Vec<String> = hits.iter().map(|&n| doc.text_content(n)).collect();
            assert_eq!(texts, want, "{q}");
        }
    }

    #[test]
    fn reverse_axis_positions() {
        let doc = lixto_html::parse("<ul><li>a</li><li>b</li><li>c</li></ul>");
        // first preceding sibling of c = b.
        let q = parse("//li[. = 'c']/preceding-sibling::li[position() = 1]").unwrap();
        let hits = eval(&doc, &q).unwrap();
        assert_eq!(doc.text_content(hits[0]), "b");
    }

    #[test]
    fn count_comparisons() {
        let doc = lixto_html::parse(
            "<table><tr><td>1</td></tr><tr><td>1</td><td>2</td><td>3</td></tr></table>",
        );
        let q = parse("//tr[count(td) >= 2]").unwrap();
        let hits = eval(&doc, &q).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn string_comparison_existential() {
        let doc = lixto_html::parse(
            "<table><tr><td>item</td><td>price</td></tr><tr><td>x</td></tr></table>",
        );
        // XPath 1: td = 'item' holds if SOME td child matches.
        let q = parse("//tr[td = 'item']").unwrap();
        assert_eq!(eval(&doc, &q).unwrap().len(), 1);
        let q = parse("//tr[td != 'item']").unwrap();
        assert_eq!(eval(&doc, &q).unwrap().len(), 2, "existential !=");
    }

    #[test]
    fn numeric_text_comparison() {
        let doc = lixto_html::parse("<ul><li>10</li><li>25</li><li>3</li></ul>");
        let q = parse("//li[. > 9]").unwrap();
        assert_eq!(eval(&doc, &q).unwrap().len(), 2);
    }

    #[test]
    fn pathological_query_is_fast_here() {
        // The E4 killer query: polynomial here, exponential in naive.
        let doc = lixto_html::parse(&format!("<div>{}</div>", "<a>x</a>".repeat(8)));
        let q = parse(&crate::naive::pathological_query(12)).unwrap();
        let hits = eval(&doc, &q).unwrap();
        assert_eq!(hits.len(), 8); // the same 8 <a> nodes, deduplicated
    }
}
