//! Linear-time Core XPath evaluation.
//!
//! The Gottlob–Koch–Pichler node-set algebra \[15\]: a location path is
//! evaluated set-at-a-time with one O(|doc|) document sweep per step, and
//! each predicate path is evaluated *once globally* (backwards, using the
//! inverse axes) into a "satisfaction set", so the total running time is
//! O(|Q| · |doc|) regardless of intermediate node-set sizes. Compare
//! [`naive`](crate::naive), which recurses per context node and explodes.
//!
//! Only the navigational fragment (Core XPath) is allowed here:
//! `position()`, `last()`, comparisons and `count()` are rejected with an
//! error — use [`cvt`](crate::cvt) for the extended fragment.

use lixto_tree::{Axis, Document, NodeId};

use crate::ast::{Expr, LocationPath, NodeTest, Step, XPathError};

/// A node set as a bitmask over node indices.
#[derive(Clone)]
pub(crate) struct NodeSet {
    bits: Vec<u64>,
    n: usize,
}

impl NodeSet {
    pub(crate) fn empty(n: usize) -> NodeSet {
        NodeSet {
            bits: vec![0; n.div_ceil(64)],
            n,
        }
    }

    pub(crate) fn full(n: usize) -> NodeSet {
        let mut s = NodeSet::empty(n);
        for i in 0..n {
            s.insert(NodeId::from_index(i));
        }
        s
    }

    pub(crate) fn singleton(n: usize, node: NodeId) -> NodeSet {
        let mut s = NodeSet::empty(n);
        s.insert(node);
        s
    }

    #[inline]
    pub(crate) fn insert(&mut self, node: NodeId) {
        self.bits[node.index() / 64] |= 1 << (node.index() % 64);
    }

    #[inline]
    pub(crate) fn contains(&self, node: NodeId) -> bool {
        self.bits[node.index() / 64] & (1 << (node.index() % 64)) != 0
    }

    pub(crate) fn union_with(&mut self, other: &NodeSet) {
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    pub(crate) fn intersect_with(&mut self, other: &NodeSet) {
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
    }

    pub(crate) fn complement(&mut self) {
        for a in self.bits.iter_mut() {
            *a = !*a;
        }
        // Mask out the tail beyond n.
        let tail = self.n % 64;
        if tail != 0 {
            if let Some(last) = self.bits.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    pub(crate) fn to_vec(&self, doc: &Document) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = (0..self.n)
            .map(NodeId::from_index)
            .filter(|&i| self.contains(i))
            .collect();
        v.sort_by_key(|&x| doc.order().pre(x));
        v
    }
}

/// Evaluate a Core XPath query; errors if the query uses non-Core features.
pub fn eval_core(doc: &Document, query: &LocationPath) -> Result<Vec<NodeId>, XPathError> {
    let set = eval_path_set(doc, query, None)?;
    Ok(set.to_vec(doc))
}

/// Evaluate a path starting from `start` (None = per the path's
/// absoluteness: root for absolute, which is the only sensible default for
/// a top-level query).
pub(crate) fn eval_path_set(
    doc: &Document,
    path: &LocationPath,
    start: Option<&NodeSet>,
) -> Result<NodeSet, XPathError> {
    let n = doc.len();
    // Absolute paths start at the *virtual document node* (the XPath root,
    // sitting above the root element); `virtual_ctx` tracks whether it is
    // still in the context set.
    let (mut current, mut virtual_ctx) = if path.absolute {
        (NodeSet::empty(n), true)
    } else {
        match start {
            Some(s) => (s.clone(), false),
            None => (NodeSet::singleton(n, doc.root()), false),
        }
    };
    if path.absolute && path.steps.is_empty() {
        // Bare "/": we approximate the document node by the root element.
        return Ok(NodeSet::singleton(n, doc.root()));
    }
    for step in &path.steps {
        let next_virtual = virtual_ctx
            && matches!(step.axis, Axis::SelfAxis | Axis::DescendantOrSelf)
            && step.test == NodeTest::AnyNode
            && step.predicates.is_empty();
        current = apply_step(doc, &current, step, virtual_ctx)?;
        virtual_ctx = next_virtual;
    }
    Ok(current)
}

fn apply_step(
    doc: &Document,
    from: &NodeSet,
    step: &Step,
    virtual_ctx: bool,
) -> Result<NodeSet, XPathError> {
    let mut to = axis_image(doc, from, step.axis);
    if virtual_ctx {
        // Contributions of the virtual document node.
        match step.axis {
            Axis::Child | Axis::FirstChild => to.insert(doc.root()),
            Axis::Descendant | Axis::DescendantOrSelf => to.union_with(&NodeSet::full(doc.len())),
            _ => {}
        }
    }
    // Node test.
    let n = doc.len();
    let mut tested = NodeSet::empty(n);
    for i in 0..n {
        let node = NodeId::from_index(i);
        if to.contains(node) && step.test.matches(doc, node) {
            tested.insert(node);
        }
    }
    to = tested;
    // Predicates: each is a global satisfaction set intersected in.
    for pred in &step.predicates {
        let sat = eval_pred_set(doc, pred)?;
        to.intersect_with(&sat);
    }
    Ok(to)
}

/// The image of a node set under an axis, in O(|doc|) independent of |S|.
pub(crate) fn axis_image(doc: &Document, s: &NodeSet, axis: Axis) -> NodeSet {
    let n = doc.len();
    let mut out = NodeSet::empty(n);
    match axis {
        Axis::SelfAxis => out.union_with(s),
        Axis::Child => {
            for i in 0..n {
                let node = NodeId::from_index(i);
                if let Some(p) = doc.parent(node) {
                    if s.contains(p) {
                        out.insert(node);
                    }
                }
            }
        }
        Axis::Parent => {
            for i in 0..n {
                let node = NodeId::from_index(i);
                if s.contains(node) {
                    if let Some(p) = doc.parent(node) {
                        out.insert(p);
                    }
                }
            }
        }
        Axis::Descendant | Axis::DescendantOrSelf => {
            // Preorder sweep with an "inside how many S-subtrees" counter.
            let mut depth_stack: Vec<(usize, usize)> = Vec::new(); // (subtree_end, ...)
            for &node in doc.order().preorder() {
                let pre = doc.order().pre(node) as usize;
                while let Some(&(end, _)) = depth_stack.last() {
                    if pre >= end {
                        depth_stack.pop();
                    } else {
                        break;
                    }
                }
                let inside = !depth_stack.is_empty();
                if inside || (axis == Axis::DescendantOrSelf && s.contains(node)) {
                    out.insert(node);
                }
                if s.contains(node) {
                    let (_, end) = doc.order().subtree_range(node);
                    depth_stack.push((end, 0));
                }
            }
        }
        Axis::Ancestor | Axis::AncestorOrSelf => {
            // Reverse preorder: a node is an ancestor of an S-node iff one
            // of its children subtrees contains an S-node; propagate up.
            let mut contains_s = vec![false; n];
            for &node in doc.order().preorder().iter().rev() {
                let mut c = s.contains(node);
                if c && axis == Axis::AncestorOrSelf {
                    out.insert(node);
                }
                let mut has = false;
                for ch in doc.children(node) {
                    if contains_s[ch.index()] {
                        has = true;
                    }
                }
                if has {
                    out.insert(node);
                    c = true;
                }
                contains_s[node.index()] = c;
            }
        }
        Axis::FollowingSibling | Axis::FollowingSiblingOrSelf => {
            for &node in doc.order().preorder() {
                if let Some(prev) = doc.prev_sibling(node) {
                    if s.contains(prev) || out.contains(prev) {
                        out.insert(node);
                    }
                }
            }
            if axis == Axis::FollowingSiblingOrSelf {
                out.union_with(s);
            }
        }
        Axis::PrecedingSibling | Axis::PrecedingSiblingOrSelf => {
            for &node in doc.order().preorder().iter().rev() {
                if let Some(next) = doc.next_sibling(node) {
                    if s.contains(next) || out.contains(next) {
                        out.insert(node);
                    }
                }
            }
            if axis == Axis::PrecedingSiblingOrSelf {
                out.union_with(s);
            }
        }
        Axis::Following => {
            // y follows some x∈S iff pre(y) >= min over S of subtree_end.
            let mut min_end = usize::MAX;
            for i in 0..n {
                let node = NodeId::from_index(i);
                if s.contains(node) {
                    min_end = min_end.min(doc.order().subtree_range(node).1);
                }
            }
            for i in 0..n {
                let node = NodeId::from_index(i);
                if (doc.order().pre(node) as usize) >= min_end {
                    out.insert(node);
                }
            }
        }
        Axis::Preceding => {
            // y precedes some x∈S iff subtree_end(y) <= max over S of pre.
            let mut max_pre = None;
            for i in 0..n {
                let node = NodeId::from_index(i);
                if s.contains(node) {
                    let p = doc.order().pre(node) as usize;
                    max_pre = Some(max_pre.map_or(p, |m: usize| m.max(p)));
                }
            }
            if let Some(mp) = max_pre {
                for i in 0..n {
                    let node = NodeId::from_index(i);
                    if doc.order().subtree_range(node).1 <= mp {
                        out.insert(node);
                    }
                }
            }
        }
        Axis::NextSibling => {
            for i in 0..n {
                let node = NodeId::from_index(i);
                if s.contains(node) {
                    if let Some(ns) = doc.next_sibling(node) {
                        out.insert(ns);
                    }
                }
            }
        }
        Axis::PrevSibling => {
            for i in 0..n {
                let node = NodeId::from_index(i);
                if s.contains(node) {
                    if let Some(ps) = doc.prev_sibling(node) {
                        out.insert(ps);
                    }
                }
            }
        }
        Axis::FirstChild => {
            for i in 0..n {
                let node = NodeId::from_index(i);
                if s.contains(node) {
                    if let Some(fc) = doc.first_child(node) {
                        out.insert(fc);
                    }
                }
            }
        }
        Axis::FirstChildInv => {
            for i in 0..n {
                let node = NodeId::from_index(i);
                if s.contains(node) && doc.is_first_sibling(node) {
                    if let Some(p) = doc.parent(node) {
                        out.insert(p);
                    }
                }
            }
        }
    }
    out
}

/// The satisfaction set of a Core XPath predicate: all nodes where the
/// boolean expression holds. Paths inside predicates are evaluated
/// *backwards* (via inverse axes) so the whole predicate costs O(|p|·|doc|).
fn eval_pred_set(doc: &Document, e: &Expr) -> Result<NodeSet, XPathError> {
    let n = doc.len();
    match e {
        Expr::And(a, b) => {
            let mut s = eval_pred_set(doc, a)?;
            s.intersect_with(&eval_pred_set(doc, b)?);
            Ok(s)
        }
        Expr::Or(a, b) => {
            let mut s = eval_pred_set(doc, a)?;
            s.union_with(&eval_pred_set(doc, b)?);
            Ok(s)
        }
        Expr::Not(a) => {
            let mut s = eval_pred_set(doc, a)?;
            s.complement();
            Ok(s)
        }
        Expr::Path(p) => {
            if p.absolute {
                // Absolute path in a predicate: a global boolean.
                let set = eval_path_set(doc, p, None)?;
                Ok(if set.is_empty() {
                    NodeSet::empty(n)
                } else {
                    NodeSet::full(n)
                })
            } else {
                // Backwards: start from all nodes passing the final step's
                // test (and its predicates), walk inverse axes.
                eval_path_backwards(doc, p)
            }
        }
        Expr::Cmp(..)
        | Expr::Number(_)
        | Expr::Literal(_)
        | Expr::Position
        | Expr::Last
        | Expr::Count(_) => Err(XPathError::new(
            "not a Core XPath query (position/last/comparison/count) — use the cvt evaluator",
        )),
    }
}

/// Nodes from which the relative path `p` matches at least one node.
fn eval_path_backwards(doc: &Document, p: &LocationPath) -> Result<NodeSet, XPathError> {
    let n = doc.len();
    // sat = nodes satisfying "steps i.. exist", computed right to left.
    let mut sat = NodeSet::full(n);
    for step in p.steps.iter().rev() {
        // Nodes passing this step's test + predicates + continuation…
        let mut here = NodeSet::empty(n);
        for i in 0..n {
            let node = NodeId::from_index(i);
            if sat.contains(node) && step.test.matches(doc, node) {
                here.insert(node);
            }
        }
        for pred in &step.predicates {
            here.intersect_with(&eval_pred_set(doc, pred)?);
        }
        // …then pull back through the axis.
        sat = axis_image(doc, &here, step.axis.inverse());
    }
    Ok(sat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn texts(doc: &Document, nodes: &[NodeId]) -> Vec<String> {
        nodes.iter().map(|&n| doc.text_content(n)).collect()
    }

    #[test]
    fn absolute_and_descendant() {
        let doc = lixto_html::parse("<div><p>a</p><span><p>b</p></span></div>");
        let q = parse("//p").unwrap();
        let hits = eval_core(&doc, &q).unwrap();
        assert_eq!(texts(&doc, &hits), vec!["a", "b"]);
        let q = parse("/html/div/p").unwrap();
        let hits = eval_core(&doc, &q).unwrap();
        assert_eq!(texts(&doc, &hits), vec!["a"]);
    }

    #[test]
    fn predicates_with_negation() {
        let doc = lixto_html::parse("<ul><li>plain</li><li><b>bold</b></li><li>plain2</li></ul>");
        let q = parse("//li[not(b)]").unwrap();
        let hits = eval_core(&doc, &q).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn context_axes() {
        let doc = lixto_html::parse("<p>a</p><hr/><p>b</p><p>c</p>");
        let q = parse("//p[preceding-sibling::hr]").unwrap();
        let hits = eval_core(&doc, &q).unwrap();
        assert_eq!(texts(&doc, &hits), vec!["b", "c"]);
        let q = parse("//p[following::p]").unwrap();
        let hits = eval_core(&doc, &q).unwrap();
        assert_eq!(texts(&doc, &hits), vec!["a", "b"]);
    }

    #[test]
    fn ancestor_queries() {
        let doc = lixto_html::parse(
            "<table><tr><td><table><tr><td>inner</td></tr></table></td></tr></table>",
        );
        let q = parse("//td[ancestor::td]").unwrap();
        let hits = eval_core(&doc, &q).unwrap();
        assert_eq!(texts(&doc, &hits), vec!["inner"]);
    }

    #[test]
    fn absolute_path_in_predicate_is_global() {
        let doc = lixto_html::parse("<div><p>x</p></div><hr/>");
        let q = parse("//p[/html/hr]").unwrap();
        assert_eq!(eval_core(&doc, &q).unwrap().len(), 1);
        let doc2 = lixto_html::parse("<div><p>x</p></div>");
        assert_eq!(eval_core(&doc2, &q).unwrap().len(), 0);
    }

    #[test]
    fn non_core_features_rejected() {
        let doc = lixto_html::parse("<p/>");
        for q in [
            "//p[position() = 1]",
            "//p[count(a) > 2]",
            "//p[text() = 'x']",
        ] {
            let query = parse(q).unwrap();
            assert!(eval_core(&doc, &query).is_err(), "{q}");
        }
    }

    #[test]
    fn dot_and_dotdot() {
        let doc = lixto_html::parse("<div><p>a</p></div>");
        let q = parse("//p/..").unwrap();
        let hits = eval_core(&doc, &q).unwrap();
        assert_eq!(doc.label_str(hits[0]), "div");
        let q = parse("//p/.").unwrap();
        let hits = eval_core(&doc, &q).unwrap();
        assert_eq!(doc.label_str(hits[0]), "p");
    }

    #[test]
    fn linear_time_shape_sanity() {
        // 4x the document => roughly 4x the work; just verify correctness
        // at size here (timing is bench territory).
        let row = "<tr><td><a>d</a></td><td>$1</td></tr>";
        let doc = lixto_html::parse(&format!("<table>{}</table>", row.repeat(100)));
        let q = parse("//tr[td/a]/td").unwrap();
        assert_eq!(eval_core(&doc, &q).unwrap().len(), 200);
    }
}
