//! XPath tokenizer.

use crate::ast::XPathError;

/// Tokens of the XPath grammar subset we support.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Name (element name, axis name, function name).
    Name(String),
    /// Numeric literal.
    Number(f64),
    /// String literal (quotes stripped).
    Literal(String),
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `::`
    Axis,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Tokenize an XPath string.
pub fn lex(src: &str) -> Result<Vec<Tok>, XPathError> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '/' => {
                if b.get(i + 1) == Some(&'/') {
                    out.push(Tok::DoubleSlash);
                    i += 2;
                } else {
                    out.push(Tok::Slash);
                    i += 1;
                }
            }
            ':' => {
                if b.get(i + 1) == Some(&':') {
                    out.push(Tok::Axis);
                    i += 2;
                } else {
                    return Err(XPathError::new("single ':' is not valid"));
                }
            }
            '[' => {
                out.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Tok::RBracket);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                if b.get(i + 1) == Some(&'.') {
                    out.push(Tok::DotDot);
                    i += 2;
                } else {
                    out.push(Tok::Dot);
                    i += 1;
                }
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '!' => {
                if b.get(i + 1) == Some(&'=') {
                    out.push(Tok::Ne);
                    i += 2;
                } else {
                    return Err(XPathError::new("'!' must be followed by '='"));
                }
            }
            '<' => {
                if b.get(i + 1) == Some(&'=') {
                    out.push(Tok::Le);
                    i += 2;
                } else {
                    out.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&'=') {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            '"' | '\'' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != quote {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(XPathError::new("unterminated string literal"));
                }
                out.push(Tok::Literal(b[start..j].iter().collect()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == '.') {
                    i += 1;
                }
                let s: String = b[start..i].iter().collect();
                let n: f64 = s
                    .parse()
                    .map_err(|_| XPathError::new(format!("bad number '{s}'")))?;
                out.push(Tok::Number(n));
            }
            c if c.is_alphanumeric() || c == '_' || c == '#' => {
                let start = i;
                while i < b.len()
                    && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '-' || b[i] == '#')
                {
                    i += 1;
                }
                out.push(Tok::Name(b[start..i].iter().collect()));
            }
            other => return Err(XPathError::new(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let t = lex("//tr[td/a]/td").unwrap();
        assert_eq!(t[0], Tok::DoubleSlash);
        assert!(matches!(&t[1], Tok::Name(n) if n == "tr"));
        assert_eq!(t[2], Tok::LBracket);
    }

    #[test]
    fn operators_and_literals() {
        let t = lex(r#"a[position() >= 2 and text() != 'x']"#).unwrap();
        assert!(t.contains(&Tok::Ge));
        assert!(t.contains(&Tok::Ne));
        assert!(t.contains(&Tok::Literal("x".into())));
        assert!(t.contains(&Tok::Number(2.0)));
    }

    #[test]
    fn axis_and_abbreviations() {
        let t = lex("ancestor::table/..").unwrap();
        assert!(t.contains(&Tok::Axis));
        assert!(t.contains(&Tok::DotDot));
    }

    #[test]
    fn errors() {
        assert!(lex("a:b").is_err());
        assert!(lex("'open").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("a § b").is_err());
    }
}
