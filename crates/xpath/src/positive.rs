//! The positive (negation-free) fragment of Core XPath.
//!
//! Theorem 4.3 of the paper: positive Core XPath is LOGCFL-complete —
//! inside NC2, hence (unlike full Core XPath, which is P-complete by
//! Theorem 4.2) amenable to parallel evaluation. We cannot measure
//! complexity classes, but the classifier here drives experiment E6's
//! ablation: negation is what forces the sequential complement operations
//! in the evaluator.

use crate::ast::{Expr, LocationPath};

/// Is the query in *Core XPath* (navigational only)?
pub fn is_core(q: &LocationPath) -> bool {
    q.steps
        .iter()
        .all(|s| s.predicates.iter().all(expr_is_core))
}

fn expr_is_core(e: &Expr) -> bool {
    match e {
        Expr::Path(p) => is_core(p),
        Expr::And(a, b) | Expr::Or(a, b) => expr_is_core(a) && expr_is_core(b),
        Expr::Not(a) => expr_is_core(a),
        Expr::Cmp(..)
        | Expr::Number(_)
        | Expr::Literal(_)
        | Expr::Position
        | Expr::Last
        | Expr::Count(_) => false,
    }
}

/// Is the query in *positive* Core XPath (no `not(…)` anywhere)?
pub fn is_positive_core(q: &LocationPath) -> bool {
    is_core(q)
        && q.steps
            .iter()
            .all(|s| s.predicates.iter().all(expr_is_positive))
}

fn expr_is_positive(e: &Expr) -> bool {
    match e {
        Expr::Path(p) => p
            .steps
            .iter()
            .all(|s| s.predicates.iter().all(expr_is_positive)),
        Expr::And(a, b) | Expr::Or(a, b) => expr_is_positive(a) && expr_is_positive(b),
        Expr::Not(_) => false,
        _ => false,
    }
}

/// Count the `not(…)` operators in a query (the E6 ablation knob).
pub fn negation_count(q: &LocationPath) -> usize {
    q.steps
        .iter()
        .map(|s| s.predicates.iter().map(expr_negs).sum::<usize>())
        .sum()
}

fn expr_negs(e: &Expr) -> usize {
    match e {
        Expr::Path(p) => negation_count(p),
        Expr::And(a, b) | Expr::Or(a, b) => expr_negs(a) + expr_negs(b),
        Expr::Not(a) => 1 + expr_negs(a),
        Expr::Cmp(a, _, b) => expr_negs(a) + expr_negs(b),
        Expr::Count(p) => negation_count(p),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn classification() {
        let pos = parse("//tr[td/a and th]/td").unwrap();
        assert!(is_core(&pos));
        assert!(is_positive_core(&pos));

        let neg = parse("//tr[not(td)]").unwrap();
        assert!(is_core(&neg));
        assert!(!is_positive_core(&neg));

        let ext = parse("//tr[position() = 1]").unwrap();
        assert!(!is_core(&ext));
        assert!(!is_positive_core(&ext));
    }

    #[test]
    fn negation_counting() {
        let q = parse("//a[not(b[not(c)]) and not(d)]").unwrap();
        assert_eq!(negation_count(&q), 3);
        let q = parse("//a[b]").unwrap();
        assert_eq!(negation_count(&q), 0);
    }
}
