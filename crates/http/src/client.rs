//! A minimal blocking HTTP/1.1 client with keep-alive, for driving the
//! gateway from tests, benches and examples (and anything else that
//! wants to talk to it without external dependencies).
//!
//! The client can retry transient rejections for you: pass a
//! [`RetryPolicy`] to [`HttpClient::request_with_retry`] and `429 Too
//! Many Requests` / `503 Service Unavailable` responses are retried
//! with exponential backoff, honoring the server's `Retry-After` header
//! when present — the polite way to ride out the gateway's
//! backpressure instead of hammering it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::{Json, JsonError};

/// How [`HttpClient::request_with_retry`] treats 429/503 responses and
/// transient connection failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try included); the last attempt's
    /// response (or error) is returned as-is. Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Upper bound for any one sleep — also caps an honored
    /// `Retry-After`, so a misbehaving server cannot park the client.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (0-based), honoring a
    /// `Retry-After` value (seconds) when the server sent one.
    fn backoff(&self, retry: u32, retry_after: Option<u64>) -> Duration {
        let chosen = match retry_after {
            Some(secs) => Duration::from_secs(secs),
            None => self.base_backoff.saturating_mul(1u32 << retry.min(16)),
        };
        chosen.min(self.max_backoff)
    }
}

/// A parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// `(name, value)` headers, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of header `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy never needed for our own gateway).
    pub fn text(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap_or("")
    }

    /// Parse the body as JSON.
    pub fn json(&self) -> Result<Json, JsonError> {
        Json::parse(self.text())
    }
}

/// One keep-alive connection to an HTTP server.
pub struct HttpClient {
    stream: TcpStream,
    /// The resolved peer, kept for reconnects after the server closes
    /// the connection (e.g. a `Connection: close` on a 503 drain).
    peer: SocketAddr,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connect with a 30 s read timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr()?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            peer,
            buf: Vec::with_capacity(4096),
        })
    }

    /// Drop the current connection and dial the same peer again.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.peer)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        self.stream = stream;
        self.buf.clear();
        Ok(())
    }

    /// Issue one request and read the full response. The connection
    /// stays usable afterwards unless the server said
    /// `Connection: close`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&[u8]>,
    ) -> std::io::Result<HttpResponse> {
        let mut out = Vec::with_capacity(256 + body.map_or(0, <[u8]>::len));
        out.extend_from_slice(format!("{method} {path} HTTP/1.1\r\nhost: lixto\r\n").as_bytes());
        for (name, value) in headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(
            format!("content-length: {}\r\n\r\n", body.map_or(0, <[u8]>::len)).as_bytes(),
        );
        if let Some(body) = body {
            out.extend_from_slice(body);
        }
        self.stream.write_all(&out)?;
        self.read_response()
    }

    /// Issue a request, retrying 429/503 responses per `policy`. Sleeps
    /// the server's `Retry-After` when sent, else exponential backoff;
    /// reconnects when the server closed the connection alongside the
    /// rejection. Returns the first non-retryable response, or the
    /// final attempt's outcome once attempts are exhausted.
    ///
    /// Rejection retries are always safe: a 429/503 means the server
    /// refused the work without doing it. I/O *errors* are retried only
    /// for `GET`/`HEAD` — a lost response (timeout, connection drop) on
    /// any other method may mean the server already did the work, and
    /// re-sending would duplicate a non-idempotent operation (every
    /// accepted `PUT /wrappers` registers a new version, for one).
    pub fn request_with_retry(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&[u8]>,
        policy: RetryPolicy,
    ) -> std::io::Result<HttpResponse> {
        let attempts = policy.max_attempts.max(1);
        let retry_io = matches!(method, "GET" | "HEAD");
        let mut retry = 0;
        loop {
            let last = retry + 1 >= attempts;
            match self.request(method, path, headers, body) {
                Ok(response) if matches!(response.status, 429 | 503) && !last => {
                    let retry_after = response
                        .header("retry-after")
                        .and_then(|v| v.trim().parse::<u64>().ok());
                    let closing = response.header("connection") == Some("close");
                    std::thread::sleep(policy.backoff(retry, retry_after));
                    if closing {
                        self.reconnect()?;
                    }
                }
                Ok(response) => return Ok(response),
                Err(e) if retry_io && !last => {
                    // The peer may have closed a kept-alive connection
                    // under us; dial again after the backoff.
                    std::thread::sleep(policy.backoff(retry, None));
                    if self.reconnect().is_err() {
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
            retry += 1;
        }
    }

    /// `POST path` with a JSON body, retrying per `policy` — the
    /// backpressure-friendly way to drive `/extract`.
    pub fn post_json_with_retry(
        &mut self,
        path: &str,
        body: &str,
        policy: RetryPolicy,
    ) -> std::io::Result<HttpResponse> {
        self.request_with_retry(
            "POST",
            path,
            &[("content-type", "application/json")],
            Some(body.as_bytes()),
            policy,
        )
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", path, &[], None)
    }

    /// `GET path` with an `Accept` header.
    pub fn get_accept(&mut self, path: &str, accept: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", path, &[("accept", accept)], None)
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, body: &str) -> std::io::Result<HttpResponse> {
        self.request(
            "POST",
            path,
            &[("content-type", "application/json")],
            Some(body.as_bytes()),
        )
    }

    /// `PUT path` with a JSON body.
    pub fn put_json(&mut self, path: &str, body: &str) -> std::io::Result<HttpResponse> {
        self.request(
            "PUT",
            path,
            &[("content-type", "application/json")],
            Some(body.as_bytes()),
        )
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let malformed = |what: &str| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response: {what}"),
            )
        };
        loop {
            if let Some(header_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = std::str::from_utf8(&self.buf[..header_end])
                    .map_err(|_| malformed("not UTF-8"))?;
                let mut lines = head.split("\r\n");
                let status_line = lines.next().unwrap_or("");
                let status = status_line
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse::<u16>().ok())
                    .ok_or_else(|| malformed("status line"))?;
                let headers: Vec<(String, String)> = lines
                    .filter_map(|line| line.split_once(':'))
                    .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
                    .collect();
                let content_length = headers
                    .iter()
                    .find(|(n, _)| n == "content-length")
                    .and_then(|(_, v)| v.parse::<usize>().ok())
                    .ok_or_else(|| malformed("missing content-length"))?;
                let body_start = header_end + 4;
                let total = body_start + content_length;
                while self.buf.len() < total {
                    self.fill()?;
                }
                let body = self.buf[body_start..total].to_vec();
                self.buf.drain(..total);
                return Ok(HttpResponse {
                    status,
                    headers,
                    body,
                });
            }
            self.fill()?;
        }
    }

    fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-response",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A scripted server: each accepted connection serves requests off
    /// the script (status, retry-after), one script entry per request,
    /// closing the connection after every response (`Connection:
    /// close`) so the client's reconnect path is exercised too.
    fn scripted_server(script: Vec<(u16, Option<u64>)>) -> (SocketAddr, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let served = Arc::new(AtomicUsize::new(0));
        let count = served.clone();
        std::thread::spawn(move || {
            for (status, retry_after) in script {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                // Read the request head (our client always sends
                // content-length, and these tests use empty bodies).
                let mut buf = Vec::new();
                let mut chunk = [0u8; 1024];
                while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
                    match stream.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                }
                // Status 0 scripts a server that accepts the request and
                // drops the connection without answering (lost response).
                if status == 0 {
                    count.fetch_add(1, Ordering::SeqCst);
                    drop(stream);
                    continue;
                }
                let body = format!("{{\"status\":{status}}}");
                let retry_after = retry_after
                    .map(|s| format!("retry-after: {s}\r\n"))
                    .unwrap_or_default();
                let reason = match status {
                    200 => "OK",
                    429 => "Too Many Requests",
                    _ => "Service Unavailable",
                };
                // Count before writing: the client may observe the
                // response (and assert on the count) the instant the
                // bytes land, so the increment must already be visible.
                count.fetch_add(1, Ordering::SeqCst);
                let _ = stream.write_all(
                    format!(
                        "HTTP/1.1 {status} {reason}\r\n{retry_after}content-length: {}\r\nconnection: close\r\n\r\n{body}",
                        body.len()
                    )
                    .as_bytes(),
                );
            }
        });
        (addr, served)
    }

    fn fast_policy(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
        }
    }

    #[test]
    fn retries_429_until_success_honoring_retry_after() {
        let (addr, served) = scripted_server(vec![(429, Some(0)), (429, Some(0)), (200, None)]);
        let mut client = HttpClient::connect(addr).unwrap();
        let response = client
            .request_with_retry("GET", "/x", &[], None, fast_policy(5))
            .unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(
            served.load(Ordering::SeqCst),
            3,
            "two retries, then the hit"
        );
    }

    #[test]
    fn attempts_are_capped_and_the_last_rejection_is_returned() {
        let (addr, served) = scripted_server(vec![(503, None); 8]);
        let mut client = HttpClient::connect(addr).unwrap();
        let response = client
            .request_with_retry("GET", "/x", &[], None, fast_policy(3))
            .unwrap();
        assert_eq!(response.status, 503, "gave up with the server's answer");
        assert_eq!(
            served.load(Ordering::SeqCst),
            3,
            "exactly max_attempts requests hit the server"
        );
    }

    #[test]
    fn non_retryable_statuses_return_immediately() {
        let (addr, served) = scripted_server(vec![(200, None), (200, None)]);
        let mut client = HttpClient::connect(addr).unwrap();
        let response = client
            .request_with_retry("GET", "/x", &[], None, fast_policy(5))
            .unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(served.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn lost_responses_retry_gets_but_never_non_idempotent_methods() {
        // GET: a dropped response is retried (safe to re-issue).
        let (addr, served) = scripted_server(vec![(0, None), (200, None)]);
        let mut client = HttpClient::connect(addr).unwrap();
        let response = client
            .request_with_retry("GET", "/x", &[], None, fast_policy(3))
            .unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(served.load(Ordering::SeqCst), 2);

        // POST: the server may already have done the work, so a lost
        // response surfaces as an error instead of a duplicate send.
        let (addr, served) = scripted_server(vec![(0, None), (200, None)]);
        let mut client = HttpClient::connect(addr).unwrap();
        let err = client
            .request_with_retry("POST", "/x", &[], Some(b"{}"), fast_policy(3))
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        assert_eq!(served.load(Ordering::SeqCst), 1, "no duplicate POST");
    }

    #[test]
    fn backoff_caps_and_retry_after_priority() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(300),
        };
        assert_eq!(p.backoff(0, None), Duration::from_millis(100));
        assert_eq!(p.backoff(1, None), Duration::from_millis(200));
        assert_eq!(p.backoff(2, None), Duration::from_millis(300), "capped");
        assert_eq!(p.backoff(0, Some(0)), Duration::ZERO, "Retry-After wins");
        assert_eq!(
            p.backoff(0, Some(3600)),
            Duration::from_millis(300),
            "a huge Retry-After is capped too"
        );
    }
}
