//! A minimal blocking HTTP/1.1 client with keep-alive, for driving the
//! gateway from tests, benches and examples (and anything else that
//! wants to talk to it without external dependencies).

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::{Json, JsonError};

/// A parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// `(name, value)` headers, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of header `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy never needed for our own gateway).
    pub fn text(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap_or("")
    }

    /// Parse the body as JSON.
    pub fn json(&self) -> Result<Json, JsonError> {
        Json::parse(self.text())
    }
}

/// One keep-alive connection to an HTTP server.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connect with a 30 s read timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            buf: Vec::with_capacity(4096),
        })
    }

    /// Issue one request and read the full response. The connection
    /// stays usable afterwards unless the server said
    /// `Connection: close`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&[u8]>,
    ) -> std::io::Result<HttpResponse> {
        let mut out = Vec::with_capacity(256 + body.map_or(0, <[u8]>::len));
        out.extend_from_slice(format!("{method} {path} HTTP/1.1\r\nhost: lixto\r\n").as_bytes());
        for (name, value) in headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(
            format!("content-length: {}\r\n\r\n", body.map_or(0, <[u8]>::len)).as_bytes(),
        );
        if let Some(body) = body {
            out.extend_from_slice(body);
        }
        self.stream.write_all(&out)?;
        self.read_response()
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", path, &[], None)
    }

    /// `GET path` with an `Accept` header.
    pub fn get_accept(&mut self, path: &str, accept: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", path, &[("accept", accept)], None)
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, body: &str) -> std::io::Result<HttpResponse> {
        self.request(
            "POST",
            path,
            &[("content-type", "application/json")],
            Some(body.as_bytes()),
        )
    }

    /// `PUT path` with a JSON body.
    pub fn put_json(&mut self, path: &str, body: &str) -> std::io::Result<HttpResponse> {
        self.request(
            "PUT",
            path,
            &[("content-type", "application/json")],
            Some(body.as_bytes()),
        )
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let malformed = |what: &str| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response: {what}"),
            )
        };
        loop {
            if let Some(header_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = std::str::from_utf8(&self.buf[..header_end])
                    .map_err(|_| malformed("not UTF-8"))?;
                let mut lines = head.split("\r\n");
                let status_line = lines.next().unwrap_or("");
                let status = status_line
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse::<u16>().ok())
                    .ok_or_else(|| malformed("status line"))?;
                let headers: Vec<(String, String)> = lines
                    .filter_map(|line| line.split_once(':'))
                    .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
                    .collect();
                let content_length = headers
                    .iter()
                    .find(|(n, _)| n == "content-length")
                    .and_then(|(_, v)| v.parse::<usize>().ok())
                    .ok_or_else(|| malformed("missing content-length"))?;
                let body_start = header_end + 4;
                let total = body_start + content_length;
                while self.buf.len() < total {
                    self.fill()?;
                }
                let body = self.buf[body_start..total].to_vec();
                self.buf.drain(..total);
                return Ok(HttpResponse {
                    status,
                    headers,
                    body,
                });
            }
            self.fill()?;
        }
    }

    fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-response",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }
}
