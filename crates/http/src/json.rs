//! A small hand-rolled JSON value type with a parser and serializer.
//!
//! The build environment has no registry access, so the gateway cannot
//! pull in `serde`; this module implements exactly the JSON subset the
//! wire protocol needs — all of RFC 8259 minus non-finite numbers —
//! with full string escaping in both directions (including `\uXXXX`
//! and surrogate pairs). Object keys keep insertion order, so responses
//! serialize deterministically.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

/// Nesting depth guard: deeper documents are rejected rather than
/// allowed to overflow the parser's stack.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            src: text.as_bytes(),
            pos: 0,
        };
        p.ws();
        let value = p.value(0)?;
        p.ws();
        if p.pos != p.src.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if this is a
    /// non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact string.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize into an existing buffer (appending, without clearing
    /// it) — for callers serializing many values that want one
    /// reusable allocation instead of a fresh `String` per value.
    pub fn dump_into(&self, out: &mut String) {
        self.write(out);
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.dump())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// Build an object from (key, value) pairs — the idiom for response
/// bodies: `obj([("name", "x".into()), ("version", 2u64.into())])`.
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/inf; never produced by parse
    } else if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn ws(&mut self) {
        while matches!(self.src.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.src.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.ws();
        if self.src.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            if self.src.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.ws();
            if self.src.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.ws();
            match self.src.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.ws();
        if self.src.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value(depth + 1)?);
            self.ws();
            match self.src.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let slice = self
            .src
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let code = u16::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.src.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let simple = |b: u8| match b {
                        b'"' => Some('"'),
                        b'\\' => Some('\\'),
                        b'/' => Some('/'),
                        b'b' => Some('\u{08}'),
                        b'f' => Some('\u{0C}'),
                        b'n' => Some('\n'),
                        b'r' => Some('\r'),
                        b't' => Some('\t'),
                        _ => None,
                    };
                    match self.src.get(self.pos) {
                        Some(&b) if simple(b).is_some() => {
                            out.push(simple(b).expect("checked"));
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.src.get(self.pos) != Some(&b'\\')
                                    || self.src.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(combined).ok_or_else(|| self.err("bad codepoint"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(&b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(&self.src[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("bad UTF-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.src.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.src.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.src.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            while matches!(self.src.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.src.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.src.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.src.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_structures() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.25",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.dump(), text, "round trip of {text}");
        }
    }

    #[test]
    fn escapes_both_ways() {
        let original = "quote \" slash \\ newline \n tab \t nul \u{01} uni \u{263A}";
        let dumped = Json::Str(original.to_string()).dump();
        assert_eq!(Json::parse(&dumped).unwrap().as_str().unwrap(), original);
        // Parses the standard escapes, \uXXXX and surrogate pairs.
        let v = Json::parse(r#""a\u0041 \ud83d\ude00 \/ \b\f""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aA \u{1F600} / \u{08}\u{0C}");
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "[1] garbage",
            "{'single':1}",
            "\"\\ud800\"", // unpaired surrogate
            "nan",
            "+1",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} must be rejected");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Json::parse(r#"{"name":"w","version":3,"ok":true,"xs":[1,2]}"#).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("w"));
        assert_eq!(v.get("version").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Json::Num(5.0).dump(), "5");
        assert_eq!(Json::Num(-3.0).dump(), "-3");
        assert_eq!(Json::Num(0.5).dump(), "0.5");
        assert_eq!(Json::from(u64::from(u32::MAX)).dump(), "4294967295");
    }

    #[test]
    fn obj_builder_keeps_order() {
        let v = obj([("b", 1u64.into()), ("a", "x".into())]);
        assert_eq!(v.dump(), r#"{"b":1,"a":"x"}"#);
    }
}
