//! Continuous monitoring: the gateway's sampler, metrics history, SLO
//! watchdog and live ops stream glue.
//!
//! When [`GatewayConfig::monitor`](crate::GatewayConfig::monitor) is on,
//! `HttpGateway::bind` spawns one `lixto-http-monitor` thread that calls
//! [`Monitor::tick`] every
//! [`monitor_interval`](crate::GatewayConfig::monitor_interval):
//!
//! 1. a [`TickSample`] — pool counters from
//!    [`ExtractionServer::sample`](lixto_server::ExtractionServer::sample)
//!    plus the gateway's own connection/request/wake gauges — is recorded
//!    into a bounded [`TimeSeries`] (served by `GET /metrics/history`);
//! 2. derived SLO metrics (error rate, queue saturation, cache hit rate,
//!    latency and wake quantiles, store write failures) are computed
//!    over the trailing evaluation window and fed to the [`Watchdog`],
//!    whose transitions become `alert_fired` / `alert_resolved` log
//!    events (served by `GET /debug/health` and the `lixto_alert_*`
//!    metric series);
//! 3. a tick event — and one event per alert transition — is broadcast
//!    to every `GET /debug/live` subscriber through the event loops.
//!
//! Everything here is plain derivation over [`lixto_obs`] primitives;
//! the socket plumbing (chunked streaming, subscriber lifecycle) lives
//! in [`gateway`](crate::gateway).

use std::collections::VecDeque;
use std::sync::atomic::AtomicUsize;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use lixto_obs::{
    info_event, unix_millis, warn_event, AlertRule, AlertTransition, Direction, FieldSpec,
    FieldStats, RuleSnapshot, Severity, TimeSeries, Watchdog, WindowStats,
};
use lixto_server::{bucket_quantile_us, PoolSample, LATENCY_BUCKETS};

use crate::json::{obj, Json};

/// Minimum extraction attempts in the evaluation window before the
/// error-rate rule gets a value (an idle window has no error rate).
const MIN_ATTEMPTS_FOR_ERROR_RATE: u64 = 1;
/// Minimum cache lookups in the window before the hit-rate rule gets a
/// value (a handful of misses is not a collapse).
const MIN_LOOKUPS_FOR_HIT_RATE: u64 = 10;

/// One sampler tick's raw inputs, gathered by the gateway.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct TickSample {
    /// Pool counters and gauges.
    pub pool: PoolSample,
    /// Gateway requests answered (any status).
    pub requests: u64,
    /// Gateway 4xx responses.
    pub responses_4xx: u64,
    /// Gateway 5xx responses.
    pub responses_5xx: u64,
    /// Connections currently assigned across event loops.
    pub connections: u64,
    /// Connections parked on extraction tickets.
    pub parked: u64,
    /// Wake-latency observations recorded so far.
    pub wake_count: u64,
    /// 99th-percentile wake latency in µs.
    pub wake_p99_us: u64,
    /// Raw wake-latency histogram bucket counters (cumulative); the
    /// watchdog diffs consecutive ticks' buckets for windowed wake
    /// quantiles (see [`Monitor::windowed_latency`]).
    pub wake_buckets: [u64; LATENCY_BUCKETS],
}

/// Schema of the sampled series, in column order. `TickSample::values`
/// must stay in lockstep.
fn schema() -> Vec<FieldSpec> {
    vec![
        FieldSpec::counter("http_requests"),
        FieldSpec::counter("http_responses_4xx"),
        FieldSpec::counter("http_responses_5xx"),
        FieldSpec::counter("pool_submitted"),
        FieldSpec::counter("pool_completed"),
        FieldSpec::counter("pool_errors"),
        FieldSpec::counter("pool_rejected"),
        FieldSpec::counter("cache_hits"),
        FieldSpec::counter("cache_misses"),
        FieldSpec::counter("store_write_errors"),
        FieldSpec::counter("wake_observations"),
        FieldSpec::gauge("connections"),
        FieldSpec::gauge("parked"),
        FieldSpec::gauge("queue_depth"),
        FieldSpec::gauge("latency_p99_us"),
        FieldSpec::gauge("exec_p99_us"),
        FieldSpec::gauge("wake_p99_us"),
    ]
}

impl TickSample {
    fn values(&self) -> Vec<u64> {
        vec![
            self.requests,
            self.responses_4xx,
            self.responses_5xx,
            self.pool.submitted,
            self.pool.completed,
            self.pool.errors,
            self.pool.rejected,
            self.pool.cache_hits,
            self.pool.cache_misses,
            self.pool.store_write_errors,
            self.wake_count,
            self.connections,
            self.parked,
            self.pool.queue_depth,
            self.pool.latency_p99_us,
            self.pool.exec_p99_us,
            self.wake_p99_us,
        ]
    }
}

/// The default SLO rule set. Queue saturation deliberately tops out at
/// `degraded`: a full queue means backpressure (429s), which degrades
/// service but is the designed overload response — `critical` is
/// reserved for failures (error rate, store writes, pathological
/// latency).
fn rules() -> Vec<AlertRule> {
    vec![
        AlertRule {
            name: "error_rate",
            metric: "error_rate",
            direction: Direction::AboveIsBad,
            degraded: 0.05,
            critical: 0.25,
            clear: 0.02,
            for_ticks: 1,
            clear_ticks: 2,
        },
        AlertRule {
            name: "exec_latency",
            metric: "exec_p99_us",
            direction: Direction::AboveIsBad,
            degraded: 250_000.0,
            critical: 1_000_000.0,
            clear: 200_000.0,
            for_ticks: 1,
            clear_ticks: 2,
        },
        AlertRule {
            name: "queue_saturation",
            metric: "queue_saturation",
            direction: Direction::AboveIsBad,
            degraded: 0.75,
            critical: 2.0, // unreachable: the ratio caps at 1.0 (see above)
            clear: 0.30,
            for_ticks: 1,
            clear_ticks: 2,
        },
        AlertRule {
            name: "cache_collapse",
            metric: "cache_hit_rate",
            direction: Direction::BelowIsBad,
            degraded: 0.05,
            critical: -1.0, // unreachable: rates cannot go negative
            clear: 0.15,
            for_ticks: 2,
            clear_ticks: 2,
        },
        AlertRule {
            name: "store_write_failures",
            metric: "store_write_errors_delta",
            direction: Direction::AboveIsBad,
            degraded: 1.0,
            critical: 20.0,
            clear: 0.5,
            for_ticks: 1,
            clear_ticks: 2,
        },
        AlertRule {
            name: "wake_latency",
            metric: "wake_p99_us",
            direction: Direction::AboveIsBad,
            degraded: 50_000.0,
            critical: 500_000.0,
            clear: 25_000.0,
            for_ticks: 2,
            clear_ticks: 2,
        },
    ]
}

/// Alert-state surface appended to the `/metrics` renderings while the
/// monitor runs: the scored verdict plus every rule's firing state.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertsSnapshot {
    /// The worst current severity across all rules.
    pub verdict: Severity,
    /// Per-rule state, in rule order.
    pub rules: Vec<RuleSnapshot>,
}

/// The monitoring subsystem one gateway owns: the history series, the
/// watchdog, and the sampler thread's shutdown/subscriber plumbing.
pub(crate) struct Monitor {
    pub series: TimeSeries,
    pub watchdog: Watchdog,
    interval_ms: u64,
    eval_window_ms: u64,
    eval_ticks: usize,
    /// Cumulative latency-histogram bucket snapshots, one per tick,
    /// newest last, at most `eval_ticks + 1` retained. Diffing the
    /// newest against the oldest yields the evaluation window's *own*
    /// latency distribution — unlike the since-start p99 gauges, these
    /// decay completely once an incident leaves the window, so the
    /// latency rules' hysteresis actually resolves.
    latency_window: Mutex<VecDeque<LatencySnap>>,
    /// Connections currently subscribed to `GET /debug/live`, across
    /// all event loops; ticks are only broadcast while nonzero.
    pub live_subscribers: AtomicUsize,
    /// Sampler shutdown latch: `shutdown` raises it and notifies so the
    /// thread exits without waiting out its interval.
    stop: Mutex<bool>,
    stop_cv: Condvar,
}

/// One tick's cumulative latency bucket counters (exec stage + wake).
#[derive(Clone, Copy)]
struct LatencySnap {
    exec: [u64; LATENCY_BUCKETS],
    wake: [u64; LATENCY_BUCKETS],
}

/// Reset-aware bucket diff, mirroring the series' counter semantics: a
/// decrease in any bucket means the histogram restarted, so the new
/// counts are the whole delta.
fn delta_counts(
    oldest: &[u64; LATENCY_BUCKETS],
    newest: &[u64; LATENCY_BUCKETS],
) -> [u64; LATENCY_BUCKETS] {
    let reset = newest.iter().zip(oldest).any(|(n, o)| n < o);
    let mut out = [0u64; LATENCY_BUCKETS];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = if reset {
            newest[i]
        } else {
            newest[i] - oldest[i]
        };
    }
    out
}

impl Monitor {
    pub fn new(interval: Duration, retention: usize, eval_ticks: u32) -> Monitor {
        let interval_ms = interval.as_millis().clamp(1, u128::from(u64::MAX)) as u64;
        let eval_ticks = eval_ticks.max(1) as usize;
        let eval_window_ms = interval_ms.saturating_mul(eval_ticks as u64);
        Monitor {
            series: TimeSeries::new(schema(), interval_ms, retention),
            watchdog: Watchdog::new(rules()),
            interval_ms,
            eval_window_ms,
            eval_ticks,
            latency_window: Mutex::new(VecDeque::new()),
            live_subscribers: AtomicUsize::new(0),
            stop: Mutex::new(false),
            stop_cv: Condvar::new(),
        }
    }

    pub fn interval(&self) -> Duration {
        Duration::from_millis(self.interval_ms)
    }

    /// Block the sampler thread until the next tick is due or shutdown
    /// is requested; returns `false` on shutdown.
    pub fn sleep_until_next_tick(&self) -> bool {
        let mut stopped = self.stop.lock().expect("monitor stop poisoned");
        let deadline = std::time::Instant::now() + self.interval();
        loop {
            if *stopped {
                return false;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return true;
            }
            let (guard, _) = self
                .stop_cv
                .wait_timeout(stopped, deadline - now)
                .expect("monitor stop poisoned");
            stopped = guard;
        }
    }

    /// Raise the shutdown latch and wake the sampler.
    pub fn stop(&self) {
        *self.stop.lock().expect("monitor stop poisoned") = true;
        self.stop_cv.notify_all();
    }

    /// Record one sample, run the watchdog over the trailing window, log
    /// transitions, and return the pre-serialized live events to
    /// broadcast (one tick event, plus one per transition).
    pub fn tick(&self, sample: &TickSample) -> Vec<String> {
        let now_ms = unix_millis();
        self.series.record(now_ms, &sample.values());
        let window = self
            .series
            .window(now_ms.saturating_sub(self.eval_window_ms), now_ms);
        let (exec_p99_us, wake_p99_us) = self.windowed_latency(sample);
        let metrics = derived_metrics(&window, sample, exec_p99_us, wake_p99_us);
        let named: Vec<(&str, f64)> = metrics.iter().map(|(n, v)| (*n, *v)).collect();
        let transitions = self.watchdog.evaluate(now_ms, &named);
        for transition in &transitions {
            match transition {
                AlertTransition::Fired {
                    rule,
                    severity,
                    value,
                } => warn_event!(
                    "alert_fired",
                    "rule" => *rule,
                    "severity" => severity.name(),
                    "value" => *value,
                ),
                AlertTransition::Resolved { rule, value } => info_event!(
                    "alert_resolved",
                    "rule" => *rule,
                    "value" => *value,
                ),
            }
        }
        let mut events = Vec::with_capacity(1 + transitions.len());
        events.push(self.tick_event(now_ms, sample, &window));
        for transition in &transitions {
            events.push(transition_event(now_ms, transition));
        }
        events
    }

    /// Windowed latency p99s for the watchdog: append this tick's
    /// bucket snapshot, trim to the evaluation window, and diff the
    /// newest against the oldest retained snapshot. `None` when the
    /// window saw no observations, which freezes the rule (like the
    /// denominator-guarded rates) instead of feeding it a fake zero.
    /// Called once per tick, by the sampler thread only.
    fn windowed_latency(&self, sample: &TickSample) -> (Option<u64>, Option<u64>) {
        let mut ring = self.latency_window.lock().expect("latency window poisoned");
        ring.push_back(LatencySnap {
            exec: sample.pool.exec_buckets,
            wake: sample.wake_buckets,
        });
        while ring.len() > self.eval_ticks + 1 {
            ring.pop_front();
        }
        let oldest = ring.front().expect("just pushed");
        let newest = ring.back().expect("just pushed");
        (
            bucket_quantile_us(&delta_counts(&oldest.exec, &newest.exec), 0.99),
            bucket_quantile_us(&delta_counts(&oldest.wake, &newest.wake), 0.99),
        )
    }

    /// The greeting event a new `/debug/live` subscriber receives
    /// immediately: current verdict and sampler shape.
    pub fn hello_event(&self) -> String {
        obj([
            ("type", "subscribed".into()),
            ("unix_ms", unix_millis().into()),
            ("verdict", self.watchdog.verdict().name().into()),
            ("interval_ms", self.interval_ms.into()),
            ("samples", self.series.len().into()),
        ])
        .to_string()
    }

    fn tick_event(&self, now_ms: u64, sample: &TickSample, window: &WindowStats) -> String {
        let request_rate = window
            .fields
            .iter()
            .find(|f| f.name == "http_requests")
            .and_then(|f| match f.stats {
                FieldStats::Counter { rate_per_sec, .. } => Some(rate_per_sec),
                _ => None,
            })
            .unwrap_or(0.0);
        obj([
            ("type", "tick".into()),
            ("unix_ms", now_ms.into()),
            ("verdict", self.watchdog.verdict().name().into()),
            ("samples", self.series.len().into()),
            ("request_rate_per_sec", request_rate.into()),
            ("queue_depth", sample.pool.queue_depth.into()),
            ("connections", sample.connections.into()),
            ("latency_p99_us", sample.pool.latency_p99_us.into()),
        ])
        .to_string()
    }

    /// The current alert surface for the `/metrics` renderings.
    pub fn alerts_snapshot(&self) -> AlertsSnapshot {
        AlertsSnapshot {
            verdict: self.watchdog.verdict(),
            rules: self.watchdog.snapshot(),
        }
    }

    /// The `GET /debug/health` body: scored verdict, per-rule state, and
    /// the evidence window the rules were last judged over, inline.
    pub fn health_json(&self) -> Json {
        let now_ms = unix_millis();
        let window = self
            .series
            .window(now_ms.saturating_sub(self.eval_window_ms), now_ms);
        let rules: Vec<Json> = self
            .watchdog
            .snapshot()
            .into_iter()
            .map(|r| {
                obj([
                    ("rule", r.rule.into()),
                    ("metric", r.metric.into()),
                    ("severity", r.severity.name().into()),
                    ("value", r.value.into()),
                    ("degraded", r.degraded.into()),
                    ("critical", r.critical.into()),
                    ("clear", r.clear.into()),
                    ("since_ms", r.since_ms.into()),
                    ("fired_total", r.fired_total.into()),
                    ("resolved_total", r.resolved_total.into()),
                ])
            })
            .collect();
        obj([
            ("verdict", self.watchdog.verdict().name().into()),
            (
                "sampler",
                obj([
                    ("interval_ms", self.interval_ms.into()),
                    ("retention", self.series.capacity().into()),
                    ("samples", self.series.len().into()),
                ]),
            ),
            ("rules", rules.into()),
            ("evidence", window_json(&window)),
        ])
    }

    /// The `GET /metrics/history` body: a whole-window summary plus
    /// per-step tiles over `(now - window_ms, now]`.
    ///
    /// The request is clamped to what the ring can answer — callers
    /// (the gateway) pass query parameters through unvalidated, and an
    /// unbounded window/step pair would otherwise tile billions of
    /// windows on the serving thread. `window_ms` is capped at the
    /// retained span (`interval × retention`); `step_ms` is raised so
    /// at most `retention` tiles are produced (a finer step than one
    /// tile per retained sample only yields empty tiles). The clamped
    /// values are echoed in the body.
    pub fn history_json(&self, window_ms: u64, step_ms: u64) -> Json {
        let now_ms = unix_millis();
        let retention = self.series.capacity() as u64;
        let retained_ms = self.interval_ms.saturating_mul(retention);
        let window_ms = window_ms.clamp(self.interval_ms, retained_ms);
        let step_ms = step_ms.max(window_ms.div_ceil(retention)).max(1);
        let from_ms = now_ms.saturating_sub(window_ms);
        let summary = self.series.window(from_ms, now_ms);
        let steps: Vec<Json> = self
            .series
            .steps(from_ms, now_ms, step_ms)
            .iter()
            .map(window_json)
            .collect();
        obj([
            ("interval_ms", self.interval_ms.into()),
            ("retention", self.series.capacity().into()),
            ("samples", self.series.len().into()),
            ("window_ms", window_ms.into()),
            ("step_ms", step_ms.into()),
            ("summary", window_json(&summary)),
            ("steps", steps.into()),
        ])
    }
}

/// Compute the derived SLO metrics the watchdog rules consume. Rates
/// that would divide by (near) zero are omitted, freezing their rules —
/// see [`Watchdog::evaluate`]. The latency p99s are *windowed* values
/// from [`Monitor::windowed_latency`] (bucket diffs over the evaluation
/// window), not the series' since-start gauges: a cumulative p99 decays
/// only asymptotically after an incident, so rules fed from it could
/// stay fired long after recovery (or mask a fresh regression behind a
/// long healthy history).
fn derived_metrics(
    window: &WindowStats,
    sample: &TickSample,
    exec_p99_us: Option<u64>,
    wake_p99_us: Option<u64>,
) -> Vec<(&'static str, f64)> {
    let delta = |name: &str| -> u64 {
        window
            .fields
            .iter()
            .find(|f| f.name == name)
            .and_then(|f| match f.stats {
                FieldStats::Counter { delta, .. } => Some(delta),
                _ => None,
            })
            .unwrap_or(0)
    };
    let gauge_max = |name: &str| -> u64 {
        window
            .fields
            .iter()
            .find(|f| f.name == name)
            .and_then(|f| match f.stats {
                FieldStats::Gauge { max, .. } => Some(max),
                _ => None,
            })
            .unwrap_or(0)
    };
    let mut metrics: Vec<(&'static str, f64)> = Vec::with_capacity(6);
    let errors = delta("pool_errors");
    let attempts = delta("pool_completed") + errors;
    if attempts >= MIN_ATTEMPTS_FOR_ERROR_RATE {
        metrics.push(("error_rate", errors as f64 / attempts as f64));
    }
    if let Some(p99) = exec_p99_us {
        metrics.push(("exec_p99_us", p99 as f64));
    }
    if sample.pool.queue_capacity > 0 {
        metrics.push((
            "queue_saturation",
            gauge_max("queue_depth") as f64 / sample.pool.queue_capacity as f64,
        ));
    }
    let hits = delta("cache_hits");
    let lookups = hits + delta("cache_misses");
    if lookups >= MIN_LOOKUPS_FOR_HIT_RATE {
        metrics.push(("cache_hit_rate", hits as f64 / lookups as f64));
    }
    metrics.push((
        "store_write_errors_delta",
        delta("store_write_errors") as f64,
    ));
    if let Some(p99) = wake_p99_us {
        metrics.push(("wake_p99_us", p99 as f64));
    }
    metrics
}

fn transition_event(now_ms: u64, transition: &AlertTransition) -> String {
    match transition {
        AlertTransition::Fired {
            rule,
            severity,
            value,
        } => obj([
            ("type", "alert".into()),
            ("unix_ms", now_ms.into()),
            ("rule", (*rule).into()),
            ("state", "fired".into()),
            ("severity", severity.name().into()),
            ("value", (*value).into()),
        ]),
        AlertTransition::Resolved { rule, value } => obj([
            ("type", "alert".into()),
            ("unix_ms", now_ms.into()),
            ("rule", (*rule).into()),
            ("state", "resolved".into()),
            ("severity", Severity::Ok.name().into()),
            ("value", (*value).into()),
        ]),
    }
    .to_string()
}

/// One [`WindowStats`] as JSON, with per-field stats keyed by kind.
fn window_json(window: &WindowStats) -> Json {
    let fields: Vec<Json> = window
        .fields
        .iter()
        .map(|field| match &field.stats {
            FieldStats::Counter {
                delta,
                rate_per_sec,
            } => obj([
                ("name", field.name.into()),
                ("kind", "counter".into()),
                ("delta", (*delta).into()),
                ("rate_per_sec", (*rate_per_sec).into()),
            ]),
            FieldStats::Gauge {
                last,
                min,
                max,
                mean,
                p50,
                p99,
            } => obj([
                ("name", field.name.into()),
                ("kind", "gauge".into()),
                ("last", (*last).into()),
                ("min", (*min).into()),
                ("max", (*max).into()),
                ("mean", (*mean).into()),
                ("p50", (*p50).into()),
                ("p99", (*p99).into()),
            ]),
        })
        .collect();
    obj([
        ("from_ms", window.from_ms.into()),
        ("to_ms", window.to_ms.into()),
        ("samples", window.samples.into()),
        ("fields", fields.into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(completed: u64, errors: u64, queue_depth: u64) -> TickSample {
        TickSample {
            pool: PoolSample {
                completed,
                errors,
                queue_depth,
                queue_capacity: 64,
                ..PoolSample::default()
            },
            ..TickSample::default()
        }
    }

    #[test]
    fn schema_and_sample_values_stay_in_lockstep() {
        assert_eq!(schema().len(), TickSample::default().values().len());
    }

    #[test]
    fn overload_fires_queue_saturation_within_two_ticks() {
        let monitor = Monitor::new(Duration::from_millis(10), 16, 4);
        monitor.tick(&sample(10, 0, 0));
        assert_eq!(monitor.watchdog.verdict(), Severity::Ok);
        // The queue jams full: the very next tick must flip the verdict.
        let events = monitor.tick(&sample(10, 0, 64));
        assert_eq!(monitor.watchdog.verdict(), Severity::Degraded);
        assert!(
            events
                .iter()
                .any(|e| e.contains("\"rule\":\"queue_saturation\"")
                    && e.contains("\"state\":\"fired\"")),
            "events: {events:?}"
        );
        // Health report carries the verdict and the firing rule.
        let health = monitor.health_json().to_string();
        assert!(health.contains("\"verdict\":\"degraded\""), "{health}");
    }

    #[test]
    fn error_rate_is_skipped_on_idle_windows() {
        let monitor = Monitor::new(Duration::from_millis(10), 16, 4);
        // No completions, no errors: the error-rate rule must not fire
        // (or even receive a value) on an idle gateway.
        for _ in 0..3 {
            monitor.tick(&sample(0, 0, 0));
        }
        assert_eq!(monitor.watchdog.verdict(), Severity::Ok);
    }

    #[test]
    fn exec_latency_alert_clears_once_the_incident_leaves_the_window() {
        let monitor = Monitor::new(Duration::from_millis(10), 16, 2);
        let mut buckets = [0u64; LATENCY_BUCKETS];
        let mut s = sample(10, 0, 0);
        monitor.tick(&s); // baseline snapshot
                          // A burst of ~500 ms executions: bucket 19 = [262144, 524288) µs.
        buckets[19] = 50;
        s.pool.exec_buckets = buckets;
        monitor.tick(&s);
        assert_eq!(monitor.watchdog.verdict(), Severity::Degraded);
        // The burst stops; only ~200 µs executions afterwards. The
        // *cumulative* p99 stays pinned at the burst bucket forever
        // (50 slow of 550 total is still past the 99th rank), so rules
        // fed from it would never cross the 200 ms clear threshold —
        // the windowed bucket diff must resolve the alert instead.
        for _ in 0..5 {
            buckets[8] += 100;
            s.pool.exec_buckets = buckets;
            monitor.tick(&s);
        }
        assert_eq!(monitor.watchdog.verdict(), Severity::Ok);
    }

    #[test]
    fn wake_latency_uses_windowed_bucket_diffs() {
        let monitor = Monitor::new(Duration::from_millis(10), 16, 2);
        let mut buckets = [0u64; LATENCY_BUCKETS];
        let mut s = sample(10, 0, 0);
        monitor.tick(&s);
        // ~60 ms wakes (bucket 16) for two ticks: fires after
        // `for_ticks = 2`.
        for add in [20, 20] {
            buckets[16] += add;
            s.wake_buckets = buckets;
            monitor.tick(&s);
        }
        assert_eq!(monitor.watchdog.verdict(), Severity::Degraded);
        // Healthy ~1 ms wakes afterwards: clears once the slow window
        // ages out.
        for _ in 0..5 {
            buckets[10] += 100;
            s.wake_buckets = buckets;
            monitor.tick(&s);
        }
        assert_eq!(monitor.watchdog.verdict(), Severity::Ok);
    }

    #[test]
    fn idle_latency_windows_freeze_instead_of_feeding_zero() {
        // No observations at all: the latency rules must receive no
        // value (frozen), not a fake 0 that would count as "cleared".
        let window = WindowStats {
            from_ms: 0,
            to_ms: 1000,
            samples: 0,
            fields: Vec::new(),
        };
        let metrics = derived_metrics(&window, &sample(0, 0, 0), None, None);
        assert!(!metrics.iter().any(|(n, _)| *n == "exec_p99_us"));
        assert!(!metrics.iter().any(|(n, _)| *n == "wake_p99_us"));
    }

    #[test]
    fn history_json_clamps_hostile_window_and_step() {
        let monitor = Monitor::new(Duration::from_millis(10), 16, 4);
        monitor.tick(&sample(1, 0, 0));
        // The DoS shape: a u64::MAX window with a 1 ms step would tile
        // ~1.8e16 windows unclamped. Clamped, the window caps at the
        // retained span (10 ms × 16) and the step is raised so at most
        // `retention` tiles come back.
        let history = monitor.history_json(u64::MAX, 1);
        assert_eq!(history.get("window_ms").and_then(Json::as_u64), Some(160));
        assert_eq!(history.get("step_ms").and_then(Json::as_u64), Some(10));
        let steps = history.get("steps").and_then(Json::as_array).unwrap().len();
        assert_eq!(steps, 16);
    }

    #[test]
    fn history_json_reports_summary_and_steps() {
        let monitor = Monitor::new(Duration::from_millis(10), 16, 4);
        monitor.tick(&sample(5, 0, 1));
        monitor.tick(&sample(9, 0, 2));
        let history = monitor.history_json(60_000, 10_000).to_string();
        assert!(history.contains("\"samples\":2"), "{history}");
        assert!(history.contains("\"name\":\"pool_completed\""));
        assert!(history.contains("\"steps\":["));
    }
}
