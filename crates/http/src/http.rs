//! HTTP/1.1 wire format: incremental request parsing with size limits,
//! and response serialization.
//!
//! The parser is pull-based over a byte buffer the connection handler
//! owns: [`parse_request`] either yields a complete request plus the
//! number of bytes it consumed (leftover bytes belong to the *next*
//! pipelined request), asks for more input, or reports a protocol error
//! that maps to a 4xx status. Bodies are framed by `Content-Length`
//! only; `Transfer-Encoding` is not supported (the gateway's clients
//! always know their body size up front).

use crate::json::Json;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component, query string stripped.
    pub path: String,
    /// Raw query string (without `?`), if any.
    pub query: Option<String>,
    /// True for `HTTP/1.1`, false for `HTTP/1.0` (the two accepted
    /// versions) — they default to opposite connection persistence.
    pub http_1_1: bool,
    /// `(name, value)` headers in arrival order; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when `Connection` carries `token` (comma-separated list,
    /// case-insensitive).
    fn connection_has(&self, token: &str) -> bool {
        self.header("connection")
            .is_some_and(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case(token)))
    }

    /// Whether the connection persists after this exchange: HTTP/1.1
    /// defaults to keep-alive unless `Connection: close`; HTTP/1.0
    /// defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        if self.http_1_1 {
            !self.connection_has("close")
        } else {
            self.connection_has("keep-alive")
        }
    }

    /// The body as UTF-8, or `None` when it is not valid UTF-8.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Parser size limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum size of the request line + headers, in bytes.
    pub max_header_bytes: usize,
    /// Maximum declared `Content-Length`, in bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Why a request could not be parsed. Each variant maps to the 4xx the
/// handler should answer with before (usually) closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// Request line or header section malformed → 400.
    Malformed(&'static str),
    /// Header section exceeds [`Limits::max_header_bytes`] → 431.
    HeadersTooLarge,
    /// Declared body exceeds [`Limits::max_body_bytes`] → 413. Carries
    /// the framing the parser already established so the handler can
    /// drain the body and keep the connection without re-deriving it.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// Offset of the body's first byte in the caller's buffer.
        body_start: usize,
    },
    /// `Transfer-Encoding` framing is not supported → 501.
    UnsupportedTransferEncoding,
}

impl RequestError {
    /// The status code this protocol error answers with.
    pub fn status(&self) -> u16 {
        match self {
            RequestError::Malformed(_) => 400,
            RequestError::HeadersTooLarge => 431,
            RequestError::BodyTooLarge { .. } => 413,
            RequestError::UnsupportedTransferEncoding => 501,
        }
    }

    /// Human-readable detail for the error body.
    pub fn message(&self) -> String {
        match self {
            RequestError::Malformed(what) => format!("malformed request: {what}"),
            RequestError::HeadersTooLarge => "request header section too large".to_string(),
            RequestError::BodyTooLarge { declared, .. } => {
                format!("request body of {declared} bytes exceeds the limit")
            }
            RequestError::UnsupportedTransferEncoding => {
                "transfer-encoding is not supported; use content-length".to_string()
            }
        }
    }
}

/// Try to parse one request from the front of `buf`.
///
/// * `Ok(Some((request, consumed)))` — a complete request; the caller
///   drains `consumed` bytes and keeps the rest for the next pipelined
///   request.
/// * `Ok(None)` — incomplete; read more bytes and retry.
/// * `Err(_)` — protocol error; answer with [`RequestError::status`].
pub fn parse_request(
    buf: &[u8],
    limits: &Limits,
) -> Result<Option<(Request, usize)>, RequestError> {
    parse_request_with_body_limit(buf, limits, &|_, _| limits.max_body_bytes)
}

/// [`parse_request`] with a per-route body limit: once the request line
/// and headers are in, `body_limit_for(method, path)` decides the
/// maximum acceptable `Content-Length` for *that* route instead of the
/// blanket [`Limits::max_body_bytes`]. The gateway uses this to let
/// `POST /extract/batch` carry a whole array of documents while every
/// other endpoint keeps the tight single-document limit. Header limits
/// are unaffected.
pub fn parse_request_with_body_limit(
    buf: &[u8],
    limits: &Limits,
    body_limit_for: &dyn Fn(&str, &str) -> usize,
) -> Result<Option<(Request, usize)>, RequestError> {
    // Tolerate a couple of CRLFs before the request line (RFC 9112 §2.2
    // says to ignore at least one) — keep-alive clients historically
    // send a stray one between requests. The count is capped so a CRLF
    // flood hits the normal header-size limit instead of growing the
    // connection buffer unboundedly.
    let mut skipped = 0;
    while skipped < 4 && buf[skipped..].starts_with(b"\r\n") {
        skipped += 2;
    }
    let buf = &buf[skipped..];
    let Some(header_end) = find_header_end(buf, limits.max_header_bytes)? else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| RequestError::Malformed("not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_alphabetic()))
        .ok_or(RequestError::Malformed("bad request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or(RequestError::Malformed("bad request target"))?;
    let version = parts
        .next()
        .ok_or(RequestError::Malformed("missing HTTP version"))?;
    if parts.next().is_some() || !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(RequestError::Malformed("unsupported HTTP version"));
    }
    let http_1_1 = version == "HTTP/1.1";
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(RequestError::Malformed("bad header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut request = Request {
        method,
        path,
        query,
        http_1_1,
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(RequestError::UnsupportedTransferEncoding);
    }
    // Duplicate Content-Length headers are a request-smuggling vector
    // (RFC 9112 §6.3): reject rather than pick one.
    if request
        .headers
        .iter()
        .filter(|(n, _)| n == "content-length")
        .count()
        > 1
    {
        return Err(RequestError::Malformed("duplicate content-length"));
    }
    let content_length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| RequestError::Malformed("bad content-length"))?,
    };
    if content_length > body_limit_for(&request.method, &request.path) {
        return Err(RequestError::BodyTooLarge {
            declared: content_length,
            body_start: skipped + header_end + 4,
        });
    }
    let body_start = header_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    request.body = buf[body_start..body_start + content_length].to_vec();
    Ok(Some((request, skipped + body_start + content_length)))
}

/// Index of `\r\n\r\n` terminating the header section, or `None` if it
/// has not arrived yet, or an error once the section exceeds the limit.
fn find_header_end(buf: &[u8], max: usize) -> Result<Option<usize>, RequestError> {
    let window = &buf[..buf.len().min(max + 4)];
    match window.windows(4).position(|w| w == b"\r\n\r\n") {
        Some(i) if i <= max => Ok(Some(i)),
        Some(_) => Err(RequestError::HeadersTooLarge),
        None if buf.len() > max + 4 => Err(RequestError::HeadersTooLarge),
        None => Ok(None),
    }
}

/// The standard reason phrase for the status codes the gateway emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// An outgoing response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value) beyond the standard set.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: value.dump().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// The uniform error body: `{"error": code, "message": detail}`.
    pub fn error(status: u16, code: &str, message: &str) -> Response {
        Response::json(
            status,
            &crate::json::obj([("error", code.into()), ("message", message.into())]),
        )
    }

    /// Append a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Serialize into `out`, with the connection-persistence header.
    pub fn write_to(&self, out: &mut Vec<u8>, keep_alive: bool) {
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
                self.status,
                status_reason(self.status),
                self.content_type,
                self.body.len(),
                if keep_alive { "keep-alive" } else { "close" },
            )
            .as_bytes(),
        );
        for (name, value) in &self.extra_headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> Limits {
        Limits::default()
    }

    #[test]
    fn parses_a_complete_request_and_reports_consumed_bytes() {
        let raw =
            b"POST /extract?x=1 HTTP/1.1\r\nHost: a\r\nContent-Length: 5\r\n\r\nhelloGET /next";
        let (req, consumed) = parse_request(raw, &limits()).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/extract");
        assert_eq!(req.query.as_deref(), Some("x=1"));
        assert_eq!(req.header("host"), Some("a"));
        assert_eq!(req.body, b"hello");
        assert_eq!(&raw[consumed..], b"GET /next");
        assert!(req.keep_alive());
    }

    #[test]
    fn connection_persistence_follows_version_and_token_lists() {
        let parse = |raw: &[u8]| parse_request(raw, &limits()).unwrap().unwrap().0;
        // HTTP/1.1 defaults to keep-alive; a `close` token anywhere in
        // the Connection list ends it.
        assert!(parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive());
        assert!(!parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive());
        assert!(!parse(b"GET / HTTP/1.1\r\nConnection: close, te\r\n\r\n").keep_alive());
        // HTTP/1.0 defaults to close; only an explicit keep-alive
        // persists.
        assert!(!parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive());
        assert!(parse(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").keep_alive());
    }

    #[test]
    fn leading_crlf_between_requests_is_tolerated() {
        let raw = b"\r\n\r\nGET /a HTTP/1.1\r\n\r\n";
        let (req, consumed) = parse_request(raw, &limits()).unwrap().unwrap();
        assert_eq!(req.path, "/a");
        assert_eq!(consumed, raw.len(), "skipped CRLFs count as consumed");
    }

    #[test]
    fn asks_for_more_bytes_until_complete() {
        let raw = b"GET / HTTP/1.1\r\nContent-Length: 4\r\n\r\nab";
        assert_eq!(parse_request(&raw[..10], &limits()).unwrap(), None);
        assert_eq!(parse_request(raw, &limits()).unwrap(), None); // body short
        let full = b"GET / HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let (req, consumed) = parse_request(full, &limits()).unwrap().unwrap();
        assert_eq!(req.body, b"abcd");
        assert_eq!(consumed, full.len());
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (first, consumed) = parse_request(raw, &limits()).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        let (second, consumed2) = parse_request(&raw[consumed..], &limits()).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert!(!second.keep_alive());
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn enforces_header_and_body_limits() {
        let tight = Limits {
            max_header_bytes: 64,
            max_body_bytes: 10,
        };
        let huge_header = format!("GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(100));
        assert_eq!(
            parse_request(huge_header.as_bytes(), &tight).unwrap_err(),
            RequestError::HeadersTooLarge
        );
        // Header section not yet terminated but already over the limit.
        let unterminated = format!("GET / HTTP/1.1\r\nx-pad: {}", "a".repeat(100));
        assert_eq!(
            parse_request(unterminated.as_bytes(), &tight).unwrap_err(),
            RequestError::HeadersTooLarge
        );
        let big_body = b"POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\n";
        assert_eq!(
            parse_request(big_body, &tight).unwrap_err(),
            RequestError::BodyTooLarge {
                declared: 11,
                body_start: big_body.len(),
            }
        );
    }

    #[test]
    fn per_route_body_limits_override_the_blanket_limit() {
        let tight = Limits {
            max_header_bytes: 1024,
            max_body_bytes: 8,
        };
        let batchy = |method: &str, path: &str| {
            if method == "POST" && path == "/extract/batch" {
                1024
            } else {
                tight.max_body_bytes
            }
        };
        let batch =
            b"POST /extract/batch HTTP/1.1\r\nContent-Length: 20\r\n\r\n[xxxxxxxxxxxxxxxxxx]";
        let (req, consumed) = parse_request_with_body_limit(batch, &tight, &batchy)
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/extract/batch");
        assert_eq!(req.body.len(), 20);
        assert_eq!(consumed, batch.len());
        // The same declared length on any other route still trips the
        // blanket limit...
        let single = b"POST /extract HTTP/1.1\r\nContent-Length: 20\r\n\r\n";
        assert!(matches!(
            parse_request_with_body_limit(single, &tight, &batchy).unwrap_err(),
            RequestError::BodyTooLarge { declared: 20, .. }
        ));
        // ...and the plain entry point never consults routes at all.
        assert!(matches!(
            parse_request(batch, &tight).unwrap_err(),
            RequestError::BodyTooLarge { declared: 20, .. }
        ));
    }

    #[test]
    fn crlf_flood_is_bounded_by_the_header_limit() {
        // The stray-CRLF tolerance is capped: a flood of bare CRLFs must
        // be rejected (closing the connection) rather than buffered
        // forever waiting for a request line.
        let flood = b"\r\n".repeat(64);
        assert!(parse_request(&flood, &limits()).is_err());
    }

    #[test]
    fn rejects_malformed_and_unsupported_requests() {
        for raw in [
            &b"BANANA% / HTTP/1.1\r\n\r\n"[..],
            b" / HTTP/1.1\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: pony\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 44\r\n\r\n",
        ] {
            let err = parse_request(raw, &limits()).unwrap_err();
            assert_eq!(err.status(), 400, "{raw:?}");
        }
        assert_eq!(
            parse_request(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                &limits()
            )
            .unwrap_err(),
            RequestError::UnsupportedTransferEncoding
        );
    }

    #[test]
    fn responses_serialize_with_framing_headers() {
        let mut out = Vec::new();
        Response::json(200, &Json::parse(r#"{"ok":true}"#).unwrap()).write_to(&mut out, true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        Response::error(429, "backpressure", "queue full")
            .with_header("retry-after", "1")
            .write_to(&mut out, false);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains(r#""error":"backpressure""#));
    }
}
