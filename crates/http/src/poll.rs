//! Readiness notification for the event-driven gateway: a thin safe
//! wrapper over the `poll(2)` syscall plus a self-pipe waker, with no
//! external crates — the only two primitives an M:N connection
//! multiplexer needs.
//!
//! The module is deliberately tiny: [`poll`] takes a caller-owned slice
//! of [`PollFd`] interest records and blocks until one becomes ready (or
//! the timeout lapses), and [`SelfPipe`] is the classic self-pipe trick
//! — any thread calls [`SelfPipe::wake`] to make the pipe's read end
//! readable, breaking an event loop out of its `poll` so it can check
//! its inboxes. `poll(2)` was chosen over `epoll` because the fd sets
//! here are rebuilt per iteration anyway (interest changes with every
//! connection state transition), it needs no registration fd of its own,
//! and it is portable POSIX; at the gateway's per-loop connection caps
//! the O(n) scan is noise next to request parsing.
//!
//! All `unsafe` in `lixto_http` lives in this file, confined to the four
//! raw syscall wrappers, each a direct transcription of the C
//! signature.

#![allow(unsafe_code)]

// The raw declarations below (pipe2, and the O_* constant values) are
// written against the Linux ABI; on other platforms they would link
// against different or absent symbols and silently wrong flag bits, so
// refuse to build rather than misbehave.
#[cfg(not(target_os = "linux"))]
compile_error!(
    "lixto_http::poll transcribes Linux syscall signatures and constants; \
     port the `sys` module before building on another OS"
);

use std::io;
use std::os::raw::{c_int, c_ulong, c_void};
use std::time::Duration;

/// The fd wants to read (or has data / a pending accept).
pub const POLLIN: i16 = 0x001;
/// The fd can be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The fd is not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One `struct pollfd`: an fd, the events the caller is interested in,
/// and the events the kernel reported back.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Interest record for `fd`. `events` is a bitmask of [`POLLIN`] /
    /// [`POLLOUT`] (zero is valid: only error/hangup conditions are
    /// reported then).
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The fd this record watches.
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Kernel-reported readiness from the last [`poll`] call.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// Readable (or a condition — hangup, error — that a read will
    /// surface; readers must attempt the read to learn which).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Writable (or a condition a write will surface as an error).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

mod sys {
    use super::*;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    /// `O_NONBLOCK` for `pipe2` (Linux value; the module is compile-
    /// gated on Linux above).
    pub const O_NONBLOCK: c_int = 0o4000;
    /// `O_CLOEXEC` for `pipe2` — the waker must not leak into children.
    pub const O_CLOEXEC: c_int = 0o2000000;
}

/// Block until an fd in `fds` is ready, the timeout lapses, or a signal
/// interrupts. Returns the number of records with non-zero `revents`
/// (zero on timeout). `None` blocks indefinitely; `EINTR` is retried
/// internally with the timeout re-derived, so callers never see it.
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let deadline = timeout.map(|t| std::time::Instant::now() + t);
    loop {
        let timeout_ms: c_int = match deadline {
            None => -1,
            Some(d) => {
                let left = d.saturating_duration_since(std::time::Instant::now());
                // Round up so a sub-millisecond remainder does not
                // busy-spin at timeout 0.
                let ms = left.as_millis();
                let ceil = ms + u128::from(left.as_nanos() > ms * 1_000_000);
                c_int::try_from(ceil.min(i32::MAX as u128)).unwrap_or(c_int::MAX)
            }
        };
        let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        match n {
            -1 => {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            n => return Ok(n as usize),
        }
    }
}

/// The self-pipe waker: a non-blocking pipe whose read end an event loop
/// keeps in its poll set. Any thread (worker completion callbacks, the
/// acceptor, shutdown) calls [`wake`](SelfPipe::wake) to make the read
/// end readable; the loop calls [`drain`](SelfPipe::drain) once woken.
/// Wakes are level-coalescing — a thousand wakes before one drain cost
/// one pipe byte each at most, and the pipe being full is itself a
/// successful wake.
#[derive(Debug)]
pub struct SelfPipe {
    read_fd: c_int,
    write_fd: c_int,
}

impl SelfPipe {
    /// Create the pipe, both ends non-blocking and close-on-exec.
    pub fn new() -> io::Result<SelfPipe> {
        let mut fds: [c_int; 2] = [-1, -1];
        let rc = unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(SelfPipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd an event loop registers with [`POLLIN`].
    pub fn read_fd(&self) -> i32 {
        self.read_fd
    }

    /// Make the read end readable. Never blocks: a full pipe (`EAGAIN`)
    /// already guarantees the next `poll` returns, which is all a wake
    /// means. `EINTR` is retried — a signal must not eat the wake, or
    /// the parked work it announces would never be picked up.
    pub fn wake(&self) {
        let byte = 1u8;
        loop {
            let n = unsafe { sys::write(self.write_fd, (&byte as *const u8).cast::<c_void>(), 1) };
            if n == -1 && std::io::Error::last_os_error().kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return;
        }
    }

    /// Swallow every pending wake byte, resetting the read end to
    /// not-readable (until the next [`wake`](SelfPipe::wake)). Returns
    /// whether anything had been pending.
    pub fn drain(&self) -> bool {
        let mut buf = [0u8; 64];
        let mut any = false;
        loop {
            let n =
                unsafe { sys::read(self.read_fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
            match n {
                n if n > 0 => any = true,
                // 0 (closed write end) cannot happen while self holds
                // write_fd; everything else (EAGAIN, EINTR) means drained
                // enough — a racing wake after this read re-arms POLLIN.
                _ => return any,
            }
        }
    }
}

impl Drop for SelfPipe {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn wake_makes_the_pipe_readable_and_drain_resets_it() {
        let pipe = SelfPipe::new().unwrap();
        // Not readable yet: poll times out.
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
        // Wake from another thread: poll reports readiness.
        std::thread::scope(|s| {
            s.spawn(|| pipe.wake());
            let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
            let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1);
            assert!(fds[0].readable());
        });
        // Drain resets readiness.
        assert!(pipe.drain());
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Some(Duration::from_millis(10))).unwrap(), 0);
        assert!(!pipe.drain(), "nothing pending after a drain");
    }

    #[test]
    fn a_wake_flood_coalesces_and_never_blocks() {
        let pipe = SelfPipe::new().unwrap();
        // Far more wakes than the pipe buffer holds: each must return
        // promptly (non-blocking write), and one drain clears them all.
        for _ in 0..100_000 {
            pipe.wake();
        }
        assert!(pipe.drain());
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Some(Duration::from_millis(5))).unwrap(), 0);
    }

    #[test]
    fn poll_timeout_expires_close_to_the_requested_duration() {
        let pipe = SelfPipe::new().unwrap();
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        let t = Instant::now();
        let n = poll(&mut fds, Some(Duration::from_millis(50))).unwrap();
        let elapsed = t.elapsed();
        assert_eq!(n, 0);
        assert!(
            elapsed >= Duration::from_millis(45),
            "returned after {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_secs(5),
            "returned after {elapsed:?}"
        );
    }

    #[test]
    fn poll_reports_tcp_readability_and_writability() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        // Nothing sent yet: not readable; a fresh socket is writable.
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN | POLLOUT)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable());
        assert_eq!(fds[0].revents() & POLLIN, 0);

        // After the client writes, POLLIN is reported.
        client.write_all(b"ping").unwrap();
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());

        // After the client hangs up, readable() reports it too (a read
        // will see EOF).
        drop(client);
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
    }
}
