//! # lixto-http
//!
//! The HTTP/JSON gateway that turns the `lixto_server` extraction pool
//! into a network service — the missing front half of the paper's §6
//! Transformation Server story, where wrappers built visually are
//! "served to applications over the web". Everything is built on the
//! standard library (`std::net::TcpListener` and hand-rolled HTTP/JSON),
//! because this environment has no registry access:
//!
//! * [`json`] — a small JSON value type with a parser and serializer
//!   (full escaping both ways, insertion-ordered objects);
//! * [`http`] — HTTP/1.1 framing: incremental, pipelining-aware request
//!   parsing with header/body size limits, and response serialization;
//! * [`poll`] — readiness notification: a dependency-free safe wrapper
//!   over the `poll(2)` syscall plus a [`SelfPipe`](poll::SelfPipe)
//!   waker, the two primitives the multiplexer is built on;
//! * [`gateway`] — the [`HttpGateway`]: an event-driven M:N connection
//!   multiplexer (a few event-loop threads, each owning many
//!   non-blocking keep-alive connections as per-connection state
//!   machines) with graceful drain shutdown, exposing `POST /extract`
//!   and `POST /extract/batch`, `PUT`/`GET /wrappers`,
//!   `GET /provenance/{key}` (the persisted derivation record of a
//!   cached extraction), `GET /metrics` (Prometheus text or JSON,
//!   including the durable result-store counters, per-stage latency
//!   summaries and `lixto_rule_*` per-rule series),
//!   `GET /debug/wrappers/{name}` / `GET /debug/slow` /
//!   `GET /debug/requests/{id}` (request tracing: every extraction
//!   carries an `X-Request-Id`, minted or client-supplied, with a
//!   retained per-stage span record), the continuous-extraction
//!   subscription layer (`PUT`/`GET`/`DELETE /watches/{id}` plus
//!   `GET /watches/{id}/events`, a chunked ndjson stream of
//!   instance-level diffs computed each scheduler tick) and
//!   `POST /admin/shutdown` over an
//!   [`ExtractionServer`](lixto_server::ExtractionServer);
//! * [`client`] — a blocking keep-alive [`HttpClient`] for tests,
//!   benches and command-line use.

// `unsafe` is denied crate-wide; the only exception is the raw syscall
// transcription in [`poll`], which opts back in item-locally.
#![deny(unsafe_code)]

pub mod client;
pub mod gateway;
pub mod http;
pub mod json;
mod monitor;
pub mod poll;

pub use client::{HttpClient, HttpResponse, RetryPolicy};
pub use gateway::{
    metrics_json, metrics_json_full, render_prometheus, render_prometheus_full, AcceptBackoff,
    GatewayConfig, GatewayObservations, GatewayStats, HttpGateway, LoopGauges,
};
pub use http::{parse_request, Limits, Request, RequestError, Response};
pub use json::{obj, Json, JsonError};
pub use lixto_obs::{RuleSnapshot, Severity};
pub use monitor::AlertsSnapshot;
