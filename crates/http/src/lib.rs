//! # lixto-http
//!
//! The HTTP/JSON gateway that turns the `lixto_server` extraction pool
//! into a network service — the missing front half of the paper's §6
//! Transformation Server story, where wrappers built visually are
//! "served to applications over the web". Everything is built on the
//! standard library (`std::net::TcpListener` and hand-rolled HTTP/JSON),
//! because this environment has no registry access:
//!
//! * [`json`] — a small JSON value type with a parser and serializer
//!   (full escaping both ways, insertion-ordered objects);
//! * [`http`] — HTTP/1.1 framing: incremental, pipelining-aware request
//!   parsing with header/body size limits, and response serialization;
//! * [`gateway`] — the [`HttpGateway`]: a bounded acceptor + handler
//!   thread pool with keep-alive and graceful drain shutdown, exposing
//!   `POST /extract`, `PUT`/`GET /wrappers`, `GET /metrics` (Prometheus
//!   text or JSON) and `POST /admin/shutdown` over an
//!   [`ExtractionServer`](lixto_server::ExtractionServer);
//! * [`client`] — a blocking keep-alive [`HttpClient`] for tests,
//!   benches and command-line use.

#![forbid(unsafe_code)]

pub mod client;
pub mod gateway;
pub mod http;
pub mod json;

pub use client::{HttpClient, HttpResponse, RetryPolicy};
pub use gateway::{metrics_json, render_prometheus, GatewayConfig, GatewayStats, HttpGateway};
pub use http::{parse_request, Limits, Request, RequestError, Response};
pub use json::{obj, Json, JsonError};
