//! The HTTP gateway: a bounded acceptor + connection-handler thread pool
//! serving the [`ExtractionServer`] over the wire.
//!
//! Architecture mirrors the pool it fronts: one acceptor thread pushes
//! accepted sockets into a bounded queue (a full queue blocks the
//! acceptor, pushing overload back into the TCP backlog), N handler
//! threads each own one connection at a time and serve keep-alive
//! request sequences off it (pipelined requests included). Graceful
//! shutdown stops the acceptor, lets every handler finish the request it
//! is serving (responses switch to `Connection: close`), and joins all
//! threads — in-flight extraction tickets resolve because the pool's own
//! shutdown drains before tearing down (see
//! [`ExtractionServer::initiate_shutdown`]).
//!
//! ## Endpoints
//!
//! | Method & path           | Body → response |
//! |-------------------------|-----------------|
//! | `POST /extract`         | `{"wrapper", "version"?, "url", "html"?}` → XML + pattern instances |
//! | `PUT /wrappers/{name}`  | `{"program", "root"?, "auxiliary"?}` → registered version |
//! | `GET /wrappers`         | the deployed catalog |
//! | `GET /metrics`          | Prometheus text, or JSON with `Accept: application/json` |
//! | `GET /healthz`          | liveness probe |
//! | `POST /admin/shutdown`  | request graceful shutdown |
//!
//! `/extract` submits through the pool's non-blocking `try_submit`, so a
//! full shard queue surfaces as `429 Too Many Requests` instead of
//! stalling the handler — the client decides whether to retry.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crossbeam_channel::{bounded, Receiver};
use lixto_server::{
    DeployError, ExtractionRequest, ExtractionResponse, ExtractionServer, MetricsSnapshot,
    RequestSource, ServerError, WrapperSpec, XmlDesign,
};

use crate::http::{parse_request, Limits, Request, RequestError, Response};
use crate::json::{obj, Json};

/// Sizing and protocol knobs for [`HttpGateway::bind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayConfig {
    /// Connection-handler threads. Each owns one connection at a time,
    /// so this bounds concurrent keep-alive sessions.
    pub handler_threads: usize,
    /// Bounded queue of accepted-but-unclaimed sockets; a full queue
    /// blocks the acceptor (overload spills into the TCP backlog).
    pub accept_backlog: usize,
    /// Parser size limits.
    pub limits: Limits,
    /// How long an idle keep-alive connection may sit between requests
    /// before the handler closes it (also bounds shutdown latency).
    pub idle_timeout: Duration,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            handler_threads: 8,
            accept_backlog: 64,
            limits: Limits::default(),
            idle_timeout: Duration::from_secs(5),
        }
    }
}

/// Counters the gateway keeps about itself (the pool's own metrics come
/// from [`ExtractionServer::metrics`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GatewayStats {
    /// Connections accepted and served.
    pub connections: u64,
    /// Requests answered (any status).
    pub requests: u64,
    /// Responses with a 4xx status.
    pub responses_4xx: u64,
    /// Responses with a 5xx status.
    pub responses_5xx: u64,
}

struct SharedGateway {
    server: Arc<ExtractionServer>,
    config: GatewayConfig,
    stop: AtomicBool,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    connections: AtomicU64,
    requests: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
}

impl SharedGateway {
    fn stats(&self) -> GatewayStats {
        GatewayStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses_4xx: self.responses_4xx.load(Ordering::Relaxed),
            responses_5xx: self.responses_5xx.load(Ordering::Relaxed),
        }
    }
}

/// The running HTTP front-end. Dropping it without calling
/// [`shutdown`](HttpGateway::shutdown) leaves the threads serving until
/// the process exits (like a detached server).
pub struct HttpGateway {
    addr: SocketAddr,
    shared: Arc<SharedGateway>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    handlers: Vec<std::thread::JoinHandle<()>>,
}

impl HttpGateway {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start the acceptor + handler pool serving `server`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: GatewayConfig,
        server: Arc<ExtractionServer>,
    ) -> std::io::Result<HttpGateway> {
        let config = GatewayConfig {
            handler_threads: config.handler_threads.max(1),
            accept_backlog: config.accept_backlog.max(1),
            ..config
        };
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(SharedGateway {
            server,
            config: config.clone(),
            stop: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
        });
        let (conn_tx, conn_rx) = bounded::<TcpStream>(config.accept_backlog);
        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("lixto-http-acceptor".to_string())
                .spawn(move || {
                    // conn_tx lives (only) here: when this loop exits the
                    // sender drops, the queue drains, and the handlers'
                    // recv() disconnects — that is the drain signal.
                    loop {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if shared.stop.load(Ordering::Acquire) {
                                    break; // the stream is the shutdown wake-up
                                }
                                if conn_tx.send(stream).is_err() {
                                    break;
                                }
                            }
                            Err(_) => {
                                // Transient (ECONNABORTED mid-handshake,
                                // momentary EMFILE): intake must survive.
                                // Back off briefly so a persistent error
                                // cannot spin a core.
                                if shared.stop.load(Ordering::Acquire) {
                                    break;
                                }
                                std::thread::sleep(Duration::from_millis(10));
                            }
                        }
                    }
                })
                .expect("spawn acceptor")
        };
        let handlers = (0..config.handler_threads)
            .map(|i| {
                let conn_rx = conn_rx.clone();
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("lixto-http-handler-{i}"))
                    .spawn(move || handler_loop(conn_rx, shared))
                    .expect("spawn handler")
            })
            .collect();
        Ok(HttpGateway {
            addr: local_addr,
            shared,
            acceptor: Some(acceptor),
            handlers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The gateway's own counters.
    pub fn stats(&self) -> GatewayStats {
        self.shared.stats()
    }

    /// Block until a client asks for shutdown via `POST /admin/shutdown`
    /// (returns immediately if it already happened). The caller then
    /// runs [`shutdown`](HttpGateway::shutdown).
    pub fn wait_shutdown_requested(&self) {
        let mut requested = self
            .shared
            .shutdown_requested
            .lock()
            .expect("shutdown flag poisoned");
        while !*requested {
            requested = self
                .shared
                .shutdown_cv
                .wait(requested)
                .expect("shutdown flag poisoned");
        }
    }

    /// Graceful shutdown: stop accepting, serve what is in flight (each
    /// handler finishes its current request and closes), join every
    /// thread, and return the final counters. The extraction pool is
    /// *not* shut down — it may be shared; call
    /// [`ExtractionServer::initiate_shutdown`] separately.
    pub fn shutdown(mut self) -> GatewayStats {
        self.shared.stop.store(true, Ordering::Release);
        // Wake the acceptor out of its blocking accept(). A wildcard
        // bind address (0.0.0.0 / ::) is not connectable everywhere, so
        // aim the wake-up at loopback on the bound port.
        let wake_addr = if self.addr.ip().is_unspecified() {
            let loopback: std::net::IpAddr = if self.addr.is_ipv4() {
                std::net::Ipv4Addr::LOCALHOST.into()
            } else {
                std::net::Ipv6Addr::LOCALHOST.into()
            };
            SocketAddr::new(loopback, self.addr.port())
        } else {
            self.addr
        };
        let _ = TcpStream::connect(wake_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for handler in self.handlers.drain(..) {
            let _ = handler.join();
        }
        self.shared.stats()
    }
}

fn handler_loop(conn_rx: Receiver<TcpStream>, shared: Arc<SharedGateway>) {
    // Keep draining queued connections even while stopping: they were
    // accepted, so they get served (with `Connection: close`).
    while let Ok(stream) = conn_rx.recv() {
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let _ = serve_connection(stream, &shared);
    }
}

fn count_response(shared: &SharedGateway, status: u16) {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    if (400..500).contains(&status) {
        shared.responses_4xx.fetch_add(1, Ordering::Relaxed);
    } else if status >= 500 {
        shared.responses_5xx.fetch_add(1, Ordering::Relaxed);
    }
}

fn serve_connection(mut stream: TcpStream, shared: &SharedGateway) -> std::io::Result<()> {
    stream.set_read_timeout(Some(shared.config.idle_timeout))?;
    stream.set_nodelay(true)?;
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut out: Vec<u8> = Vec::with_capacity(4096);
    // Whether the current (incomplete) request already got its interim
    // `100 Continue`; reset when a request completes.
    let mut continued = false;
    loop {
        match parse_request(&buf, &shared.config.limits) {
            Ok(Some((request, consumed))) => {
                buf.drain(..consumed);
                continued = false;
                let response = route(&request, shared);
                // Re-check stop *after* routing: /admin/shutdown flips it
                // and its own response must already say close.
                let keep_alive = request.keep_alive() && !shared.stop.load(Ordering::Acquire);
                count_response(shared, response.status);
                out.clear();
                response.write_to(&mut out, keep_alive);
                stream.write_all(&out)?;
                if !keep_alive {
                    return Ok(());
                }
                continue; // serve pipelined bytes before reading again
            }
            Ok(None) => {
                // Headers complete but body pending: honor
                // `Expect: 100-continue` so clients (curl with a body
                // over 1 KiB, for one) send the body immediately instead
                // of waiting out their expect timeout.
                if !continued {
                    if let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                        if contains_ignore_ascii_case(&buf[..end], b"100-continue") {
                            stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
                        }
                        continued = true; // scan the header section once
                    }
                }
            }
            Err(error) => {
                // Answer before draining: an `Expect: 100-continue`
                // client is holding its body back waiting for us, and
                // the 413 is what tells it to stop.
                let plan = drain_plan(&error, buf.len());
                let keep_alive = plan.is_some() && !shared.stop.load(Ordering::Acquire);
                let response =
                    Response::error(error.status(), error_code(&error), &error.message());
                count_response(shared, response.status);
                out.clear();
                response.write_to(&mut out, keep_alive);
                stream.write_all(&out)?;
                let Some(plan) = plan.filter(|_| keep_alive) else {
                    return Ok(());
                };
                if !discard_from_stream(&mut stream, plan.from_stream)? {
                    return Ok(()); // body never arrived in full: close
                }
                // Drop only the oversized request's bytes: anything after
                // them is the next pipelined request and must survive.
                buf.drain(..plan.from_buffer);
                continued = false;
                continue;
            }
        }
        let mut chunk = [0u8; 16 * 1024];
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(()); // idle keep-alive connection: close it
            }
            Err(e) => return Err(e),
        }
    }
}

/// How to dispose of an over-long request whose framing is still
/// intact: drop `from_buffer` bytes of the connection buffer and read
/// away `from_stream` bytes still in flight, after which the connection
/// can keep serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DrainPlan {
    from_buffer: usize,
    from_stream: usize,
}

fn drain_plan(error: &RequestError, buffered: usize) -> Option<DrainPlan> {
    let RequestError::BodyTooLarge {
        declared,
        body_start,
    } = error
    else {
        return None; // other parse errors poison the framing: close
    };
    /// Refuse to sponge up absurd declarations; just close instead.
    const MAX_DRAIN: usize = 8 * 1024 * 1024;
    if *declared > MAX_DRAIN {
        return None;
    }
    let total = body_start + declared;
    Some(DrainPlan {
        from_buffer: total.min(buffered),
        from_stream: total.saturating_sub(buffered),
    })
}

/// Read and discard exactly `remaining` bytes; false when the peer
/// closed or errored first.
fn discard_from_stream(stream: &mut TcpStream, mut remaining: usize) -> std::io::Result<bool> {
    let mut sink = [0u8; 16 * 1024];
    while remaining > 0 {
        let take = sink.len().min(remaining);
        match stream.read(&mut sink[..take]) {
            Ok(0) => return Ok(false),
            Ok(n) => remaining -= n,
            Err(_) => return Ok(false),
        }
    }
    Ok(true)
}

/// Case-insensitive substring search over raw header bytes.
fn contains_ignore_ascii_case(haystack: &[u8], needle: &[u8]) -> bool {
    haystack
        .windows(needle.len())
        .any(|w| w.eq_ignore_ascii_case(needle))
}

fn error_code(error: &RequestError) -> &'static str {
    match error {
        RequestError::Malformed(_) => "malformed_request",
        RequestError::HeadersTooLarge => "headers_too_large",
        RequestError::BodyTooLarge { .. } => "body_too_large",
        RequestError::UnsupportedTransferEncoding => "unsupported_transfer_encoding",
    }
}

fn route(request: &Request, shared: &SharedGateway) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/extract") => post_extract(request, shared),
        ("GET", "/wrappers") => get_wrappers(shared),
        ("PUT", path)
            if path
                .strip_prefix("/wrappers/")
                .is_some_and(|n| !n.is_empty()) =>
        {
            put_wrapper(
                path.strip_prefix("/wrappers/").expect("checked"),
                request,
                shared,
            )
        }
        ("GET", "/metrics") => get_metrics(request, shared),
        ("GET", "/healthz") => Response::json(200, &obj([("status", "ok".into())])),
        ("POST", "/admin/shutdown") => {
            shared.stop.store(true, Ordering::Release);
            *shared
                .shutdown_requested
                .lock()
                .expect("shutdown flag poisoned") = true;
            shared.shutdown_cv.notify_all();
            Response::json(200, &obj([("shutting_down", true.into())]))
        }
        (_, "/extract" | "/wrappers" | "/metrics" | "/healthz" | "/admin/shutdown") => {
            Response::error(405, "method_not_allowed", "wrong method for this path")
        }
        (_, path) if path.starts_with("/wrappers/") => {
            Response::error(405, "method_not_allowed", "wrong method for this path")
        }
        _ => Response::error(404, "not_found", "no such endpoint"),
    }
}

/// Map a pool-side failure onto the wire.
fn server_error_response(error: &ServerError) -> Response {
    let (status, code) = match error {
        ServerError::UnknownWrapper(_) => (404, "unknown_wrapper"),
        ServerError::UnknownVersion { .. } => (404, "unknown_version"),
        ServerError::FetchFailed(_) => (502, "fetch_failed"),
        ServerError::Backpressure => (429, "backpressure"),
        ServerError::ShuttingDown => (503, "shutting_down"),
        ServerError::Canceled => (503, "canceled"),
        ServerError::Internal(_) => (500, "internal"),
    };
    let response = Response::error(status, code, &error.to_string());
    if status == 429 {
        response.with_header("retry-after", "1")
    } else {
        response
    }
}

fn bad_request(message: &str) -> Response {
    Response::error(400, "bad_request", message)
}

fn post_extract(request: &Request, shared: &SharedGateway) -> Response {
    let Some(body) = request.body_utf8() else {
        return bad_request("body is not UTF-8");
    };
    let parsed = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return bad_request(&e.to_string()),
    };
    let Some(wrapper) = parsed.get("wrapper").and_then(Json::as_str) else {
        return bad_request("missing string field \"wrapper\"");
    };
    let version = match parsed.get("version") {
        None | Some(Json::Null) => None,
        Some(v) => match v.as_u64().and_then(|n| u32::try_from(n).ok()) {
            Some(n) => Some(n),
            None => return bad_request("\"version\" must be an unsigned integer"),
        },
    };
    let Some(url) = parsed.get("url").and_then(Json::as_str) else {
        return bad_request("missing string field \"url\"");
    };
    let source = match parsed.get("html") {
        None | Some(Json::Null) => RequestSource::Web {
            url: url.to_string(),
        },
        Some(html) => match html.as_str() {
            Some(html) => RequestSource::Inline {
                url: url.to_string(),
                html: html.to_string(),
            },
            None => return bad_request("\"html\" must be a string"),
        },
    };
    let submitted = shared.server.try_submit(ExtractionRequest {
        wrapper: wrapper.to_string(),
        version,
        source,
    });
    let outcome = match submitted {
        Ok(ticket) => ticket.wait(),
        Err(e) => Err(e),
    };
    match outcome {
        Ok(response) => Response::json(200, &extraction_json(&response)),
        Err(error) => server_error_response(&error),
    }
}

/// The `/extract` response body: execution metadata, the designed XML
/// document, and the extracted pattern instances as JSON.
fn extraction_json(response: &ExtractionResponse) -> Json {
    let extraction = response.extraction();
    let patterns: Vec<Json> = extraction
        .patterns()
        .iter()
        .map(|name| {
            let texts: Vec<Json> = extraction
                .texts_of(name)
                .into_iter()
                .map(Json::from)
                .collect();
            obj([("name", name.as_str().into()), ("instances", texts.into())])
        })
        .collect();
    obj([
        ("wrapper", response.wrapper.as_str().into()),
        ("version", response.version.into()),
        ("cache_hit", response.cache_hit.into()),
        ("latency_us", (response.latency.as_micros() as u64).into()),
        ("xml", response.xml().into()),
        ("patterns", patterns.into()),
    ])
}

fn get_wrappers(shared: &SharedGateway) -> Response {
    let wrappers: Vec<Json> = shared
        .server
        .registry()
        .catalog()
        .into_iter()
        .map(|(name, latest)| obj([("name", name.into()), ("latest", latest.into())]))
        .collect();
    Response::json(200, &obj([("wrappers", wrappers.into())]))
}

fn put_wrapper(name: &str, request: &Request, shared: &SharedGateway) -> Response {
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
    {
        return bad_request("wrapper names are [A-Za-z0-9_-]+");
    }
    let Some(body) = request.body_utf8() else {
        return bad_request("body is not UTF-8");
    };
    let parsed = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return bad_request(&e.to_string()),
    };
    let Some(program) = parsed.get("program").and_then(Json::as_str) else {
        return bad_request("missing string field \"program\"");
    };
    let mut design = XmlDesign::new();
    if let Some(root) = parsed.get("root") {
        match root.as_str() {
            Some(root) => design = design.root(root),
            None => return bad_request("\"root\" must be a string"),
        }
    }
    if let Some(auxiliary) = parsed.get("auxiliary") {
        let Some(items) = auxiliary.as_array() else {
            return bad_request("\"auxiliary\" must be an array of strings");
        };
        for item in items {
            match item.as_str() {
                Some(pattern) => design = design.auxiliary(pattern),
                None => return bad_request("\"auxiliary\" must be an array of strings"),
            }
        }
    }
    match WrapperSpec::from_source(program, design) {
        Ok(spec) => {
            let version = shared.server.registry().register(name, spec);
            Response::json(
                201,
                &obj([("name", name.into()), ("version", version.into())]),
            )
        }
        Err(e) => deploy_error_response(&e),
    }
}

/// Deploy-time rejection: the wrapper was compiled once, here, and the
/// structured parse/compile error goes back as the 400 body — the
/// client learns which rule, pattern and identifier is at fault instead
/// of every later `/extract` silently returning nothing.
fn deploy_error_response(error: &DeployError) -> Response {
    let detail = match error {
        DeployError::Parse(parse) => obj([
            ("kind", "parse".into()),
            ("at", (parse.at as u64).into()),
            ("message", parse.message.as_str().into()),
        ]),
        DeployError::Compile(compile) => obj([
            ("kind", "compile".into()),
            ("code", compile.code().into()),
            ("rule", (compile.rule() as u64).into()),
            ("pattern", compile.pattern().into()),
            (
                "subject",
                compile.subject().map(Json::from).unwrap_or(Json::Null),
            ),
        ]),
    };
    Response::json(
        400,
        &obj([
            ("error", "bad_program".into()),
            (
                "message",
                format!("wrapper does not compile: {error}").into(),
            ),
            ("detail", detail),
        ]),
    )
}

fn get_metrics(request: &Request, shared: &SharedGateway) -> Response {
    let snapshot = shared.server.metrics();
    let stats = shared.stats();
    let wants_json = request
        .header("accept")
        .is_some_and(|accept| accept.contains("application/json"));
    if wants_json {
        Response::json(200, &metrics_json(&snapshot, &stats))
    } else {
        Response::text(200, render_prometheus(&snapshot, &stats))
    }
}

/// The snapshot as JSON — field for field the same numbers
/// [`ExtractionServer::metrics`] reports in-process.
pub fn metrics_json(snapshot: &MetricsSnapshot, stats: &GatewayStats) -> Json {
    let depths: Vec<Json> = snapshot
        .queue_depths
        .iter()
        .map(|&d| Json::from(d))
        .collect();
    obj([
        ("submitted", snapshot.submitted.into()),
        ("completed", snapshot.completed.into()),
        ("errors", snapshot.errors.into()),
        ("rejected", snapshot.rejected.into()),
        ("throughput_per_sec", snapshot.throughput_per_sec.into()),
        ("p50_us", snapshot.p50_us.into()),
        ("p99_us", snapshot.p99_us.into()),
        ("queue_depths", depths.into()),
        ("workers", snapshot.workers.into()),
        (
            "cache",
            obj([
                ("hits", snapshot.cache.hits.into()),
                ("misses", snapshot.cache.misses.into()),
                ("evictions", snapshot.cache.evictions.into()),
                ("invalidations", snapshot.cache.invalidations.into()),
                ("len", snapshot.cache.len.into()),
                ("capacity", snapshot.cache.capacity.into()),
                ("hit_rate", snapshot.cache.hit_rate().into()),
            ]),
        ),
        (
            "gateway",
            obj([
                ("connections", stats.connections.into()),
                ("requests", stats.requests.into()),
                ("responses_4xx", stats.responses_4xx.into()),
                ("responses_5xx", stats.responses_5xx.into()),
            ]),
        ),
    ])
}

fn prometheus_metric(out: &mut String, name: &str, kind: &str, help: &str, value: &str) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
    ));
}

/// The snapshot in the Prometheus text exposition format.
pub fn render_prometheus(snapshot: &MetricsSnapshot, stats: &GatewayStats) -> String {
    let mut out = String::with_capacity(2048);
    let pool_metrics = [
        (
            "lixto_requests_submitted_total",
            "counter",
            "Requests accepted into a shard queue",
            snapshot.submitted.to_string(),
        ),
        (
            "lixto_requests_completed_total",
            "counter",
            "Requests completed successfully",
            snapshot.completed.to_string(),
        ),
        (
            "lixto_requests_errored_total",
            "counter",
            "Requests completed with an error",
            snapshot.errors.to_string(),
        ),
        (
            "lixto_requests_rejected_total",
            "counter",
            "Requests rejected by backpressure",
            snapshot.rejected.to_string(),
        ),
        (
            "lixto_throughput_per_second",
            "gauge",
            "Completions per second since start",
            format!("{:.3}", snapshot.throughput_per_sec),
        ),
        (
            "lixto_latency_p50_microseconds",
            "gauge",
            "Median end-to-end latency",
            snapshot.p50_us.to_string(),
        ),
        (
            "lixto_latency_p99_microseconds",
            "gauge",
            "99th-percentile end-to-end latency",
            snapshot.p99_us.to_string(),
        ),
        (
            "lixto_workers",
            "gauge",
            "Worker thread count",
            snapshot.workers.to_string(),
        ),
    ];
    for (name, kind, help, value) in &pool_metrics {
        prometheus_metric(&mut out, name, kind, help, value);
    }
    out.push_str("# HELP lixto_queue_depth Jobs currently queued per shard\n");
    out.push_str("# TYPE lixto_queue_depth gauge\n");
    for (shard, depth) in snapshot.queue_depths.iter().enumerate() {
        out.push_str(&format!("lixto_queue_depth{{shard=\"{shard}\"}} {depth}\n"));
    }
    let tail_metrics = [
        (
            "lixto_cache_hits_total",
            "counter",
            "Cache lookups answered from the cache",
            snapshot.cache.hits.to_string(),
        ),
        (
            "lixto_cache_misses_total",
            "counter",
            "Cache lookups that required a fresh extraction",
            snapshot.cache.misses.to_string(),
        ),
        (
            "lixto_cache_evictions_total",
            "counter",
            "Cache entries evicted by the LRU policy",
            snapshot.cache.evictions.to_string(),
        ),
        (
            "lixto_cache_invalidations_total",
            "counter",
            "Cache entries dropped by change detection or crawl revalidation",
            snapshot.cache.invalidations.to_string(),
        ),
        (
            "lixto_cache_entries",
            "gauge",
            "Cache entries currently held",
            snapshot.cache.len.to_string(),
        ),
        (
            "lixto_http_connections_total",
            "counter",
            "Connections accepted by the gateway",
            stats.connections.to_string(),
        ),
        (
            "lixto_http_requests_total",
            "counter",
            "HTTP requests answered by the gateway",
            stats.requests.to_string(),
        ),
        (
            "lixto_http_responses_4xx_total",
            "counter",
            "HTTP responses with a 4xx status",
            stats.responses_4xx.to_string(),
        ),
        (
            "lixto_http_responses_5xx_total",
            "counter",
            "HTTP responses with a 5xx status",
            stats.responses_5xx.to_string(),
        ),
    ];
    for (name, kind, help, value) in &tail_metrics {
        prometheus_metric(&mut out, name, kind, help, value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use lixto_server::{ServerConfig, WrapperRegistry};

    const WRAPPER: &str = r#"
        offer(S, X) :- document("http://shop/", S), subelem(S, (?.li, []), X).
    "#;

    fn gateway() -> (HttpGateway, Arc<ExtractionServer>) {
        let registry = Arc::new(WrapperRegistry::new());
        registry
            .register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
            .unwrap();
        let server = Arc::new(ExtractionServer::start(
            ServerConfig::default(),
            registry,
            Arc::new(lixto_elog::StaticWeb::new()),
        ));
        let gateway = HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                handler_threads: 2,
                idle_timeout: Duration::from_millis(500),
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .unwrap();
        (gateway, server)
    }

    #[test]
    fn serves_extract_wrappers_metrics_and_health_over_keep_alive() {
        let (gateway, server) = gateway();
        let mut client = HttpClient::connect(gateway.addr()).unwrap();
        // Health.
        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        // Extract (inline document).
        let body = r#"{"wrapper":"shop","url":"http://shop/","html":"<ul><li>beans</li></ul>"}"#;
        let extract = client.post_json("/extract", body).unwrap();
        assert_eq!(extract.status, 200, "{}", extract.text());
        let parsed = extract.json().unwrap();
        assert!(parsed
            .get("xml")
            .and_then(Json::as_str)
            .unwrap()
            .contains("beans"));
        assert_eq!(parsed.get("cache_hit").and_then(Json::as_bool), Some(false));
        // Same connection (keep-alive): a repeat hits the cache.
        let repeat = client.post_json("/extract", body).unwrap();
        assert_eq!(
            repeat
                .json()
                .unwrap()
                .get("cache_hit")
                .and_then(Json::as_bool),
            Some(true)
        );
        // Wrapper deployment and listing.
        let put = client
            .put_json("/wrappers/shop", r#"{"program":"offer(S, X) :- document(\"http://shop/\", S), subelem(S, (?.li, []), X).","root":"offers_v2"}"#)
            .unwrap();
        assert_eq!(put.status, 201, "{}", put.text());
        let listing = client.get("/wrappers").unwrap();
        assert!(listing.text().contains(r#"{"name":"shop","latest":2}"#));
        // Metrics: JSON numbers agree with the in-process snapshot.
        let metrics = client.get_accept("/metrics", "application/json").unwrap();
        let snapshot = server.metrics();
        let parsed = metrics.json().unwrap();
        assert_eq!(
            parsed.get("completed").and_then(Json::as_u64),
            Some(snapshot.completed)
        );
        // Prometheus rendering carries the same counters.
        let text = client.get("/metrics").unwrap();
        assert!(text.text().contains(&format!(
            "lixto_requests_completed_total {}",
            snapshot.completed
        )));
        // Errors map to 4xx.
        assert_eq!(client.post_json("/extract", "{oops").unwrap().status, 400);
        assert_eq!(
            client
                .post_json("/extract", r#"{"wrapper":"ghost","url":"u"}"#)
                .unwrap()
                .status,
            404
        );
        assert_eq!(client.get("/no/such/path").unwrap().status, 404);
        assert_eq!(
            client
                .request("DELETE", "/wrappers", &[], None)
                .unwrap()
                .status,
            405
        );
        drop(client);
        let stats = gateway.shutdown();
        assert_eq!(stats.connections, 1, "one keep-alive connection");
        assert!(stats.requests >= 9);
        server.initiate_shutdown();
    }

    #[test]
    fn request_pipelined_behind_oversized_body_still_answered() {
        use std::io::{Read, Write};

        let registry = Arc::new(WrapperRegistry::new());
        registry
            .register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
            .unwrap();
        let server = Arc::new(ExtractionServer::start(
            ServerConfig::default(),
            registry,
            Arc::new(lixto_elog::StaticWeb::new()),
        ));
        let gateway = HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                handler_threads: 1,
                limits: crate::http::Limits {
                    max_header_bytes: 2048,
                    max_body_bytes: 64,
                },
                idle_timeout: Duration::from_millis(500),
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .unwrap();
        // One write carrying an oversized POST *and* a pipelined GET:
        // the 413 must drain only the oversized request's bytes, leaving
        // the GET to be answered on the same connection.
        let oversized_body = "x".repeat(100);
        let mut raw = std::net::TcpStream::connect(gateway.addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        raw.write_all(
            format!(
                "POST /extract HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
                oversized_body.len(),
                oversized_body
            )
            .as_bytes(),
        )
        .unwrap();
        let mut received = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match raw.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => received.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
        }
        let text = String::from_utf8_lossy(&received);
        assert!(text.contains("HTTP/1.1 413"), "first response: {text}");
        assert!(
            text.contains("HTTP/1.1 200") && text.contains(r#"{"status":"ok"}"#),
            "the pipelined GET must still be answered: {text}"
        );
        drop(raw);
        gateway.shutdown();
        server.initiate_shutdown();
    }

    #[test]
    fn admin_shutdown_unblocks_the_waiter_and_closes() {
        let (gateway, server) = gateway();
        let addr = gateway.addr();
        let trigger = std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            let response = client.post_json("/admin/shutdown", "{}").unwrap();
            assert_eq!(response.status, 200);
            assert_eq!(response.header("connection"), Some("close"));
        });
        gateway.wait_shutdown_requested();
        trigger.join().unwrap();
        gateway.shutdown();
        server.initiate_shutdown();
    }
}
