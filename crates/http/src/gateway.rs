//! The HTTP gateway: an event-driven M:N connection multiplexer serving
//! the [`ExtractionServer`] over the wire.
//!
//! ## Architecture
//!
//! A small fixed set of **event-loop threads** (see
//! [`GatewayConfig::event_loops`]) each owns many non-blocking sockets,
//! driven by the dependency-free readiness module in
//! [`poll`](crate::poll). One acceptor thread assigns each accepted
//! connection to the least-loaded loop (bounded by
//! [`GatewayConfig::max_connections_per_loop`]; past every cap the
//! socket is refused with `503`) and wakes that loop through its
//! self-pipe. An idle keep-alive session therefore costs a few hundred
//! bytes of state, not a parked thread — thousands of mostly-idle
//! portal clients fit in a handful of threads.
//!
//! Each connection is a little state machine layered on the incremental
//! request parser in [`http`](crate::http):
//!
//! ```text
//!             bytes in                 complete request
//!   reading ───────────► (parse) ───────────────────────┐
//!      ▲  ▲                │ /extract, /extract/batch    │ other routes
//!      │  │                ▼                             ▼
//!      │  │            dispatched ──────────────────► writing
//!      │  │            (parked on pool tickets;          │
//!      │  │             completion via self-pipe)        │ flushed
//!      │  └──────────────────────────────────────────────┘ keep-alive
//!      └── idle (empty buffer; evicted after `idle_timeout`)
//! ```
//!
//! Extraction dispatch is **asynchronous**: the loop submits through the
//! pool's [`try_submit_with_notify`](ExtractionServer::try_submit_with_notify)
//! and parks the connection; when the job resolves, the worker's
//! completion callback pushes a token into the loop's inbox and wakes
//! its self-pipe. A slow extraction therefore never stalls unrelated
//! connections sharing the loop, and a full shard queue surfaces as
//! `429 Too Many Requests` immediately.
//!
//! Timeouts are threaded per state: `idle_timeout` evicts quiet
//! keep-alive sessions, `read_timeout` bounds how long one request may
//! take to arrive (a slow-loris client trickling bytes is answered
//! `408` and closed, without ever pinning the loop), and
//! `write_timeout` bounds a peer that stops reading its response.
//!
//! Graceful shutdown stops the acceptor, closes idle connections,
//! flushes in-flight responses (switched to `Connection: close`), waits
//! for parked extractions to resolve — the pool's own drain guarantees
//! every ticket answers — and joins all threads.
//!
//! ## Endpoints
//!
//! | Method & path           | Body → response |
//! |-------------------------|-----------------|
//! | `POST /extract`         | `{"wrapper", "version"?, "url", "html"?}` → XML + pattern instances |
//! | `POST /extract/batch`   | JSON array of `/extract` bodies → `{"count", "items": [{"status", "body"}]}`, partial failure preserved |
//! | `PUT /wrappers/{name}`  | `{"program", "root"?, "auxiliary"?}` → registered version |
//! | `GET /wrappers`         | the deployed catalog |
//! | `GET /provenance/{key}` | derivation of a stored result: wrapper version, plan fingerprint, source page hash, producing rule per instance |
//! | `GET /metrics`          | Prometheus text (cache, store, gateway, per-stage, per-rule and `lixto_alert_*` series), or JSON with `Accept: application/json` |
//! | `GET /metrics/history`  | windowed rates/quantiles over the sampler's history ring (`?window=SECS&step=SECS`) |
//! | `GET /debug/health`     | SLO watchdog verdict (ok/degraded/critical), per-rule firing state, evidence window |
//! | `GET /debug/live`       | chunked ndjson stream of sampler ticks and alert transitions (`?events=N` bounds it) |
//! | `PUT /watches/{id}`     | `{"wrapper", "url", "interval_ms"?, "webhook"?}` → register (201) or replace (200) a continuous-extraction subscription |
//! | `GET /watches`          | every registered watch with its tick/event/error counters |
//! | `GET /watches/{id}`     | one watch's spec and counters |
//! | `DELETE /watches/{id}`  | unregister a watch |
//! | `GET /watches/{id}/events` | chunked ndjson stream of the watch's instance-level diff events (`?events=N` bounds it) |
//! | `GET /debug/wrappers/{name}` | per-rule execution telemetry of the wrapper's latest version |
//! | `GET /debug/slow`       | the slowest and most recent request spans |
//! | `GET /debug/requests/{id}` | one request's span by its `X-Request-Id` |
//! | `GET /healthz`          | liveness probe |
//! | `POST /admin/shutdown`  | request graceful shutdown |
//!
//! ## Request tracing
//!
//! With [`GatewayConfig::tracing`] on (the default), every `/extract`
//! and `/extract/batch` request gets a trace id — the client's
//! `X-Request-Id` header when it passes validation (1–64 visible ASCII
//! characters), a minted one otherwise — echoed back in the response's
//! `x-request-id` header (batch item envelopes additionally carry a
//! per-item `request_id` suffixed `#i`). The id rides into the worker
//! pool on [`ExtractionRequest::trace`], so worker log events name the
//! request, and a span record (status, per-stage wall times, wake
//! latency) is retained for `GET /debug/requests/{id}` and
//! `GET /debug/slow`. Disabled, responses are byte-identical to the
//! untraced gateway.
//!
//! Every `/extract` response carries a `provenance_key` — the stable
//! store key of the result (wrapper percent-encoded, then plan
//! fingerprint and content address as hex, `@`-separated). Feed it back
//! to `GET /provenance/{key}` — including after a gateway restart, when
//! the durable result store (see `lixto_server::store`) recovered the
//! entry from disk — to learn which wrapper version and rule produced
//! each extracted instance, from which page.
//!
//! `POST /extract/batch` amortizes HTTP framing over tiny documents:
//! one request carries many extraction items, each answered with the
//! exact status and JSON body the equivalent individual `POST /extract`
//! would have produced (so hits, misses, unknown wrappers and oversized
//! items coexist in one response).
//!
//! ```text
//! curl -X POST http://127.0.0.1:7878/extract/batch -d '[
//!   {"wrapper":"news","url":"http://press/finance"},
//!   {"wrapper":"ghost","url":"http://nowhere/"}
//! ]'
//! ```

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use lixto_obs::{
    unix_millis, warn_event, RuleStat, SpanBuffer, SpanRecord, Stage, StageTimes, TraceId,
};
use lixto_server::{
    parse_provenance_key, provenance_key, ChangedEntry, DeployError, DiffEntry, ExtractionRequest,
    ExtractionResponse, ExtractionServer, JobTicket, LatencyHistogram, MetricsSnapshot,
    RequestSource, ServerError, WatchEvent, WatchRegistry, WatchSample, WatchScheduler, WatchSpec,
    WatchStatus, WrapperSpec, XmlDesign,
};

use crate::client::{HttpClient, RetryPolicy};
use crate::http::{parse_request_with_body_limit, Limits, Request, RequestError, Response};
use crate::json::{obj, Json};
use crate::monitor::{AlertsSnapshot, Monitor, TickSample};
use crate::poll::{poll, PollFd, SelfPipe, POLLIN, POLLOUT};

/// Sizing and protocol knobs for [`HttpGateway::bind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayConfig {
    /// **Deprecated compatibility knob** from the thread-per-connection
    /// gateway, where it bounded concurrent keep-alive sessions. It no
    /// longer spawns handler threads; when [`event_loops`] is `0` it
    /// seeds the event-loop count instead (clamped to 1..=4), so old
    /// configurations keep working with the same or better concurrency.
    ///
    /// [`event_loops`]: GatewayConfig::event_loops
    pub handler_threads: usize,
    /// **Deprecated compatibility knob**: the old bounded
    /// accepted-socket queue. Admission is now governed by
    /// [`max_connections_per_loop`](GatewayConfig::max_connections_per_loop);
    /// this field is ignored.
    pub accept_backlog: usize,
    /// Parser size limits (headers, single-request bodies). The batch
    /// endpoint's body allowance is
    /// [`max_batch_body_bytes`](GatewayConfig::max_batch_body_bytes).
    pub limits: Limits,
    /// How long an idle keep-alive connection (no partial request
    /// buffered) may sit between requests before the loop closes it.
    pub idle_timeout: Duration,
    /// Event-loop threads. Each owns many connections; `0` derives the
    /// count from the deprecated
    /// [`handler_threads`](GatewayConfig::handler_threads) (clamped to
    /// 1..=4).
    pub event_loops: usize,
    /// Per-loop connection cap. With every loop at its cap, new
    /// connections are refused with `503 server_busy` + close.
    pub max_connections_per_loop: usize,
    /// How long one request may take to arrive in full once its first
    /// byte is in. A connection trickling bytes slower (slow loris) is
    /// evicted with `408` and closed.
    pub read_timeout: Duration,
    /// How long a response flush may stay blocked on a peer that is not
    /// reading before the connection is dropped.
    pub write_timeout: Duration,
    /// First sleep after a failed `accept(2)`; doubles per consecutive
    /// failure (see [`AcceptBackoff`]).
    pub accept_backoff_initial: Duration,
    /// Upper bound for the accept-error backoff sleep.
    pub accept_backoff_max: Duration,
    /// Maximum items in one `POST /extract/batch` request.
    pub max_batch_items: usize,
    /// Body-size allowance for `POST /extract/batch` (the batch carries
    /// many documents, so the single-request
    /// [`Limits::max_body_bytes`] would be too tight; individual items
    /// are still checked against the single-request limit).
    pub max_batch_body_bytes: usize,
    /// Request tracing (default on): mint or accept an `X-Request-Id`
    /// per extraction request, echo it in the response header (and as a
    /// per-item `request_id` in batch envelopes), and retain a span
    /// record served by `GET /debug/requests/{id}` and
    /// `GET /debug/slow`. Disabled, extraction responses are
    /// byte-identical to the untraced gateway and the span buffer stays
    /// empty.
    pub tracing: bool,
    /// How many of the most recent spans to retain for the debug
    /// endpoints.
    pub recent_spans: usize,
    /// How many of the slowest spans to retain for `GET /debug/slow`.
    pub slow_spans: usize,
    /// How long a span may stay on the `GET /debug/slow` slowest list
    /// before newer traffic ages it out (so the list reflects the
    /// recent past, not all-time records).
    pub slow_span_window: Duration,
    /// Continuous monitoring (default on): a sampler thread records a
    /// metrics snapshot every [`monitor_interval`] into a bounded
    /// history ring (served by `GET /metrics/history`), evaluates the
    /// SLO watchdog over it (`GET /debug/health`, `lixto_alert_*`
    /// metric series, `alert_fired`/`alert_resolved` log events) and
    /// feeds `GET /debug/live` subscribers. Disabled, none of those
    /// threads or endpoints exist and every response — `/metrics`
    /// included — is byte-identical to the unmonitored gateway.
    ///
    /// [`monitor_interval`]: GatewayConfig::monitor_interval
    pub monitor: bool,
    /// Sampling period of the monitor thread.
    pub monitor_interval: Duration,
    /// How many samples the history ring retains (600 × the default
    /// 1 s interval ≈ 10 minutes).
    pub monitor_retention: usize,
    /// How many trailing samples the watchdog judges each tick (its
    /// evidence window is `monitor_interval × monitor_eval_ticks`).
    pub monitor_eval_ticks: u32,
    /// Continuous extraction (default on): a
    /// [`WatchRegistry`] of (wrapper, url, interval) subscriptions
    /// managed via `PUT/GET/DELETE /watches/{id}`, re-run through the
    /// pool by a scheduler thread, with instance-level diff events
    /// delivered to `GET /watches/{id}/events` long-poll subscribers
    /// and configured webhook URLs, and `lixto_watch_*` series on
    /// `/metrics`. Disabled, none of those endpoints or threads exist
    /// and every response is byte-identical to the watchless gateway.
    pub watches: bool,
    /// How often the watch scheduler wakes to check for due
    /// subscriptions (completion notifies wake it sooner).
    pub watch_tick: Duration,
    /// Durability directory for watch subscriptions (see
    /// [`lixto_server::durability_layout`]'s `watches` path). `None`
    /// keeps them in memory; set, registered watches survive restarts.
    pub watch_spool: Option<PathBuf>,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            handler_threads: 8,
            accept_backlog: 64,
            limits: Limits::default(),
            idle_timeout: Duration::from_secs(5),
            event_loops: 0,
            max_connections_per_loop: 4096,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            accept_backoff_initial: Duration::from_millis(1),
            accept_backoff_max: Duration::from_millis(200),
            max_batch_items: 64,
            max_batch_body_bytes: 8 * 1024 * 1024,
            tracing: true,
            recent_spans: 256,
            slow_spans: 32,
            slow_span_window: Duration::from_secs(300),
            monitor: true,
            monitor_interval: Duration::from_secs(1),
            monitor_retention: 600,
            monitor_eval_ticks: 5,
            watches: true,
            watch_tick: Duration::from_millis(250),
            watch_spool: None,
        }
    }
}

impl GatewayConfig {
    /// The effective event-loop count, honoring the deprecated
    /// [`handler_threads`](GatewayConfig::handler_threads) mapping.
    pub fn effective_event_loops(&self) -> usize {
        if self.event_loops > 0 {
            self.event_loops
        } else {
            self.handler_threads.clamp(1, 4)
        }
    }
}

/// Bounded, reset-on-success exponential backoff for `accept(2)`
/// failures (`ECONNABORTED` mid-handshake, momentary `EMFILE`): the
/// acceptor must survive transient errors without spinning a core, yet
/// return to full accept rate the moment the condition clears.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcceptBackoff {
    initial: Duration,
    max: Duration,
    current: Option<Duration>,
}

impl AcceptBackoff {
    /// A backoff sleeping `initial` after the first failure, doubling
    /// per consecutive failure, never exceeding `max` (which is raised
    /// to `initial` if misconfigured below it).
    pub fn new(initial: Duration, max: Duration) -> AcceptBackoff {
        let initial = initial.max(Duration::from_micros(100));
        AcceptBackoff {
            initial,
            max: max.max(initial),
            current: None,
        }
    }

    /// A successful accept clears the streak: the next failure starts
    /// back at the initial sleep.
    pub fn on_success(&mut self) {
        self.current = None;
    }

    /// Record a failure and return how long to sleep before retrying.
    pub fn on_error(&mut self) -> Duration {
        let next = match self.current {
            None => self.initial,
            Some(cur) => cur.saturating_mul(2).min(self.max),
        };
        self.current = Some(next);
        next
    }

    /// Whether the last event was a failure (a sleep is in effect).
    pub fn is_backing_off(&self) -> bool {
        self.current.is_some()
    }
}

/// Counters the gateway keeps about itself (the pool's own metrics come
/// from [`ExtractionServer::metrics`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GatewayStats {
    /// Connections accepted and served.
    pub connections: u64,
    /// Requests answered (any status).
    pub requests: u64,
    /// Responses with a 4xx status.
    pub responses_4xx: u64,
    /// Responses with a 5xx status.
    pub responses_5xx: u64,
}

/// A completion token: which connection slot (and which incarnation of
/// it) a resolved extraction ticket belongs to, and when the worker
/// fired it — the loop measures its own wake-to-dispatch latency from
/// `finished_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Completion {
    slot: usize,
    generation: u64,
    finished_at: Instant,
}

/// Cross-thread mailbox of one event loop: the acceptor pushes adopted
/// sockets, pool workers push completion tokens, shutdown raises
/// `stop` — each followed by a self-pipe wake.
#[derive(Default)]
struct Inbox {
    accepted: Vec<TcpStream>,
    completions: Vec<Completion>,
    /// Monitor events (ticks, alert transitions) to fan out to this
    /// loop's `GET /debug/live` subscribers; pre-serialized once by the
    /// sampler and shared across loops.
    live: Vec<Arc<String>>,
    /// Watch diff events `(watch id, serialized event)` to fan out to
    /// this loop's `GET /watches/{id}/events` subscribers; serialized
    /// once by the scheduler sink and shared across loops.
    watch_events: Vec<(Arc<String>, Arc<String>)>,
    stop: bool,
}

/// The shared half of one event loop (the loop thread owns the
/// connections themselves).
struct LoopShared {
    pipe: SelfPipe,
    inbox: Mutex<Inbox>,
    /// Connections currently assigned (incremented by the acceptor at
    /// assignment, decremented by the loop on close) — the
    /// least-loaded-loop placement key and the per-loop cap gauge.
    load: AtomicUsize,
    /// Connections currently parked on extraction tickets, published by
    /// the loop each poll round — an event-loop health gauge (a loop
    /// whose parked count tracks its load is saturated on the pool, not
    /// on sockets).
    parked: AtomicUsize,
}

impl LoopShared {
    fn wake_with(&self, f: impl FnOnce(&mut Inbox)) {
        f(&mut self.inbox.lock().expect("loop inbox poisoned"));
        self.pipe.wake();
    }
}

struct SharedGateway {
    server: Arc<ExtractionServer>,
    config: GatewayConfig,
    loops: Vec<Arc<LoopShared>>,
    stop: AtomicBool,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    connections: AtomicU64,
    requests: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    /// Completed request spans (recent ring + slowest list), served by
    /// `GET /debug/slow` and `GET /debug/requests/{id}`. Empty while
    /// [`GatewayConfig::tracing`] is off.
    spans: SpanBuffer,
    /// Completion-notify → event-loop dispatch latency (the `wake`
    /// stage), recorded for every completion token regardless of the
    /// tracing flag.
    wake: LatencyHistogram,
    /// The continuous-monitoring subsystem (history ring, SLO
    /// watchdog, live-stream subscriber count); `None` with
    /// [`GatewayConfig::monitor`] off, which also disables every
    /// monitoring endpoint and the sampler thread.
    monitor: Option<Arc<Monitor>>,
    /// The continuous-extraction subscriptions; `None` with
    /// [`GatewayConfig::watches`] off, which also disables every
    /// `/watches` endpoint and the scheduler thread.
    watches: Option<Arc<WatchRegistry>>,
}

/// One event loop's gauges, copied into [`GatewayObservations`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoopGauges {
    /// Connections currently assigned to the loop.
    pub connections: usize,
    /// Of those, connections parked on extraction tickets.
    pub parked: usize,
}

/// Gateway-side observability gauges fed to the metrics renderers
/// alongside the pool's [`MetricsSnapshot`]: event-loop health, wake
/// latency, and per-rule execution telemetry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GatewayObservations {
    /// Per-event-loop connection gauges, in loop order.
    pub event_loops: Vec<LoopGauges>,
    /// Wake-latency observations recorded.
    pub wake_count: u64,
    /// Median wake latency in µs (0 if never observed).
    pub wake_p50_us: u64,
    /// 99th-percentile wake latency in µs (0 if never observed).
    pub wake_p99_us: u64,
    /// Per-rule counters of every registered wrapper's latest version,
    /// `(wrapper name, rule snapshots)` sorted by name.
    pub rules: Vec<(String, Vec<RuleStat>)>,
}

impl SharedGateway {
    fn stats(&self) -> GatewayStats {
        GatewayStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses_4xx: self.responses_4xx.load(Ordering::Relaxed),
            responses_5xx: self.responses_5xx.load(Ordering::Relaxed),
        }
    }

    fn observations(&self) -> GatewayObservations {
        let event_loops = self
            .loops
            .iter()
            .map(|l| LoopGauges {
                connections: l.load.load(Ordering::Relaxed),
                parked: l.parked.load(Ordering::Relaxed),
            })
            .collect();
        let registry = self.server.registry();
        let rules = registry
            .catalog()
            .into_iter()
            .filter_map(|(name, _)| {
                let wrapper = registry.latest(&name)?;
                Some((name, wrapper.telemetry.snapshot()))
            })
            .collect();
        GatewayObservations {
            event_loops,
            wake_count: self.wake.count(),
            wake_p50_us: self.wake.quantile_us(0.50).unwrap_or(0),
            wake_p99_us: self.wake.quantile_us(0.99).unwrap_or(0),
            rules,
        }
    }

    /// Raise the stop flag and wake every loop so the drain begins.
    fn begin_stop(&self) {
        self.stop.store(true, Ordering::Release);
        for event_loop in &self.loops {
            event_loop.wake_with(|inbox| inbox.stop = true);
        }
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// The running HTTP front-end. Dropping it without calling
/// [`shutdown`](HttpGateway::shutdown) leaves the threads serving until
/// the process exits (like a detached server).
pub struct HttpGateway {
    addr: SocketAddr,
    shared: Arc<SharedGateway>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    sampler: Option<std::thread::JoinHandle<()>>,
    watch_scheduler: Option<WatchScheduler>,
    loops: Vec<std::thread::JoinHandle<()>>,
}

impl HttpGateway {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start the acceptor + event loops serving `server`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: GatewayConfig,
        server: Arc<ExtractionServer>,
    ) -> std::io::Result<HttpGateway> {
        let config = GatewayConfig {
            max_connections_per_loop: config.max_connections_per_loop.max(1),
            max_batch_items: config.max_batch_items.max(1),
            ..config
        };
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let loop_count = config.effective_event_loops();
        let loop_shared: Vec<Arc<LoopShared>> = (0..loop_count)
            .map(|_| {
                Ok(Arc::new(LoopShared {
                    pipe: SelfPipe::new()?,
                    inbox: Mutex::new(Inbox::default()),
                    load: AtomicUsize::new(0),
                    parked: AtomicUsize::new(0),
                }))
            })
            .collect::<std::io::Result<_>>()?;
        let slow_window_ms = config
            .slow_span_window
            .as_millis()
            .max(1)
            .min(u128::from(u64::MAX)) as u64;
        let spans = SpanBuffer::new(config.recent_spans, config.slow_spans)
            .with_slow_window_ms(slow_window_ms);
        let monitor = config.monitor.then(|| {
            Arc::new(Monitor::new(
                config.monitor_interval,
                config.monitor_retention,
                config.monitor_eval_ticks,
            ))
        });
        let watches = if config.watches {
            let registry = match &config.watch_spool {
                Some(dir) => WatchRegistry::with_spool(dir).unwrap_or_else(|e| {
                    // A broken spool directory must not keep the
                    // gateway from serving: fall back to an in-memory
                    // registry (subscriptions won't survive restarts).
                    warn_event!(
                        "watch_spool_unavailable",
                        "dir" => dir.display().to_string(),
                        "error" => e.to_string(),
                    );
                    WatchRegistry::new()
                }),
                None => WatchRegistry::new(),
            };
            Some(Arc::new(registry))
        } else {
            None
        };
        let shared = Arc::new(SharedGateway {
            server,
            config,
            loops: loop_shared,
            stop: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            spans,
            wake: LatencyHistogram::new(),
            monitor,
            watches,
        });
        let loops = (0..loop_count)
            .map(|i| {
                let ls = shared.loops[i].clone();
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("lixto-http-loop-{i}"))
                    .spawn(move || EventLoop::new(ls, shared).run())
                    .expect("spawn event loop")
            })
            .collect();
        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("lixto-http-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, shared))
                .expect("spawn acceptor")
        };
        let sampler = shared.monitor.as_ref().map(|_| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("lixto-http-monitor".to_string())
                .spawn(move || sampler_loop(shared))
                .expect("spawn monitor sampler")
        });
        let watch_scheduler = shared.watches.as_ref().map(|registry| {
            let sink_shared = shared.clone();
            let webhook_clients: Mutex<HashMap<String, HttpClient>> = Mutex::new(HashMap::new());
            WatchScheduler::start(
                sink_shared.server.clone(),
                registry.clone(),
                sink_shared.config.watch_tick,
                Box::new(move |event| deliver_watch_event(&sink_shared, &webhook_clients, event)),
            )
        });
        Ok(HttpGateway {
            addr: local_addr,
            shared,
            acceptor: Some(acceptor),
            sampler,
            watch_scheduler,
            loops,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The gateway's own counters.
    pub fn stats(&self) -> GatewayStats {
        self.shared.stats()
    }

    /// Block until a client asks for shutdown via `POST /admin/shutdown`
    /// (returns immediately if it already happened). The caller then
    /// runs [`shutdown`](HttpGateway::shutdown).
    pub fn wait_shutdown_requested(&self) {
        let mut requested = self
            .shared
            .shutdown_requested
            .lock()
            .expect("shutdown flag poisoned");
        while !*requested {
            requested = self
                .shared
                .shutdown_cv
                .wait(requested)
                .expect("shutdown flag poisoned");
        }
    }

    /// Graceful shutdown: stop accepting, close idle connections, flush
    /// what is in flight (responses switch to `Connection: close`), let
    /// parked extractions resolve, join every thread, and return the
    /// final counters. The extraction pool is *not* shut down — it may
    /// be shared; call [`ExtractionServer::initiate_shutdown`]
    /// separately (before or after this call — parked tickets resolve
    /// either way).
    pub fn shutdown(mut self) -> GatewayStats {
        self.shared.begin_stop();
        // Stop the sampler first: it must not broadcast into event
        // loops that are draining their last subscribers.
        if let Some(monitor) = &self.shared.monitor {
            monitor.stop();
        }
        if let Some(sampler) = self.sampler.take() {
            let _ = sampler.join();
        }
        // Same for the watch scheduler: no new watch ticks or diff
        // deliveries once the loops start finishing their streams.
        if let Some(scheduler) = self.watch_scheduler.take() {
            scheduler.stop();
        }
        // Wake the acceptor out of its blocking accept(). A wildcard
        // bind address (0.0.0.0 / ::) is not connectable everywhere, so
        // aim the wake-up at loopback on the bound port.
        let wake_addr = if self.addr.ip().is_unspecified() {
            let loopback: std::net::IpAddr = if self.addr.is_ipv4() {
                std::net::Ipv4Addr::LOCALHOST.into()
            } else {
                std::net::Ipv6Addr::LOCALHOST.into()
            };
            SocketAddr::new(loopback, self.addr.port())
        } else {
            self.addr
        };
        let _ = TcpStream::connect(wake_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for event_loop in self.loops.drain(..) {
            let _ = event_loop.join();
        }
        // Close the shutdown race: the acceptor may have assigned a
        // socket to a loop after that loop drained its inbox for the
        // last time. Nobody will poll those inboxes again — refuse any
        // stranded socket with a 503 instead of leaving its client to
        // hang.
        for event_loop in &self.shared.loops {
            let stranded = std::mem::take(
                &mut event_loop
                    .inbox
                    .lock()
                    .expect("loop inbox poisoned")
                    .accepted,
            );
            for stream in stranded {
                refuse_busy(stream, &self.shared);
            }
        }
        self.shared.stats()
    }
}

fn acceptor_loop(listener: TcpListener, shared: Arc<SharedGateway>) {
    let mut backoff = AcceptBackoff::new(
        shared.config.accept_backoff_initial,
        shared.config.accept_backoff_max,
    );
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff.on_success();
                if shared.stopping() {
                    // Usually this stream is shutdown's own wake-up
                    // connect — but it may be a real client that raced
                    // the stop flag. Answer 503 either way (the wake-up
                    // connect never reads it) instead of a bare reset;
                    // uncounted, so every normal shutdown does not
                    // register a phantom request.
                    write_busy(stream);
                    break;
                }
                assign_connection(stream, &shared);
            }
            Err(e) => {
                // Transient (ECONNABORTED mid-handshake, momentary
                // EMFILE): intake must survive, but a persistent error
                // must not spin a core — sleep the bounded, doubling,
                // reset-on-success backoff.
                if shared.stopping() {
                    break;
                }
                let sleep = backoff.on_error();
                warn_event!(
                    "accept_backoff",
                    "error" => e.to_string(),
                    "sleep_ms" => sleep.as_millis().min(u128::from(u64::MAX)) as u64,
                );
                std::thread::sleep(sleep);
            }
        }
    }
}

/// The monitor sampler thread: one [`Monitor::tick`] per interval until
/// shutdown. Broadcasting to `GET /debug/live` subscribers reuses the
/// completion plumbing — events land in every loop's inbox followed by
/// a self-pipe wake — and is skipped entirely while nobody listens.
fn sampler_loop(shared: Arc<SharedGateway>) {
    let monitor = shared
        .monitor
        .clone()
        .expect("sampler spawned without monitor");
    while monitor.sleep_until_next_tick() {
        let events = monitor.tick(&monitor_tick_sample(&shared));
        if monitor.live_subscribers.load(Ordering::Relaxed) == 0 {
            continue;
        }
        let events: Vec<Arc<String>> = events.into_iter().map(Arc::new).collect();
        for event_loop in &shared.loops {
            let events = events.clone();
            event_loop.wake_with(|inbox| inbox.live.extend(events));
        }
    }
}

/// Gather one sampler tick's raw inputs: the pool's counters plus the
/// gateway's own request/connection/wake gauges. Everything read here
/// is an atomic or a lock-free histogram — the tick never contends
/// with the serving path.
fn monitor_tick_sample(shared: &SharedGateway) -> TickSample {
    let stats = shared.stats();
    let mut connections = 0u64;
    let mut parked = 0u64;
    for event_loop in &shared.loops {
        connections += event_loop.load.load(Ordering::Relaxed) as u64;
        parked += event_loop.parked.load(Ordering::Relaxed) as u64;
    }
    TickSample {
        pool: shared.server.sample(),
        requests: stats.requests,
        responses_4xx: stats.responses_4xx,
        responses_5xx: stats.responses_5xx,
        connections,
        parked,
        wake_count: shared.wake.count(),
        wake_p99_us: shared.wake.quantile_us(0.99).unwrap_or(0),
        wake_buckets: shared.wake.buckets(),
    }
}

/// The watch scheduler's delivery sink: serialize the diff event once,
/// fan it out to every loop's `GET /watches/{id}/events` subscribers
/// (skipped entirely while nobody long-polls), and POST it to the
/// watch's webhook through a cached keep-alive client with the default
/// retry policy. Runs on the scheduler thread, never on an event loop.
fn deliver_watch_event(
    shared: &SharedGateway,
    webhook_clients: &Mutex<HashMap<String, HttpClient>>,
    event: WatchEvent,
) {
    let registry = match &shared.watches {
        Some(registry) => registry,
        None => return,
    };
    let json = watch_event_json(&event).dump();
    if registry.subscribers() > 0 {
        let id = Arc::new(event.watch.clone());
        let line = Arc::new(json.clone());
        for event_loop in &shared.loops {
            let id = id.clone();
            let line = line.clone();
            event_loop.wake_with(|inbox| inbox.watch_events.push((id, line)));
        }
    }
    if let Some(webhook) = &event.webhook {
        let ok = post_webhook(webhook_clients, webhook, &json);
        registry.record_webhook(ok);
        if !ok {
            warn_event!(
                "watch_webhook_failed",
                "watch" => event.watch.clone(),
                "webhook" => webhook.clone(),
            );
        }
    }
}

/// Serialize one [`WatchEvent`] to the wire shape shared by the
/// long-poll stream and webhook POST bodies.
fn watch_event_json(event: &WatchEvent) -> Json {
    fn entries(list: &[DiffEntry]) -> Json {
        Json::Arr(
            list.iter()
                .map(|e| {
                    obj([
                        ("pattern", e.pattern.as_str().into()),
                        ("text", e.text.as_str().into()),
                    ])
                })
                .collect(),
        )
    }
    fn changed(list: &[ChangedEntry]) -> Json {
        Json::Arr(
            list.iter()
                .map(|e| {
                    obj([
                        ("pattern", e.pattern.as_str().into()),
                        ("before", e.before.as_str().into()),
                        ("after", e.after.as_str().into()),
                    ])
                })
                .collect(),
        )
    }
    obj([
        ("type", "watch_event".into()),
        ("watch", event.watch.as_str().into()),
        ("seq", event.seq.into()),
        ("wrapper", event.wrapper.as_str().into()),
        ("url", event.url.as_str().into()),
        ("added", entries(&event.diff.added)),
        ("removed", entries(&event.diff.removed)),
        ("changed", changed(&event.diff.changed)),
    ])
}

/// POST `body` to a webhook URL (`http://host:port/path`), reusing a
/// cached keep-alive client per URL. The client is taken out of the
/// cache during I/O so a slow sink never holds the map lock; a client
/// whose POST failed is dropped rather than returned (its connection
/// state is suspect — the next delivery reconnects).
fn post_webhook(clients: &Mutex<HashMap<String, HttpClient>>, url: &str, body: &str) -> bool {
    let (authority, path) = match url.strip_prefix("http://") {
        Some(rest) if !rest.is_empty() => match rest.split_once('/') {
            Some((authority, path)) => (authority.to_string(), format!("/{path}")),
            None => (rest.to_string(), "/".to_string()),
        },
        _ => {
            warn_event!("watch_webhook_bad_url", "webhook" => url.to_string());
            return false;
        }
    };
    let cached = clients
        .lock()
        .expect("webhook client cache poisoned")
        .remove(url);
    let mut client = match cached {
        Some(client) => client,
        None => match HttpClient::connect(&authority) {
            Ok(client) => client,
            Err(_) => return false,
        },
    };
    let ok = client
        .post_json_with_retry(&path, body, RetryPolicy::default())
        .map(|response| (200..300).contains(&response.status))
        .unwrap_or(false);
    if ok {
        clients
            .lock()
            .expect("webhook client cache poisoned")
            .insert(url.to_string(), client);
    }
    ok
}

/// Hand `stream` to the least-loaded event loop, or refuse it with a
/// `503` when every loop is at its connection cap. Only assigned
/// connections count toward [`GatewayStats::connections`] — refusals
/// surface in the request/5xx counters instead.
fn assign_connection(stream: TcpStream, shared: &SharedGateway) {
    let cap = shared.config.max_connections_per_loop;
    let target = shared
        .loops
        .iter()
        .map(|l| (l.load.load(Ordering::Relaxed), l))
        .filter(|(load, _)| *load < cap)
        .min_by_key(|(load, _)| *load);
    match target {
        Some((_, event_loop)) => {
            shared.connections.fetch_add(1, Ordering::Relaxed);
            event_loop.load.fetch_add(1, Ordering::Relaxed);
            event_loop.wake_with(|inbox| inbox.accepted.push(stream));
        }
        None => refuse_busy(stream, shared),
    }
}

/// Answer `503` inline (short blocking write with a timeout so a dead
/// peer cannot stall the caller) and close, counting the response.
fn refuse_busy(stream: TcpStream, shared: &SharedGateway) {
    count_response(shared, 503);
    write_busy(stream);
}

/// The `503` wire write of [`refuse_busy`], without counter updates —
/// for shutdown paths where the peer may be the gateway's own wake-up
/// connect.
fn write_busy(mut stream: TcpStream) {
    let response = Response::error(
        503,
        "server_busy",
        "connection limit reached; retry shortly",
    )
    .with_header("retry-after", "1");
    let mut out = Vec::with_capacity(256);
    response.write_to(&mut out, false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.write_all(&out);
}

fn count_response(shared: &SharedGateway, status: u16) {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    if (400..500).contains(&status) {
        shared.responses_4xx.fetch_add(1, Ordering::Relaxed);
    } else if status >= 500 {
        shared.responses_5xx.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Per-connection state machine
// ---------------------------------------------------------------------

/// One parked extraction item of a dispatched request.
enum DispatchItem {
    /// Resolved synchronously (parse error, submission error, oversized
    /// item): the status and JSON body to answer with.
    Ready(u16, Json),
    /// Parked on a pool ticket; redeemed when its completion arrives.
    Pending(JobTicket),
}

/// Trace context of one dispatched extraction request (absent when
/// [`GatewayConfig::tracing`] is off).
struct RequestTrace {
    /// Minted or client-supplied (`X-Request-Id`) id; batch items get a
    /// `#i` suffix.
    id: TraceId,
    /// When the gateway started dispatching the parsed request — the
    /// span's end-to-end clock.
    started: Instant,
}

/// A connection parked on extraction work.
struct Dispatch {
    /// Tickets whose completion callback has not fired yet.
    outstanding: usize,
    items: Vec<DispatchItem>,
    /// `POST /extract/batch` (per-item envelope) vs `POST /extract`
    /// (the single item's body *is* the response body).
    batch: bool,
    /// Connection persistence decided from the request at dispatch time
    /// (re-checked against the stop flag when the response is built).
    keep_alive: bool,
    /// The single-item 429 carries a `retry-after` header; remembered
    /// here because synchronous rejections also park briefly as
    /// `Ready` items.
    retry_after: bool,
    /// Trace id + start instant when tracing is on.
    trace: Option<RequestTrace>,
    /// Worst completion wake latency observed for this request (ns);
    /// `None` until a completion token arrives (synchronously resolved
    /// requests never wake).
    wake_ns: Option<u64>,
}

enum ConnState {
    /// Waiting for (more of) a request; an empty buffer means idle
    /// keep-alive.
    Reading,
    /// A complete request is parked on the extraction pool.
    Dispatched(Dispatch),
    /// A response is being flushed; parsing resumes once it is out.
    Writing,
    /// A `GET /debug/live` or `GET /watches/{id}/events` subscriber:
    /// the headers went out chunked, and the connection now receives
    /// events as they happen. The stream ends — with a terminal chunk —
    /// after `remaining` more events (`None` streams until shutdown or
    /// disconnect).
    Streaming {
        remaining: Option<u64>,
        /// The terminal chunk is queued: close once it flushes.
        done: bool,
        /// `None` for monitor live streams; `Some(id)` for a watch
        /// event stream, which receives only that watch's diffs.
        watch: Option<Arc<String>>,
    },
}

struct Conn {
    stream: TcpStream,
    generation: u64,
    state: ConnState,
    /// Bytes received but not yet consumed by the parser.
    buf: Vec<u8>,
    /// Bytes to send; `written` of them already went out.
    out: Vec<u8>,
    written: usize,
    close_after_write: bool,
    /// Whether the current (incomplete) request already got its interim
    /// `100 Continue`.
    continued: bool,
    /// Bytes of an oversized-but-drainable body still to swallow.
    discard: usize,
    /// The peer half-closed its write side: whatever is buffered is all
    /// there will ever be. Buffered complete requests are still served
    /// (the peer may be reading); the connection closes once the parser
    /// needs bytes that cannot come.
    peer_eof: bool,
    /// When the first byte of the current partial request arrived —
    /// the slow-loris clock ([`GatewayConfig::read_timeout`]).
    read_started: Option<Instant>,
    /// Last moment the connection went idle (empty buffer, nothing in
    /// flight) — the keep-alive clock ([`GatewayConfig::idle_timeout`]).
    idle_since: Instant,
    /// When the bytes currently in `out` started flushing.
    write_started: Instant,
}

impl Conn {
    fn adopt(stream: TcpStream, generation: u64) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            generation,
            state: ConnState::Reading,
            buf: Vec::new(),
            out: Vec::new(),
            written: 0,
            close_after_write: false,
            continued: false,
            discard: 0,
            peer_eof: false,
            read_started: None,
            idle_since: Instant::now(),
            write_started: Instant::now(),
        })
    }

    /// Poll interest for the current state: readable while parsing,
    /// writable while anything is queued to send (including an interim
    /// `100 Continue` racing a body), nothing while purely parked.
    fn interest(&self) -> i16 {
        let mut events = 0i16;
        if matches!(self.state, ConnState::Reading) {
            events |= POLLIN;
        }
        if matches!(self.state, ConnState::Streaming { .. }) {
            // A subscriber sends nothing more, but its EOF is the only
            // disconnect signal an idle stream gets.
            events |= POLLIN;
        }
        if self.written < self.out.len() {
            events |= POLLOUT;
        }
        events
    }

    /// The instant at which this connection times out in its current
    /// state, if any (a parked connection with nothing to flush waits
    /// on the pool alone).
    fn deadline(&self, config: &GatewayConfig) -> Option<Instant> {
        if self.written < self.out.len() {
            return Some(self.write_started + config.write_timeout);
        }
        match self.state {
            ConnState::Reading => {
                if self.buf.is_empty() && self.discard == 0 {
                    Some(self.idle_since + config.idle_timeout)
                } else {
                    Some(self.read_started.unwrap_or(self.idle_since) + config.read_timeout)
                }
            }
            // A parked connection waits on the pool alone; an idle
            // subscriber waits on the sampler alone (a stalled one is
            // covered by the pending-write branch above).
            ConnState::Dispatched(_) | ConnState::Writing | ConnState::Streaming { .. } => None,
        }
    }

    /// Queue `response` (appending after any pending interim bytes) and
    /// enter the writing state.
    fn queue_response(&mut self, response: &Response, keep_alive: bool) {
        if self.out.is_empty() {
            self.write_started = Instant::now();
        }
        response.write_to(&mut self.out, keep_alive);
        self.close_after_write = !keep_alive;
        self.state = ConnState::Writing;
    }
}

/// Capacity a connection may keep across requests; a buffer that grew
/// past this for one large request/response is shrunk back once empty,
/// so long-lived keep-alive sessions do not pin their peak allocation
/// forever (idle connections must stay cheap).
const RETAINED_BUF_BYTES: usize = 64 * 1024;

fn shrink_if_bloated(buf: &mut Vec<u8>) {
    if buf.is_empty() && buf.capacity() > RETAINED_BUF_BYTES {
        buf.shrink_to(RETAINED_BUF_BYTES);
    }
}

/// What to do with a connection after an event was handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Keep,
    Close,
}

enum FlushResult {
    Done,
    Partial,
    Closed,
}

struct EventLoop {
    ls: Arc<LoopShared>,
    shared: Arc<SharedGateway>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    next_generation: u64,
    stopping: bool,
}

impl EventLoop {
    fn new(ls: Arc<LoopShared>, shared: Arc<SharedGateway>) -> EventLoop {
        EventLoop {
            ls,
            shared,
            conns: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_generation: 0,
            stopping: false,
        }
    }

    fn run(mut self) {
        let mut pollfds: Vec<PollFd> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::new();
        loop {
            self.drain_inbox();
            if self.stopping {
                self.sweep_for_stop();
                if self.live == 0 {
                    return;
                }
            }
            // Build the interest set: the self-pipe first, then every
            // connection that wants events in its current state.
            pollfds.clear();
            slot_of.clear();
            pollfds.push(PollFd::new(self.ls.pipe.read_fd(), POLLIN));
            let mut deadline: Option<Instant> = None;
            let mut parked = 0usize;
            for (slot, conn) in self.conns.iter().enumerate() {
                let Some(conn) = conn else { continue };
                if matches!(conn.state, ConnState::Dispatched(_)) {
                    parked += 1;
                }
                let events = conn.interest();
                if events != 0 {
                    pollfds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                    slot_of.push(slot);
                }
                if let Some(d) = conn.deadline(&self.shared.config) {
                    deadline = Some(deadline.map_or(d, |cur: Instant| cur.min(d)));
                }
            }
            self.ls.parked.store(parked, Ordering::Relaxed);
            let timeout = deadline.map(|d| d.saturating_duration_since(Instant::now()));
            if poll(&mut pollfds, timeout).is_err() {
                // poll(2) only fails for EINVAL-class reasons here; back
                // off rather than spin.
                std::thread::sleep(Duration::from_millis(1));
            }
            if pollfds[0].readable() {
                self.ls.pipe.drain();
            }
            for (i, slot) in slot_of.iter().enumerate() {
                let pfd = &pollfds[i + 1];
                if pfd.revents() == 0 {
                    continue;
                }
                self.handle_ready(*slot, pfd.readable(), pfd.writable());
            }
            self.expire_deadlines();
        }
    }

    fn drain_inbox(&mut self) {
        let (accepted, completions, live, watch_events, stop) = {
            let mut inbox = self.ls.inbox.lock().expect("loop inbox poisoned");
            (
                std::mem::take(&mut inbox.accepted),
                std::mem::take(&mut inbox.completions),
                std::mem::take(&mut inbox.live),
                std::mem::take(&mut inbox.watch_events),
                inbox.stop,
            )
        };
        if stop {
            self.stopping = true;
        }
        for stream in accepted {
            self.adopt(stream);
        }
        for completion in completions {
            self.handle_completion(completion);
        }
        if !live.is_empty() {
            self.deliver_live(&live);
        }
        if !watch_events.is_empty() {
            self.deliver_watch_events(&watch_events);
        }
    }

    /// Fan monitor events out to every `GET /debug/live` subscriber this
    /// loop owns: frame each event as one chunk, count down bounded
    /// subscriptions, and finish streams that used up their budget.
    fn deliver_live(&mut self, events: &[Arc<String>]) {
        for slot in 0..self.conns.len() {
            let streaming = self.conns[slot].as_ref().is_some_and(|c| {
                matches!(
                    c.state,
                    ConnState::Streaming {
                        done: false,
                        watch: None,
                        ..
                    }
                )
            });
            if !streaming {
                continue;
            }
            self.with_conn(slot, |conn, ctx| {
                for event in events {
                    let ConnState::Streaming {
                        remaining,
                        done: false,
                        watch: None,
                    } = &mut conn.state
                    else {
                        break;
                    };
                    if conn.out.is_empty() {
                        conn.write_started = Instant::now();
                    }
                    append_live_chunk(&mut conn.out, event);
                    if let Some(budget) = remaining {
                        *budget = budget.saturating_sub(1);
                        if *budget == 0 {
                            finish_live_stream(conn);
                        }
                    }
                }
                pump(conn, ctx)
            });
        }
    }

    /// Fan watch diff events out to this loop's `GET /watches/{id}/events`
    /// subscribers: each event reaches only the streams parked on its
    /// watch id, framed as one chunk, with the same budget countdown as
    /// the monitor live stream.
    fn deliver_watch_events(&mut self, events: &[(Arc<String>, Arc<String>)]) {
        for slot in 0..self.conns.len() {
            let watching = self.conns[slot].as_ref().is_some_and(|c| {
                matches!(
                    c.state,
                    ConnState::Streaming {
                        done: false,
                        watch: Some(_),
                        ..
                    }
                )
            });
            if !watching {
                continue;
            }
            self.with_conn(slot, |conn, ctx| {
                for (id, event) in events {
                    let ConnState::Streaming {
                        remaining,
                        done: false,
                        watch: Some(watch),
                    } = &mut conn.state
                    else {
                        break;
                    };
                    if watch.as_str() != id.as_str() {
                        continue;
                    }
                    if conn.out.is_empty() {
                        conn.write_started = Instant::now();
                    }
                    append_live_chunk(&mut conn.out, event);
                    if let Some(budget) = remaining {
                        *budget = budget.saturating_sub(1);
                        if *budget == 0 {
                            finish_live_stream(conn);
                        }
                    }
                }
                pump(conn, ctx)
            });
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        if self.stopping {
            // Raced shutdown: the acceptor assigned it before observing
            // stop. Refuse rather than strand it unserved.
            self.ls.load.fetch_sub(1, Ordering::Relaxed);
            refuse_busy(stream, &self.shared);
            return;
        }
        self.next_generation += 1;
        let conn = match Conn::adopt(stream, self.next_generation) {
            Ok(conn) => conn,
            Err(_) => {
                self.ls.load.fetch_sub(1, Ordering::Relaxed);
                return;
            }
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.conns[slot] = Some(conn);
                slot
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        self.live += 1;
        // The first request's bytes are usually already in flight;
        // serving them now saves a poll round trip.
        self.handle_ready(slot, true, false);
    }

    fn release(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            match &conn.state {
                ConnState::Streaming { watch: Some(_), .. } => {
                    if let Some(watches) = &self.shared.watches {
                        watches.subscriber_finished();
                    }
                }
                ConnState::Streaming { watch: None, .. } => {
                    if let Some(monitor) = &self.shared.monitor {
                        monitor.live_subscribers.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                _ => {}
            }
            self.free.push(slot);
            self.live -= 1;
            self.ls.load.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Run a connection's event handler with the connection temporarily
    /// taken out of the slot (so handlers can borrow the loop's shared
    /// context freely), then apply the resulting action.
    fn with_conn(&mut self, slot: usize, f: impl FnOnce(&mut Conn, &ConnCtx) -> Action) {
        let Some(mut conn) = self.conns[slot].take() else {
            return;
        };
        let ctx = ConnCtx {
            shared: &self.shared,
            ls: &self.ls,
            slot,
        };
        match f(&mut conn, &ctx) {
            Action::Keep => self.conns[slot] = Some(conn),
            Action::Close => {
                self.conns[slot] = Some(conn);
                self.release(slot);
            }
        }
    }

    fn handle_ready(&mut self, slot: usize, readable: bool, writable: bool) {
        self.with_conn(slot, |conn, ctx| {
            if readable && matches!(conn.state, ConnState::Reading) {
                on_readable(conn, ctx)
            } else if readable && matches!(conn.state, ConnState::Streaming { .. }) {
                on_streaming_readable(conn, ctx, writable)
            } else if writable {
                pump(conn, ctx)
            } else {
                Action::Keep
            }
        });
    }

    fn handle_completion(&mut self, completion: Completion) {
        let Completion {
            slot,
            generation,
            finished_at,
        } = completion;
        // Wake latency: worker's notify → this dispatch. Recorded for
        // every token (stale ones measured a real wake too).
        let wake = finished_at.elapsed();
        self.shared.wake.record(wake);
        if slot >= self.conns.len() {
            return;
        }
        let matches_conn = self.conns[slot]
            .as_ref()
            .is_some_and(|c| c.generation == generation);
        if !matches_conn {
            return; // stale token: the connection died while parked
        }
        self.with_conn(slot, |conn, ctx| {
            let ConnState::Dispatched(dispatch) = &mut conn.state else {
                return Action::Keep; // defensive: token raced a state change
            };
            let wake_ns = wake.as_nanos().min(u128::from(u64::MAX)) as u64;
            dispatch.wake_ns = Some(dispatch.wake_ns.map_or(wake_ns, |w| w.max(wake_ns)));
            dispatch.outstanding = dispatch.outstanding.saturating_sub(1);
            if dispatch.outstanding > 0 {
                return Action::Keep;
            }
            assemble_response(conn, ctx);
            pump(conn, ctx)
        });
    }

    /// Under shutdown: close idle and mid-request connections (serving
    /// a fully buffered request first, with `Connection: close`), end
    /// live streams with their terminal chunk, keep flushing and parked
    /// connections until they resolve.
    fn sweep_for_stop(&mut self) {
        for slot in 0..self.conns.len() {
            let streaming = self.conns[slot]
                .as_ref()
                .is_some_and(|c| matches!(c.state, ConnState::Streaming { .. }));
            if streaming {
                self.with_conn(slot, |conn, ctx| {
                    finish_live_stream(conn);
                    pump(conn, ctx)
                });
                continue;
            }
            let quiescent = self.conns[slot]
                .as_ref()
                .is_some_and(|c| matches!(c.state, ConnState::Reading) && c.out.is_empty());
            if !quiescent {
                continue;
            }
            self.with_conn(slot, |conn, ctx| {
                if pump(conn, ctx) == Action::Close {
                    return Action::Close;
                }
                // Still reading with nothing to send: no complete
                // request is pending — close rather than wait out the
                // idle timeout.
                if matches!(conn.state, ConnState::Reading) && conn.out.is_empty() {
                    return Action::Close;
                }
                Action::Keep
            });
        }
    }

    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_ref() else {
                continue;
            };
            let Some(deadline) = conn.deadline(&self.shared.config) else {
                continue;
            };
            if now < deadline {
                continue;
            }
            self.with_conn(slot, |conn, ctx| {
                if conn.written < conn.out.len() {
                    return Action::Close; // peer stopped reading its response
                }
                if conn.buf.is_empty() && conn.discard == 0 {
                    return Action::Close; // idle keep-alive: quiet close
                }
                if conn.discard > 0 {
                    // Stalled mid-drain of an oversized body: that
                    // request was already answered (the early 413), so
                    // give up on the connection without a second
                    // response.
                    return Action::Close;
                }
                // Mid-request stall (slow loris): evict loudly so the
                // client knows, then close.
                let response =
                    Response::error(408, "request_timeout", "request did not arrive in time");
                count_response(ctx.shared, response.status);
                conn.queue_response(&response, false);
                pump(conn, ctx)
            });
        }
    }
}

/// Everything a connection handler needs besides the connection itself.
struct ConnCtx<'a> {
    shared: &'a SharedGateway,
    ls: &'a Arc<LoopShared>,
    slot: usize,
}

fn on_readable(conn: &mut Conn, ctx: &ConnCtx) -> Action {
    let mut chunk = [0u8; 16 * 1024];
    // Cap the bytes consumed per wakeup: a peer streaming at line rate
    // must not keep this loop spinning (starving every co-located
    // connection and growing the buffer unparsed) — after the cap we
    // fall through to parsing, and level-triggered poll re-reports the
    // remainder on the next iteration, fairly interleaved.
    let mut budget = 8;
    loop {
        if budget == 0 {
            break;
        }
        budget -= 1;
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // Half-close: complete requests already buffered are
                // still served below (a `printf reqs | nc`-style client
                // shuts its write side and reads the answers); pump()
                // closes once the parser would need more bytes.
                conn.peer_eof = true;
                break;
            }
            Ok(n) => {
                let mut bytes = &chunk[..n];
                if conn.discard > 0 {
                    let swallowed = conn.discard.min(bytes.len());
                    conn.discard -= swallowed;
                    bytes = &bytes[swallowed..];
                }
                if !bytes.is_empty() {
                    if conn.buf.is_empty() && conn.read_started.is_none() {
                        conn.read_started = Some(Instant::now());
                    }
                    conn.buf.extend_from_slice(bytes);
                }
                if n < chunk.len() {
                    break; // drained the socket (level-triggered poll re-reports otherwise)
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Action::Close,
        }
    }
    pump(conn, ctx)
}

/// A `GET /debug/live` subscriber's socket turned readable: either the
/// peer hung up (the stream's only disconnect signal) or it sent bytes
/// a streaming response cannot use — drain and discard them.
fn on_streaming_readable(conn: &mut Conn, ctx: &ConnCtx, writable: bool) -> Action {
    let mut chunk = [0u8; 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return Action::Close,
            Ok(n) if n < chunk.len() => break,
            Ok(_) => continue,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Action::Close,
        }
    }
    if writable {
        pump(conn, ctx)
    } else {
        Action::Keep
    }
}

/// Frame one monitor event as an HTTP chunk: the JSON line plus a
/// trailing newline, so the stream reads as newline-delimited JSON once
/// de-chunked.
fn append_live_chunk(out: &mut Vec<u8>, event: &str) {
    out.extend_from_slice(format!("{:x}\r\n", event.len() + 1).as_bytes());
    out.extend_from_slice(event.as_bytes());
    out.extend_from_slice(b"\n\r\n");
}

/// Queue the terminal chunk and mark the stream finished (idempotent).
fn finish_live_stream(conn: &mut Conn) {
    if let ConnState::Streaming { done, .. } = &mut conn.state {
        if !*done {
            if conn.out.is_empty() {
                conn.write_started = Instant::now();
            }
            conn.out.extend_from_slice(b"0\r\n\r\n");
            *done = true;
        }
    }
}

/// `GET /debug/live`: subscribe this connection to the monitor's tick
/// and alert-transition events as a chunked `application/x-ndjson`
/// stream. `?events=N` bounds the subscription to N events after the
/// greeting (the stream then ends cleanly); unbounded streams run until
/// the client disconnects or the gateway shuts down.
fn start_live_stream(conn: &mut Conn, ctx: &ConnCtx, request: &Request) {
    let monitor = ctx
        .shared
        .monitor
        .as_ref()
        .expect("live stream routed without monitor");
    let remaining = query_param(request, "events").and_then(|v| v.parse::<u64>().ok());
    count_response(ctx.shared, 200);
    if conn.out.is_empty() {
        conn.write_started = Instant::now();
    }
    conn.out.extend_from_slice(
        b"HTTP/1.1 200 OK\r\nconnection: close\r\ncontent-type: application/x-ndjson\r\ntransfer-encoding: chunked\r\n\r\n",
    );
    append_live_chunk(&mut conn.out, &monitor.hello_event());
    conn.close_after_write = true;
    conn.state = ConnState::Streaming {
        remaining,
        done: false,
        watch: None,
    };
    monitor.live_subscribers.fetch_add(1, Ordering::Relaxed);
    if remaining == Some(0) {
        finish_live_stream(conn);
    }
}

/// The watch id of a `/watches/{id}/events` path, if that is one.
fn watch_stream_id(path: &str) -> Option<&str> {
    path.strip_prefix("/watches/")
        .and_then(|rest| rest.strip_suffix("/events"))
        .filter(|id| !id.is_empty() && !id.contains('/'))
}

/// `GET /watches/{id}/events`: subscribe this connection to one watch's
/// instance-level diff events as a chunked `application/x-ndjson`
/// stream. The greeting chunk echoes the watch id and current sequence
/// number; `?events=N` bounds the subscription to N diff events after
/// the greeting. An unknown watch id answers a normal `404`.
fn start_watch_stream(conn: &mut Conn, ctx: &ConnCtx, request: &Request, id: &str) {
    let registry = ctx
        .shared
        .watches
        .as_ref()
        .expect("watch stream routed without watches");
    let status = match registry.get(id) {
        Some(status) => status,
        None => {
            let response = Response::error(404, "unknown_watch", "no such watch");
            count_response(ctx.shared, response.status);
            conn.queue_response(&response, !ctx.shared.stopping());
            return;
        }
    };
    let remaining = query_param(request, "events").and_then(|v| v.parse::<u64>().ok());
    count_response(ctx.shared, 200);
    if conn.out.is_empty() {
        conn.write_started = Instant::now();
    }
    conn.out.extend_from_slice(
        b"HTTP/1.1 200 OK\r\nconnection: close\r\ncontent-type: application/x-ndjson\r\ntransfer-encoding: chunked\r\n\r\n",
    );
    let hello = obj([
        ("type", "watch_hello".into()),
        ("watch", id.into()),
        ("wrapper", status.wrapper.as_str().into()),
        ("url", status.url.as_str().into()),
        ("seq", status.seq.into()),
    ]);
    append_live_chunk(&mut conn.out, &hello.dump());
    conn.close_after_write = true;
    conn.state = ConnState::Streaming {
        remaining,
        done: false,
        watch: Some(Arc::new(id.to_string())),
    };
    registry.subscriber_started();
    if remaining == Some(0) {
        finish_live_stream(conn);
    }
}

/// First value of `name` in the request's query string.
fn query_param<'a>(request: &'a Request, name: &str) -> Option<&'a str> {
    let query = request.query.as_deref()?;
    query.split('&').find_map(|pair| {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        (key == name).then_some(value)
    })
}

/// Drive the connection's state machine as far as it can go without
/// more events: flush pending output, complete written responses, and
/// parse/serve requests one at a time (pipelined requests are served
/// strictly in order, each response flushed before the next parse).
fn pump(conn: &mut Conn, ctx: &ConnCtx) -> Action {
    loop {
        match flush(conn) {
            FlushResult::Closed => return Action::Close,
            FlushResult::Partial => return Action::Keep, // POLLOUT re-arms via interest()
            FlushResult::Done => {}
        }
        match conn.state {
            ConnState::Writing => {
                if conn.close_after_write || ctx.shared.stopping() {
                    return Action::Close;
                }
                conn.state = ConnState::Reading;
                conn.idle_since = Instant::now();
            }
            ConnState::Dispatched(_) => return Action::Keep,
            ConnState::Streaming { done, .. } => {
                // Everything queued (including the terminal chunk, when
                // `done`) is out; an unfinished stream waits for the
                // next monitor event.
                return if done { Action::Close } else { Action::Keep };
            }
            ConnState::Reading => {}
        }
        if !advance_one(conn, ctx) {
            // More bytes are needed — which can never arrive after a
            // half-close, so give up then instead of idling out.
            return if conn.peer_eof {
                Action::Close
            } else {
                Action::Keep
            };
        }
    }
}

fn flush(conn: &mut Conn) -> FlushResult {
    while conn.written < conn.out.len() {
        match conn.stream.write(&conn.out[conn.written..]) {
            Ok(0) => return FlushResult::Closed,
            Ok(n) => {
                conn.written += n;
                // The write clock measures *stall* time, not total
                // transfer time: a slow-but-reading peer making steady
                // progress must not be cut off mid-response.
                conn.write_started = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return FlushResult::Partial,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return FlushResult::Closed,
        }
    }
    conn.out.clear();
    conn.written = 0;
    shrink_if_bloated(&mut conn.out);
    FlushResult::Done
}

/// Try to consume one request from the connection buffer. Returns
/// whether progress was made (a response queued, a dispatch parked, or
/// an interim `100 Continue` queued); `false` means more bytes are
/// needed.
fn advance_one(conn: &mut Conn, ctx: &ConnCtx) -> bool {
    let limits = &ctx.shared.config.limits;
    let single_limit = limits.max_body_bytes;
    let batch_limit = ctx.shared.config.max_batch_body_bytes.max(single_limit);
    let body_limit = move |method: &str, path: &str| {
        if method == "POST" && path == "/extract/batch" {
            batch_limit
        } else {
            single_limit
        }
    };
    match parse_request_with_body_limit(&conn.buf, limits, &body_limit) {
        Ok(Some((request, consumed))) => {
            conn.buf.drain(..consumed);
            shrink_if_bloated(&mut conn.buf);
            conn.continued = false;
            conn.read_started = None;
            serve(conn, ctx, &request);
            true
        }
        Ok(None) => {
            // Headers complete but body pending: honor
            // `Expect: 100-continue` so clients (curl with a body over
            // 1 KiB, for one) send the body immediately instead of
            // waiting out their expect timeout. Skip the same stray
            // leading CRLFs the parser tolerates, or they would read as
            // an (empty) header section ending at offset zero.
            if !conn.continued {
                let mut skipped = 0;
                while skipped < 4 && conn.buf[skipped..].starts_with(b"\r\n") {
                    skipped += 2;
                }
                let head = &conn.buf[skipped..];
                if let Some(end) = head.windows(4).position(|w| w == b"\r\n\r\n") {
                    conn.continued = true; // scan the header section once
                    if contains_ignore_ascii_case(&head[..end], b"100-continue") {
                        if conn.out.is_empty() {
                            conn.write_started = Instant::now();
                        }
                        conn.out.extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                        return true;
                    }
                }
            }
            false
        }
        Err(error) => {
            // Answer before draining: an `Expect: 100-continue` client
            // is holding its body back waiting for us, and the 413 is
            // what tells it to stop.
            let plan = drain_plan(&error, conn.buf.len());
            let keep_alive = plan.is_some() && !ctx.shared.stopping();
            let response = Response::error(error.status(), error_code(&error), &error.message());
            count_response(ctx.shared, response.status);
            match plan.filter(|_| keep_alive) {
                Some(plan) => {
                    // Drop only the oversized request's bytes: anything
                    // after them is the next pipelined request and must
                    // survive. What has not arrived yet is swallowed as
                    // it comes (`discard`).
                    conn.buf.drain(..plan.from_buffer);
                    conn.discard = plan.from_stream;
                    conn.continued = false;
                    conn.read_started =
                        (conn.discard > 0 || !conn.buf.is_empty()).then(Instant::now);
                    conn.queue_response(&response, true);
                }
                None => {
                    conn.buf.clear();
                    conn.queue_response(&response, false);
                }
            }
            true
        }
    }
}

/// Serve one parsed request: dispatch extraction endpoints to the pool
/// (parking the connection), answer everything else synchronously.
fn serve(conn: &mut Conn, ctx: &ConnCtx, request: &Request) {
    let keep_alive = request.keep_alive() && !ctx.shared.stopping();
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/extract") => dispatch_extract(conn, ctx, request, keep_alive),
        ("POST", "/extract/batch") => dispatch_batch(conn, ctx, request, keep_alive),
        ("GET", "/debug/live") if ctx.shared.monitor.is_some() => {
            start_live_stream(conn, ctx, request)
        }
        ("GET", path) if ctx.shared.watches.is_some() && watch_stream_id(path).is_some() => {
            let id = watch_stream_id(path).expect("guard checked").to_string();
            start_watch_stream(conn, ctx, request, &id)
        }
        _ => {
            let response = route(request, ctx.shared);
            // Re-check stop *after* routing: /admin/shutdown flips it
            // and its own response must already say close.
            let keep_alive = keep_alive && !ctx.shared.stopping();
            count_response(ctx.shared, response.status);
            conn.queue_response(&response, keep_alive);
        }
    }
}

// ---------------------------------------------------------------------
// Extraction dispatch (async, completion-driven)
// ---------------------------------------------------------------------

/// The uniform error body (identical to [`Response::error`]'s).
fn error_body(code: &str, message: &str) -> Json {
    obj([("error", code.into()), ("message", message.into())])
}

/// Map a pool-side failure onto a status + body.
fn server_error_parts(error: &ServerError) -> (u16, Json) {
    let (status, code) = match error {
        ServerError::UnknownWrapper(_) => (404, "unknown_wrapper"),
        ServerError::UnknownVersion { .. } => (404, "unknown_version"),
        ServerError::FetchFailed(_) => (502, "fetch_failed"),
        ServerError::Backpressure => (429, "backpressure"),
        ServerError::ShuttingDown => (503, "shutting_down"),
        ServerError::Canceled => (503, "canceled"),
        ServerError::Internal(_) => (500, "internal"),
    };
    (status, error_body(code, &error.to_string()))
}

/// Parse one `/extract` body (or one batch item) into a pool request.
/// Errors come back as the 400 status + body the old synchronous
/// handler produced, byte for byte.
fn extraction_request_from_json(parsed: &Json) -> Result<ExtractionRequest, (u16, Json)> {
    let bad = |message: &str| (400, error_body("bad_request", message));
    let Some(wrapper) = parsed.get("wrapper").and_then(Json::as_str) else {
        return Err(bad("missing string field \"wrapper\""));
    };
    let version = match parsed.get("version") {
        None | Some(Json::Null) => None,
        Some(v) => match v.as_u64().and_then(|n| u32::try_from(n).ok()) {
            Some(n) => Some(n),
            None => return Err(bad("\"version\" must be an unsigned integer")),
        },
    };
    let Some(url) = parsed.get("url").and_then(Json::as_str) else {
        return Err(bad("missing string field \"url\""));
    };
    let source = match parsed.get("html") {
        None | Some(Json::Null) => RequestSource::Web {
            url: url.to_string(),
        },
        Some(html) => match html.as_str() {
            Some(html) => RequestSource::Inline {
                url: url.to_string(),
                html: html.to_string(),
            },
            None => return Err(bad("\"html\" must be a string")),
        },
    };
    Ok(ExtractionRequest {
        trace: None,
        wrapper: wrapper.to_string(),
        version,
        source,
    })
}

/// The completion callback handed to the pool: push a token and wake
/// the owning loop. Runs on a worker thread (or wherever an unprocessed
/// job is destroyed), so it does nothing but that.
fn completion_notify(ctx: &ConnCtx, generation: u64) -> Box<dyn FnOnce() + Send> {
    let ls = ctx.ls.clone();
    let slot = ctx.slot;
    Box::new(move || {
        let completion = Completion {
            slot,
            generation,
            finished_at: Instant::now(),
        };
        ls.wake_with(|inbox| inbox.completions.push(completion));
    })
}

/// The request's trace context: the client's `X-Request-Id` when it
/// passes validation, a minted id otherwise; `None` with tracing off.
fn request_trace(ctx: &ConnCtx, request: &Request) -> Option<RequestTrace> {
    if !ctx.shared.config.tracing {
        return None;
    }
    let id = request
        .header("x-request-id")
        .and_then(TraceId::from_client)
        .unwrap_or_else(TraceId::mint);
    Some(RequestTrace {
        id,
        started: Instant::now(),
    })
}

fn dispatch_extract(conn: &mut Conn, ctx: &ConnCtx, request: &Request, keep_alive: bool) {
    let trace = request_trace(ctx, request);
    let item = match request.body_utf8() {
        None => DispatchItem::Ready(400, error_body("bad_request", "body is not UTF-8")),
        Some(body) => match Json::parse(body) {
            Err(e) => DispatchItem::Ready(400, error_body("bad_request", &e.to_string())),
            Ok(parsed) => submit_item(
                &parsed,
                ctx,
                conn.generation,
                trace.as_ref().map(|t| t.id.to_string()),
            ),
        },
    };
    let outstanding = usize::from(matches!(item, DispatchItem::Pending(_)));
    conn.state = ConnState::Dispatched(Dispatch {
        outstanding,
        items: vec![item],
        batch: false,
        keep_alive,
        retry_after: true,
        trace,
        wake_ns: None,
    });
    if outstanding == 0 {
        assemble_response(conn, ctx);
    }
}

fn dispatch_batch(conn: &mut Conn, ctx: &ConnCtx, request: &Request, keep_alive: bool) {
    let reject = |conn: &mut Conn, status: u16, code: &str, message: &str| {
        let response = Response::error(status, code, message);
        count_response(ctx.shared, response.status);
        conn.queue_response(&response, keep_alive && !ctx.shared.stopping());
    };
    let Some(body) = request.body_utf8() else {
        return reject(conn, 400, "bad_request", "body is not UTF-8");
    };
    let parsed = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return reject(conn, 400, "bad_request", &e.to_string()),
    };
    let Some(items) = parsed.as_array() else {
        return reject(
            conn,
            400,
            "bad_request",
            "batch body must be a JSON array of /extract bodies",
        );
    };
    if items.is_empty() {
        return reject(conn, 400, "empty_batch", "batch contains no items");
    }
    let max_items = ctx.shared.config.max_batch_items;
    if items.len() > max_items {
        return reject(
            conn,
            413,
            "batch_too_large",
            &format!(
                "batch of {} items exceeds the limit of {max_items}",
                items.len()
            ),
        );
    }
    let trace = request_trace(ctx, request);
    let single_limit = ctx.shared.config.limits.max_body_bytes;
    let mut dispatch_items = Vec::with_capacity(items.len());
    let mut outstanding = 0usize;
    let mut scratch = String::new(); // one reusable buffer for all size checks
    for (index, item) in items.iter().enumerate() {
        // An item bigger than a single request may carry is answered
        // exactly as the framing layer would have answered the
        // equivalent individual POST (its serialized form *is* that
        // request's body).
        scratch.clear();
        item.dump_into(&mut scratch);
        let declared = scratch.len();
        if declared > single_limit {
            let message = RequestError::BodyTooLarge {
                declared,
                body_start: 0,
            }
            .message();
            dispatch_items.push(DispatchItem::Ready(
                413,
                error_body("body_too_large", &message),
            ));
            continue;
        }
        let item_trace = trace.as_ref().map(|t| format!("{}#{index}", t.id));
        let item = submit_item(item, ctx, conn.generation, item_trace);
        outstanding += usize::from(matches!(item, DispatchItem::Pending(_)));
        dispatch_items.push(item);
    }
    conn.state = ConnState::Dispatched(Dispatch {
        outstanding,
        items: dispatch_items,
        batch: true,
        keep_alive,
        retry_after: false,
        trace,
        wake_ns: None,
    });
    if outstanding == 0 {
        assemble_response(conn, ctx);
    }
}

/// Parse and submit one extraction item; synchronous failures (bad
/// shape, unknown wrapper, backpressure, shutdown) resolve immediately.
/// `trace` rides into the pool on [`ExtractionRequest::trace`] so
/// worker-side log events name the request.
fn submit_item(
    parsed: &Json,
    ctx: &ConnCtx,
    generation: u64,
    trace: Option<String>,
) -> DispatchItem {
    match extraction_request_from_json(parsed) {
        Err((status, body)) => DispatchItem::Ready(status, body),
        Ok(request) => {
            let request = ExtractionRequest { trace, ..request };
            match ctx
                .shared
                .server
                .try_submit_with_notify(request, completion_notify(ctx, generation))
            {
                Ok(ticket) => DispatchItem::Pending(ticket),
                Err(e) => {
                    let (status, body) = server_error_parts(&e);
                    DispatchItem::Ready(status, body)
                }
            }
        }
    }
}

/// What a resolved item contributes to its span record besides the
/// status code. Errors and synchronous rejections leave the defaults
/// (no wrapper, no stages).
#[derive(Default)]
struct ItemOutcome {
    wrapper: String,
    version: u32,
    cache_hit: bool,
    stages: StageTimes,
}

/// Redeem one dispatched item into its status + response body, plus the
/// telemetry its span record needs.
fn resolve_item(item: DispatchItem) -> (u16, Json, ItemOutcome) {
    match item {
        DispatchItem::Ready(status, body) => (status, body, ItemOutcome::default()),
        DispatchItem::Pending(mut ticket) => match ticket.try_take() {
            Some(Ok(response)) => {
                let body = extraction_json(&response);
                let outcome = ItemOutcome {
                    wrapper: response.wrapper,
                    version: response.version,
                    cache_hit: response.cache_hit,
                    stages: response.stages,
                };
                (200, body, outcome)
            }
            Some(Err(error)) => {
                let (status, body) = server_error_parts(&error);
                (status, body, ItemOutcome::default())
            }
            // Unreachable per the notify contract; fail soft if it ever
            // is.
            None => {
                let (status, body) = server_error_parts(&ServerError::Canceled);
                (status, body, ItemOutcome::default())
            }
        },
    }
}

/// Finish one item's span record and admit it to the span buffer.
fn record_span(
    ctx: &ConnCtx,
    id: String,
    status: u16,
    outcome: ItemOutcome,
    trace: &RequestTrace,
    wake_ns: Option<u64>,
) {
    let mut stages = outcome.stages;
    if let Some(ns) = wake_ns {
        stages.add_ns(Stage::Wake, ns);
    }
    ctx.shared.spans.record(Arc::new(SpanRecord {
        id,
        wrapper: outcome.wrapper,
        version: outcome.version,
        status,
        cache_hit: outcome.cache_hit,
        total_ns: trace.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        stages,
        unix_ms: unix_millis(),
    }));
}

/// All tickets of the parked request resolved: build the response,
/// record span(s) and echo the trace id when tracing is on, and switch
/// the connection to writing.
fn assemble_response(conn: &mut Conn, ctx: &ConnCtx) {
    let state = std::mem::replace(&mut conn.state, ConnState::Reading);
    let ConnState::Dispatched(dispatch) = state else {
        conn.state = state;
        return;
    };
    let keep_alive = dispatch.keep_alive && !ctx.shared.stopping();
    let retry_after = dispatch.retry_after;
    let trace = dispatch.trace;
    let wake_ns = dispatch.wake_ns;
    let response = if dispatch.batch {
        let count = dispatch.items.len();
        let items: Vec<Json> = dispatch
            .items
            .into_iter()
            .enumerate()
            .map(|(index, item)| {
                let (status, body, outcome) = resolve_item(item);
                match &trace {
                    // Batch items share the batch's wall clock and worst
                    // wake: tickets resolve independently but the
                    // response leaves as one.
                    Some(trace) => {
                        let id = format!("{}#{index}", trace.id);
                        record_span(ctx, id.clone(), status, outcome, trace, wake_ns);
                        obj([
                            ("status", u64::from(status).into()),
                            ("body", body),
                            ("request_id", id.into()),
                        ])
                    }
                    None => obj([("status", u64::from(status).into()), ("body", body)]),
                }
            })
            .collect();
        Response::json(
            200,
            &obj([("count", count.into()), ("items", items.into())]),
        )
    } else {
        let item = dispatch
            .items
            .into_iter()
            .next()
            .expect("single dispatch holds one item");
        let (status, body, outcome) = resolve_item(item);
        if let Some(trace) = &trace {
            record_span(ctx, trace.id.to_string(), status, outcome, trace, wake_ns);
        }
        let response = Response::json(status, &body);
        if status == 429 && retry_after {
            response.with_header("retry-after", "1")
        } else {
            response
        }
    };
    let response = match &trace {
        Some(trace) => response.with_header("x-request-id", trace.id.as_str()),
        None => response,
    };
    count_response(ctx.shared, response.status);
    conn.queue_response(&response, keep_alive);
}

// ---------------------------------------------------------------------
// Synchronous routes
// ---------------------------------------------------------------------

/// How to dispose of an over-long request whose framing is still
/// intact: drop `from_buffer` bytes of the connection buffer and
/// swallow `from_stream` bytes still in flight, after which the
/// connection can keep serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DrainPlan {
    from_buffer: usize,
    from_stream: usize,
}

fn drain_plan(error: &RequestError, buffered: usize) -> Option<DrainPlan> {
    let RequestError::BodyTooLarge {
        declared,
        body_start,
    } = error
    else {
        return None; // other parse errors poison the framing: close
    };
    /// Refuse to sponge up absurd declarations; just close instead.
    const MAX_DRAIN: usize = 8 * 1024 * 1024;
    if *declared > MAX_DRAIN {
        return None;
    }
    let total = body_start + declared;
    Some(DrainPlan {
        from_buffer: total.min(buffered),
        from_stream: total.saturating_sub(buffered),
    })
}

/// Case-insensitive substring search over raw header bytes.
fn contains_ignore_ascii_case(haystack: &[u8], needle: &[u8]) -> bool {
    haystack
        .windows(needle.len())
        .any(|w| w.eq_ignore_ascii_case(needle))
}

fn error_code(error: &RequestError) -> &'static str {
    match error {
        RequestError::Malformed(_) => "malformed_request",
        RequestError::HeadersTooLarge => "headers_too_large",
        RequestError::BodyTooLarge { .. } => "body_too_large",
        RequestError::UnsupportedTransferEncoding => "unsupported_transfer_encoding",
    }
}

/// Route one synchronously-served request (everything except the
/// extraction endpoints, which park the connection instead).
fn route(request: &Request, shared: &SharedGateway) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/wrappers") => get_wrappers(shared),
        ("PUT", path)
            if path
                .strip_prefix("/wrappers/")
                .is_some_and(|n| !n.is_empty()) =>
        {
            put_wrapper(
                path.strip_prefix("/wrappers/").expect("checked"),
                request,
                shared,
            )
        }
        ("GET", path)
            if path
                .strip_prefix("/provenance/")
                .is_some_and(|k| !k.is_empty()) =>
        {
            get_provenance(path.strip_prefix("/provenance/").expect("checked"), shared)
        }
        ("GET", "/metrics") => get_metrics(request, shared),
        ("GET", "/metrics/history") if shared.monitor.is_some() => {
            get_metrics_history(request, shared)
        }
        ("GET", "/debug/health") if shared.monitor.is_some() => get_debug_health(shared),
        ("GET", "/debug/slow") => get_debug_slow(shared),
        ("GET", path)
            if path
                .strip_prefix("/debug/wrappers/")
                .is_some_and(|n| !n.is_empty()) =>
        {
            get_debug_wrapper(
                path.strip_prefix("/debug/wrappers/").expect("checked"),
                shared,
            )
        }
        ("GET", path)
            if path
                .strip_prefix("/debug/requests/")
                .is_some_and(|id| !id.is_empty()) =>
        {
            get_debug_request(
                path.strip_prefix("/debug/requests/").expect("checked"),
                shared,
            )
        }
        ("GET", "/watches") if shared.watches.is_some() => get_watches(shared),
        ("PUT", path)
            if shared.watches.is_some()
                && path
                    .strip_prefix("/watches/")
                    .is_some_and(|id| !id.is_empty() && !id.contains('/')) =>
        {
            put_watch(
                path.strip_prefix("/watches/").expect("checked"),
                request,
                shared,
            )
        }
        ("GET", path)
            if shared.watches.is_some()
                && path
                    .strip_prefix("/watches/")
                    .is_some_and(|id| !id.is_empty() && !id.contains('/')) =>
        {
            get_watch(path.strip_prefix("/watches/").expect("checked"), shared)
        }
        ("DELETE", path)
            if shared.watches.is_some()
                && path
                    .strip_prefix("/watches/")
                    .is_some_and(|id| !id.is_empty() && !id.contains('/')) =>
        {
            delete_watch(path.strip_prefix("/watches/").expect("checked"), shared)
        }
        ("GET", "/healthz") => Response::json(200, &obj([("status", "ok".into())])),
        ("POST", "/admin/shutdown") => {
            shared.begin_stop();
            *shared
                .shutdown_requested
                .lock()
                .expect("shutdown flag poisoned") = true;
            shared.shutdown_cv.notify_all();
            Response::json(200, &obj([("shutting_down", true.into())]))
        }
        (
            _,
            "/extract" | "/extract/batch" | "/wrappers" | "/metrics" | "/healthz"
            | "/admin/shutdown" | "/debug/slow",
        ) => Response::error(405, "method_not_allowed", "wrong method for this path"),
        // The monitoring paths only exist while the monitor runs; off,
        // they fall through to 404 like any unknown path.
        (_, "/metrics/history" | "/debug/health" | "/debug/live") if shared.monitor.is_some() => {
            Response::error(405, "method_not_allowed", "wrong method for this path")
        }
        // Same for the subscription paths and the watch layer.
        (_, path)
            if shared.watches.is_some()
                && (path == "/watches" || path.starts_with("/watches/")) =>
        {
            Response::error(405, "method_not_allowed", "wrong method for this path")
        }
        (_, path)
            if path.starts_with("/wrappers/")
                || path.starts_with("/provenance/")
                || path.starts_with("/debug/wrappers/")
                || path.starts_with("/debug/requests/") =>
        {
            Response::error(405, "method_not_allowed", "wrong method for this path")
        }
        _ => Response::error(404, "not_found", "no such endpoint"),
    }
}

fn bad_request(message: &str) -> Response {
    Response::error(400, "bad_request", message)
}

/// The `/extract` response body: execution metadata, the designed XML
/// document, and the extracted pattern instances as JSON.
fn extraction_json(response: &ExtractionResponse) -> Json {
    let extraction = response.extraction();
    let patterns: Vec<Json> = extraction
        .patterns()
        .iter()
        .map(|name| {
            let texts: Vec<Json> = extraction
                .texts_of(name)
                .into_iter()
                .map(Json::from)
                .collect();
            obj([("name", name.as_str().into()), ("instances", texts.into())])
        })
        .collect();
    obj([
        ("wrapper", response.wrapper.as_str().into()),
        ("version", response.version.into()),
        ("cache_hit", response.cache_hit.into()),
        ("latency_us", (response.latency.as_micros() as u64).into()),
        ("provenance_key", provenance_key(&response.key).into()),
        ("xml", response.xml().into()),
        ("patterns", patterns.into()),
    ])
}

/// `GET /provenance/{key}`: the derivation record persisted beside a
/// cached extraction — wrapper version, plan fingerprint, source page
/// hash, and the producing rule per instance. 404 when the key is not
/// in either store tier (never expired, never cached, or evicted).
fn get_provenance(key: &str, shared: &SharedGateway) -> Response {
    let Some(cache_key) = parse_provenance_key(key) else {
        return bad_request(
            "malformed provenance key; expected {wrapper}@{plan:016x}@{content:016x}",
        );
    };
    let Some(entry) = shared.server.provenance(&cache_key) else {
        return Response::error(404, "not_found", "no cached result under this key");
    };
    let p = &entry.provenance;
    let instances: Vec<Json> = p
        .instances
        .iter()
        .map(|inst| {
            obj([
                ("pattern", inst.pattern.as_str().into()),
                (
                    "parent",
                    inst.parent
                        .map(|i| Json::from(i as u64))
                        .unwrap_or(Json::Null),
                ),
                (
                    "rule",
                    inst.rule
                        .map(|r| Json::from(u64::from(r)))
                        .unwrap_or(Json::Null),
                ),
                ("text", inst.text.as_str().into()),
            ])
        })
        .collect();
    let crawl: Vec<Json> = entry
        .crawl
        .iter()
        .map(|record| {
            obj([
                ("url", record.url.as_str().into()),
                (
                    "hash",
                    record
                        .content
                        .map(|h| Json::from(format!("{h:016x}")))
                        .unwrap_or(Json::Null),
                ),
            ])
        })
        .collect();
    Response::json(
        200,
        &obj([
            ("key", key.into()),
            ("wrapper", p.wrapper.as_str().into()),
            ("version", p.version.into()),
            ("plan", format!("{:016x}", p.plan).into()),
            ("source_url", p.source_url.as_str().into()),
            ("source_hash", format!("{:016x}", p.source_hash).into()),
            ("instances", instances.into()),
            ("crawl", crawl.into()),
        ]),
    )
}

fn get_wrappers(shared: &SharedGateway) -> Response {
    let wrappers: Vec<Json> = shared
        .server
        .registry()
        .catalog()
        .into_iter()
        .map(|(name, latest)| obj([("name", name.into()), ("latest", latest.into())]))
        .collect();
    Response::json(200, &obj([("wrappers", wrappers.into())]))
}

fn put_wrapper(name: &str, request: &Request, shared: &SharedGateway) -> Response {
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
    {
        return bad_request("wrapper names are [A-Za-z0-9_-]+");
    }
    let Some(body) = request.body_utf8() else {
        return bad_request("body is not UTF-8");
    };
    let parsed = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return bad_request(&e.to_string()),
    };
    let Some(program) = parsed.get("program").and_then(Json::as_str) else {
        return bad_request("missing string field \"program\"");
    };
    let mut design = XmlDesign::new();
    if let Some(root) = parsed.get("root") {
        match root.as_str() {
            Some(root) => design = design.root(root),
            None => return bad_request("\"root\" must be a string"),
        }
    }
    if let Some(auxiliary) = parsed.get("auxiliary") {
        let Some(items) = auxiliary.as_array() else {
            return bad_request("\"auxiliary\" must be an array of strings");
        };
        for item in items {
            match item.as_str() {
                Some(pattern) => design = design.auxiliary(pattern),
                None => return bad_request("\"auxiliary\" must be an array of strings"),
            }
        }
    }
    match WrapperSpec::from_source(program, design) {
        Ok(spec) => {
            let version = shared.server.registry().register(name, spec);
            Response::json(
                201,
                &obj([("name", name.into()), ("version", version.into())]),
            )
        }
        Err(e) => deploy_error_response(&e),
    }
}

/// One watch's counters as JSON (shared by `GET /watches` and
/// `GET /watches/{id}`).
fn watch_status_json(status: &WatchStatus) -> Json {
    obj([
        ("id", status.id.as_str().into()),
        ("wrapper", status.wrapper.as_str().into()),
        ("url", status.url.as_str().into()),
        ("interval_ms", status.interval_ms.into()),
        (
            "webhook",
            status
                .webhook
                .as_deref()
                .map(Json::from)
                .unwrap_or(Json::Null),
        ),
        ("ticks", status.ticks.into()),
        ("seq", status.seq.into()),
        ("suppressed", status.suppressed.into()),
        ("errors", status.errors.into()),
    ])
}

/// `GET /watches`: every registered subscription, id-sorted.
fn get_watches(shared: &SharedGateway) -> Response {
    let registry = shared.watches.as_ref().expect("routed without watches");
    let watches: Vec<Json> = registry.list().iter().map(watch_status_json).collect();
    Response::json(200, &obj([("watches", watches.into())]))
}

/// `PUT /watches/{id}`: register (201) or replace (200) a subscription.
/// The wrapper must already be deployed — a watch on a ghost wrapper
/// would tick straight into errors forever.
fn put_watch(id: &str, request: &Request, shared: &SharedGateway) -> Response {
    let registry = shared.watches.as_ref().expect("routed without watches");
    if !id
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
    {
        return bad_request("watch ids are [A-Za-z0-9_-]+");
    }
    let Some(body) = request.body_utf8() else {
        return bad_request("body is not UTF-8");
    };
    let parsed = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return bad_request(&e.to_string()),
    };
    let Some(wrapper) = parsed.get("wrapper").and_then(Json::as_str) else {
        return bad_request("missing string field \"wrapper\"");
    };
    let Some(url) = parsed.get("url").and_then(Json::as_str) else {
        return bad_request("missing string field \"url\"");
    };
    let interval_ms = match parsed.get("interval_ms") {
        None | Some(Json::Null) => 1_000,
        Some(v) => match v.as_u64() {
            Some(n) if n > 0 => n,
            _ => return bad_request("\"interval_ms\" must be a positive integer"),
        },
    };
    let webhook = match parsed.get("webhook") {
        None | Some(Json::Null) => None,
        Some(v) => match v.as_str() {
            Some(url) => Some(url.to_string()),
            None => return bad_request("\"webhook\" must be a string"),
        },
    };
    if shared.server.registry().latest(wrapper).is_none() {
        return Response::error(
            404,
            "unknown_wrapper",
            "no wrapper by that name is deployed",
        );
    }
    let created = registry.put(
        id,
        WatchSpec {
            wrapper: wrapper.to_string(),
            url: url.to_string(),
            interval: Duration::from_millis(interval_ms),
            webhook,
        },
    );
    let status = registry.get(id).expect("just registered");
    Response::json(if created { 201 } else { 200 }, &watch_status_json(&status))
}

/// `GET /watches/{id}`: one subscription's spec and counters.
fn get_watch(id: &str, shared: &SharedGateway) -> Response {
    let registry = shared.watches.as_ref().expect("routed without watches");
    match registry.get(id) {
        Some(status) => Response::json(200, &watch_status_json(&status)),
        None => Response::error(404, "unknown_watch", "no such watch"),
    }
}

/// `DELETE /watches/{id}`: unregister; in-flight results for the id are
/// dropped by the scheduler when they resolve.
fn delete_watch(id: &str, shared: &SharedGateway) -> Response {
    let registry = shared.watches.as_ref().expect("routed without watches");
    if registry.remove(id) {
        Response::json(200, &obj([("deleted", id.into())]))
    } else {
        Response::error(404, "unknown_watch", "no such watch")
    }
}

/// Deploy-time rejection: the wrapper was compiled once, here, and the
/// structured parse/compile error goes back as the 400 body — the
/// client learns which rule, pattern and identifier is at fault instead
/// of every later `/extract` silently returning nothing.
fn deploy_error_response(error: &DeployError) -> Response {
    let detail = match error {
        DeployError::Parse(parse) => obj([
            ("kind", "parse".into()),
            ("at", (parse.at as u64).into()),
            ("message", parse.message.as_str().into()),
        ]),
        DeployError::Compile(compile) => obj([
            ("kind", "compile".into()),
            ("code", compile.code().into()),
            ("rule", (compile.rule() as u64).into()),
            ("pattern", compile.pattern().into()),
            (
                "subject",
                compile.subject().map(Json::from).unwrap_or(Json::Null),
            ),
        ]),
    };
    Response::json(
        400,
        &obj([
            ("error", "bad_program".into()),
            (
                "message",
                format!("wrapper does not compile: {error}").into(),
            ),
            ("detail", detail),
        ]),
    )
}

/// One span record as JSON (shared by `/debug/slow` and
/// `/debug/requests/{id}`). Stage times are microseconds; untouched
/// stages are omitted.
fn span_json(span: &SpanRecord) -> Json {
    let stages: Vec<Json> = span
        .stages
        .iter()
        .map(|(stage, ns)| obj([("stage", stage.name().into()), ("us", (ns / 1_000).into())]))
        .collect();
    obj([
        ("id", span.id.as_str().into()),
        ("wrapper", span.wrapper.as_str().into()),
        ("version", span.version.into()),
        ("status", u64::from(span.status).into()),
        ("cache_hit", span.cache_hit.into()),
        ("total_us", (span.total_ns / 1_000).into()),
        ("unix_ms", span.unix_ms.into()),
        ("stages", stages.into()),
    ])
}

/// `GET /debug/slow`: the retained slowest and most recent request
/// spans. Both lists are empty while tracing is disabled.
fn get_debug_slow(shared: &SharedGateway) -> Response {
    let slowest: Vec<Json> = shared
        .spans
        .slowest()
        .iter()
        .map(|s| span_json(s))
        .collect();
    let recent: Vec<Json> = shared.spans.recent().iter().map(|s| span_json(s)).collect();
    Response::json(
        200,
        &obj([("slowest", slowest.into()), ("recent", recent.into())]),
    )
}

/// `GET /debug/requests/{id}`: one request's span while it is still
/// retained (spans age out of both the recent ring and the slowest
/// list). 404 when unknown, aged out, or tracing is disabled.
fn get_debug_request(id: &str, shared: &SharedGateway) -> Response {
    match shared.spans.find(id) {
        Some(span) => Response::json(200, &span_json(&span)),
        None => Response::error(
            404,
            "unknown_request",
            "no retained span under this id (it may have aged out)",
        ),
    }
}

/// `GET /debug/wrappers/{name}`: per-rule execution telemetry of the
/// wrapper's latest version — invocations, matches produced, and
/// cumulative evaluation time per compiled rule — plus the optimizer's
/// report for the deployed plan (schedule, stratification, path fusion
/// and hoisting statistics).
fn get_debug_wrapper(name: &str, shared: &SharedGateway) -> Response {
    let Some(wrapper) = shared.server.registry().latest(name) else {
        return Response::error(
            404,
            "unknown_wrapper",
            "no wrapper registered under this name",
        );
    };
    let rules: Vec<Json> = wrapper
        .telemetry
        .snapshot()
        .into_iter()
        .map(|r| {
            obj([
                ("rule", r.rule.into()),
                ("label", r.label.into()),
                ("invocations", r.invocations.into()),
                ("matches", r.matches.into()),
                ("total_ns", r.total_ns.into()),
            ])
        })
        .collect();
    let report = wrapper.spec.optimized.report();
    let optimizer = obj([
        ("schedule", report.schedule.as_str().into()),
        ("rules", (report.rules as u64).into()),
        ("strata", (report.strata as u64).into()),
        ("fused_paths", (report.fused_paths as u64).into()),
        ("fallback_paths", (report.fallback_paths as u64).into()),
        ("hoist_groups", (report.hoist_groups as u64).into()),
        ("hoisted_sites", (report.hoisted_sites as u64).into()),
        ("reordered_rules", (report.reordered_rules as u64).into()),
        (
            "acyclic_condition_rules",
            (report.acyclic_condition_rules as u64).into(),
        ),
    ]);
    Response::json(
        200,
        &obj([
            ("name", name.into()),
            ("version", wrapper.version.into()),
            ("optimizer", optimizer),
            ("rules", rules.into()),
        ]),
    )
}

fn get_metrics(request: &Request, shared: &SharedGateway) -> Response {
    let snapshot = shared.server.metrics();
    let stats = shared.stats();
    let observations = shared.observations();
    let alerts = shared.monitor.as_ref().map(|m| m.alerts_snapshot());
    let watches = shared.watches.as_ref().map(|w| w.sample());
    let wants_json = request
        .header("accept")
        .is_some_and(|accept| accept.contains("application/json"));
    if wants_json {
        Response::json(
            200,
            &metrics_json_full(
                &snapshot,
                &stats,
                &observations,
                alerts.as_ref(),
                watches.as_ref(),
            ),
        )
    } else {
        Response::text(
            200,
            render_prometheus_full(
                &snapshot,
                &stats,
                &observations,
                alerts.as_ref(),
                watches.as_ref(),
            ),
        )
    }
}

/// `GET /metrics/history?window=SECS&step=SECS`: windowed rates and
/// quantiles over the monitor's history ring — a whole-window summary
/// plus per-step tiles. Defaults: the last 5 minutes in 1-minute steps.
/// The parameters are untrusted; [`Monitor::history_json`] clamps the
/// window to the retained span and bounds the tile count, so a hostile
/// `window`/`step` pair cannot pin the event loop.
fn get_metrics_history(request: &Request, shared: &SharedGateway) -> Response {
    let monitor = shared.monitor.as_ref().expect("routed without monitor");
    let parse_secs = |name: &str, default: u64| {
        query_param(request, name)
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(default)
    };
    let window_ms = parse_secs("window", 300).saturating_mul(1000);
    let step_ms = parse_secs("step", 60).saturating_mul(1000);
    Response::json(200, &monitor.history_json(window_ms, step_ms))
}

/// `GET /debug/health`: the SLO watchdog's scored verdict, every rule's
/// firing state, and the evidence window the rules were judged over.
fn get_debug_health(shared: &SharedGateway) -> Response {
    let monitor = shared.monitor.as_ref().expect("routed without monitor");
    Response::json(200, &monitor.health_json())
}

/// The snapshot as JSON — field for field the same numbers
/// [`ExtractionServer::metrics`] reports in-process, plus the
/// gateway-side [`GatewayObservations`] (per-stage latency summaries,
/// event-loop gauges, wake latency, per-rule telemetry).
pub fn metrics_json(
    snapshot: &MetricsSnapshot,
    stats: &GatewayStats,
    observations: &GatewayObservations,
) -> Json {
    let depths: Vec<Json> = snapshot
        .queue_depths
        .iter()
        .map(|&d| Json::from(d))
        .collect();
    let stages: Vec<Json> = snapshot
        .stages
        .iter()
        .map(|s| {
            obj([
                ("stage", s.stage.into()),
                ("count", s.count.into()),
                ("p50_us", s.p50_us.into()),
                ("p99_us", s.p99_us.into()),
            ])
        })
        .collect();
    let event_loops: Vec<Json> = observations
        .event_loops
        .iter()
        .map(|l| {
            obj([
                ("connections", l.connections.into()),
                ("parked", l.parked.into()),
            ])
        })
        .collect();
    let rules: Vec<Json> = observations
        .rules
        .iter()
        .map(|(wrapper, rules)| {
            let per_rule: Vec<Json> = rules
                .iter()
                .map(|r| {
                    obj([
                        ("rule", r.rule.into()),
                        ("label", r.label.as_str().into()),
                        ("invocations", r.invocations.into()),
                        ("matches", r.matches.into()),
                        ("total_ns", r.total_ns.into()),
                    ])
                })
                .collect();
            obj([
                ("wrapper", wrapper.as_str().into()),
                ("rules", per_rule.into()),
            ])
        })
        .collect();
    obj([
        ("submitted", snapshot.submitted.into()),
        ("completed", snapshot.completed.into()),
        ("errors", snapshot.errors.into()),
        ("rejected", snapshot.rejected.into()),
        ("throughput_per_sec", snapshot.throughput_per_sec.into()),
        ("p50_us", snapshot.p50_us.into()),
        ("p99_us", snapshot.p99_us.into()),
        ("stages", stages.into()),
        ("queue_depths", depths.into()),
        ("workers", snapshot.workers.into()),
        ("rules", rules.into()),
        (
            "cache",
            obj([
                ("hits", snapshot.cache.hits.into()),
                ("misses", snapshot.cache.misses.into()),
                ("evictions", snapshot.cache.evictions.into()),
                ("invalidations", snapshot.cache.invalidations.into()),
                ("len", snapshot.cache.len.into()),
                ("capacity", snapshot.cache.capacity.into()),
                ("hit_rate", snapshot.cache.hit_rate().into()),
            ]),
        ),
        (
            "store",
            obj([
                ("persisted", snapshot.store.persisted.into()),
                ("recovered", snapshot.store.recovered.into()),
                ("disk_hits", snapshot.store.disk_hits.into()),
                ("disk_len", snapshot.store.disk_len.into()),
                ("disk_bytes", snapshot.store.disk_bytes.into()),
                ("corrupt_records", snapshot.store.corrupt_records.into()),
                ("compactions", snapshot.store.compactions.into()),
                ("expired", snapshot.store.expired.into()),
                ("disk_evictions", snapshot.store.disk_evictions.into()),
                ("write_errors", snapshot.store.write_errors.into()),
            ]),
        ),
        (
            "gateway",
            obj([
                ("connections", stats.connections.into()),
                ("requests", stats.requests.into()),
                ("responses_4xx", stats.responses_4xx.into()),
                ("responses_5xx", stats.responses_5xx.into()),
                ("event_loops", event_loops.into()),
                (
                    "wake",
                    obj([
                        ("count", observations.wake_count.into()),
                        ("p50_us", observations.wake_p50_us.into()),
                        ("p99_us", observations.wake_p99_us.into()),
                    ]),
                ),
            ]),
        ),
    ])
}

fn prometheus_metric(out: &mut String, name: &str, kind: &str, help: &str, value: &str) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
    ));
}

/// `# HELP` / `# TYPE` preamble for a family whose samples carry
/// labels (emitted separately).
fn prometheus_family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// A label value escaped per the Prometheus text exposition format:
/// backslash, double quote and newline must be escaped inside the
/// quotes.
fn prometheus_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A labelled metric family: name, Prometheus kind, and the accessor
/// picking its value out of each labelled record.
type MetricFamily<T> = (&'static str, &'static str, fn(&T) -> u64);

/// The snapshot in the Prometheus text exposition format, including the
/// per-stage latency summaries, event-loop gauges and `lixto_rule_*`
/// per-rule series from [`GatewayObservations`].
pub fn render_prometheus(
    snapshot: &MetricsSnapshot,
    stats: &GatewayStats,
    observations: &GatewayObservations,
) -> String {
    let mut out = String::with_capacity(4096);
    let pool_metrics = [
        (
            "lixto_requests_submitted_total",
            "counter",
            "Requests accepted into a shard queue",
            snapshot.submitted.to_string(),
        ),
        (
            "lixto_requests_completed_total",
            "counter",
            "Requests completed successfully",
            snapshot.completed.to_string(),
        ),
        (
            "lixto_requests_errored_total",
            "counter",
            "Requests completed with an error",
            snapshot.errors.to_string(),
        ),
        (
            "lixto_requests_rejected_total",
            "counter",
            "Requests rejected by backpressure",
            snapshot.rejected.to_string(),
        ),
        (
            "lixto_throughput_per_second",
            "gauge",
            "Completions per second since start",
            format!("{:.3}", snapshot.throughput_per_sec),
        ),
        (
            "lixto_latency_p50_microseconds",
            "gauge",
            "Median end-to-end latency",
            snapshot.p50_us.to_string(),
        ),
        (
            "lixto_latency_p99_microseconds",
            "gauge",
            "99th-percentile end-to-end latency",
            snapshot.p99_us.to_string(),
        ),
        (
            "lixto_workers",
            "gauge",
            "Worker thread count",
            snapshot.workers.to_string(),
        ),
    ];
    for (name, kind, help, value) in &pool_metrics {
        prometheus_metric(&mut out, name, kind, help, value);
    }
    out.push_str("# HELP lixto_queue_depth Jobs currently queued per shard\n");
    out.push_str("# TYPE lixto_queue_depth gauge\n");
    for (shard, depth) in snapshot.queue_depths.iter().enumerate() {
        out.push_str(&format!("lixto_queue_depth{{shard=\"{shard}\"}} {depth}\n"));
    }
    let stage_families: [MetricFamily<lixto_server::StageSummary>; 3] = [
        ("lixto_stage_observations_total", "counter", |s| s.count),
        ("lixto_stage_latency_p50_microseconds", "gauge", |s| {
            s.p50_us
        }),
        ("lixto_stage_latency_p99_microseconds", "gauge", |s| {
            s.p99_us
        }),
    ];
    let stage_help = [
        "Requests that executed each pipeline stage",
        "Median per-stage latency",
        "99th-percentile per-stage latency",
    ];
    for ((name, kind, pick), help) in stage_families.iter().zip(stage_help) {
        prometheus_family(&mut out, name, kind, help);
        for summary in &snapshot.stages {
            out.push_str(&format!(
                "{name}{{stage=\"{}\"}} {}\n",
                summary.stage,
                pick(summary)
            ));
        }
    }
    prometheus_family(
        &mut out,
        "lixto_http_loop_connections",
        "gauge",
        "Connections currently assigned to each event loop",
    );
    for (i, l) in observations.event_loops.iter().enumerate() {
        out.push_str(&format!(
            "lixto_http_loop_connections{{loop=\"{i}\"}} {}\n",
            l.connections
        ));
    }
    prometheus_family(
        &mut out,
        "lixto_http_loop_parked",
        "gauge",
        "Connections parked on extraction tickets per event loop",
    );
    for (i, l) in observations.event_loops.iter().enumerate() {
        out.push_str(&format!(
            "lixto_http_loop_parked{{loop=\"{i}\"}} {}\n",
            l.parked
        ));
    }
    let wake_metrics = [
        (
            "lixto_http_wake_observations_total",
            "counter",
            "Completion tokens whose wake latency was measured",
            observations.wake_count,
        ),
        (
            "lixto_http_wake_p50_microseconds",
            "gauge",
            "Median completion-notify to event-loop dispatch latency",
            observations.wake_p50_us,
        ),
        (
            "lixto_http_wake_p99_microseconds",
            "gauge",
            "99th-percentile completion-notify to event-loop dispatch latency",
            observations.wake_p99_us,
        ),
    ];
    for (name, kind, help, value) in &wake_metrics {
        prometheus_metric(&mut out, name, kind, help, &value.to_string());
    }
    let rule_families: [MetricFamily<RuleStat>; 3] = [
        ("lixto_rule_invocations_total", "counter", |r| r.invocations),
        ("lixto_rule_matches_total", "counter", |r| r.matches),
        ("lixto_rule_nanoseconds_total", "counter", |r| r.total_ns),
    ];
    let rule_help = [
        "Rule body evaluations per compiled wrapper rule",
        "New pattern instances produced per rule",
        "Cumulative rule evaluation wall time",
    ];
    for ((name, kind, pick), help) in rule_families.iter().zip(rule_help) {
        prometheus_family(&mut out, name, kind, help);
        for (wrapper, rules) in &observations.rules {
            let wrapper = prometheus_label_value(wrapper);
            for rule in rules {
                out.push_str(&format!(
                    "{name}{{wrapper=\"{wrapper}\",rule=\"{}\",pattern=\"{}\"}} {}\n",
                    rule.rule,
                    prometheus_label_value(&rule.label),
                    pick(rule)
                ));
            }
        }
    }
    let tail_metrics = [
        (
            "lixto_cache_hits_total",
            "counter",
            "Cache lookups answered from the cache",
            snapshot.cache.hits.to_string(),
        ),
        (
            "lixto_cache_misses_total",
            "counter",
            "Cache lookups that required a fresh extraction",
            snapshot.cache.misses.to_string(),
        ),
        (
            "lixto_cache_evictions_total",
            "counter",
            "Cache entries evicted by the LRU policy",
            snapshot.cache.evictions.to_string(),
        ),
        (
            "lixto_cache_invalidations_total",
            "counter",
            "Cache entries dropped by change detection or crawl revalidation",
            snapshot.cache.invalidations.to_string(),
        ),
        (
            "lixto_cache_entries",
            "gauge",
            "Cache entries currently held",
            snapshot.cache.len.to_string(),
        ),
        (
            "lixto_store_persisted_total",
            "counter",
            "Results appended to the durable store's write-ahead log",
            snapshot.store.persisted.to_string(),
        ),
        (
            "lixto_store_recovered_total",
            "counter",
            "Results recovered from disk at the last store open",
            snapshot.store.recovered.to_string(),
        ),
        (
            "lixto_store_disk_hits_total",
            "counter",
            "Lookups served from the disk tier (hot-tier misses)",
            snapshot.store.disk_hits.to_string(),
        ),
        (
            "lixto_store_entries",
            "gauge",
            "Entries currently live in the disk tier",
            snapshot.store.disk_len.to_string(),
        ),
        (
            "lixto_store_bytes",
            "gauge",
            "Encoded bytes of live entries in the disk tier",
            snapshot.store.disk_bytes.to_string(),
        ),
        (
            "lixto_store_corrupt_records_total",
            "counter",
            "Undecodable records skipped during recovery",
            snapshot.store.corrupt_records.to_string(),
        ),
        (
            "lixto_store_compactions_total",
            "counter",
            "Snapshot rewrites (TTL sweep + budget eviction + WAL truncation)",
            snapshot.store.compactions.to_string(),
        ),
        (
            "lixto_store_expired_total",
            "counter",
            "Entries dropped because their TTL elapsed",
            snapshot.store.expired.to_string(),
        ),
        (
            "lixto_store_evictions_total",
            "counter",
            "Entries evicted from disk to meet the size budget",
            snapshot.store.disk_evictions.to_string(),
        ),
        (
            "lixto_store_write_errors_total",
            "counter",
            "Failed WAL appends (result still served from memory)",
            snapshot.store.write_errors.to_string(),
        ),
        (
            "lixto_http_connections_total",
            "counter",
            "Connections accepted and assigned to an event loop (refusals count as 5xx responses)",
            stats.connections.to_string(),
        ),
        (
            "lixto_http_requests_total",
            "counter",
            "HTTP requests answered by the gateway",
            stats.requests.to_string(),
        ),
        (
            "lixto_http_responses_4xx_total",
            "counter",
            "HTTP responses with a 4xx status",
            stats.responses_4xx.to_string(),
        ),
        (
            "lixto_http_responses_5xx_total",
            "counter",
            "HTTP responses with a 5xx status",
            stats.responses_5xx.to_string(),
        ),
    ];
    for (name, kind, help, value) in &tail_metrics {
        prometheus_metric(&mut out, name, kind, help, value);
    }
    out
}

/// [`metrics_json`] plus — when the monitor runs — an `alerts` object
/// (the watchdog's verdict and every rule's firing state) and — when
/// the watch layer runs — a `watches` object (registered/subscriber
/// gauges, webhook delivery counters, per-watch tick/event/error
/// counts). With both `None` the output is byte-identical to
/// [`metrics_json`], which is how a gateway with those subsystems
/// disabled keeps its `/metrics` surface unchanged.
pub fn metrics_json_full(
    snapshot: &MetricsSnapshot,
    stats: &GatewayStats,
    observations: &GatewayObservations,
    alerts: Option<&AlertsSnapshot>,
    watches: Option<&WatchSample>,
) -> Json {
    let mut json = metrics_json(snapshot, stats, observations);
    if let Some(alerts) = alerts {
        let rules: Vec<Json> = alerts
            .rules
            .iter()
            .map(|r| {
                obj([
                    ("rule", r.rule.into()),
                    ("metric", r.metric.into()),
                    ("severity", r.severity.name().into()),
                    ("value", r.value.into()),
                    ("since_ms", r.since_ms.into()),
                    ("fired_total", r.fired_total.into()),
                    ("resolved_total", r.resolved_total.into()),
                ])
            })
            .collect();
        if let Json::Obj(fields) = &mut json {
            fields.push((
                "alerts".to_string(),
                obj([
                    ("verdict", alerts.verdict.name().into()),
                    ("rules", rules.into()),
                ]),
            ));
        }
    }
    if let Some(watches) = watches {
        let per_watch: Vec<Json> = watches.watches.iter().map(watch_status_json).collect();
        if let Json::Obj(fields) = &mut json {
            fields.push((
                "watches".to_string(),
                obj([
                    ("registered", watches.registered.into()),
                    ("subscribers", watches.subscribers.into()),
                    ("webhook_deliveries", watches.webhook_deliveries.into()),
                    ("webhook_failures", watches.webhook_failures.into()),
                    ("watches", per_watch.into()),
                ]),
            ));
        }
    }
    json
}

/// [`render_prometheus`] plus — when the monitor runs — the
/// `lixto_alert_*` families (the numeric verdict and per-rule severity
/// and fired/resolved totals), and — when the watch layer runs — the
/// `lixto_watch_*` families (registered/subscriber gauges, webhook
/// delivery counters, per-watch tick/event/suppressed/error counts).
/// With both `None` the output is byte-identical to
/// [`render_prometheus`].
pub fn render_prometheus_full(
    snapshot: &MetricsSnapshot,
    stats: &GatewayStats,
    observations: &GatewayObservations,
    alerts: Option<&AlertsSnapshot>,
    watches: Option<&WatchSample>,
) -> String {
    let mut out = render_prometheus(snapshot, stats, observations);
    if let Some(alerts) = alerts {
        prometheus_metric(
            &mut out,
            "lixto_alert_verdict",
            "gauge",
            "Worst current alert severity (0 ok, 1 degraded, 2 critical)",
            &alerts.verdict.rank().to_string(),
        );
        prometheus_family(
            &mut out,
            "lixto_alert_severity",
            "gauge",
            "Current severity per SLO rule (0 ok, 1 degraded, 2 critical)",
        );
        for rule in &alerts.rules {
            out.push_str(&format!(
                "lixto_alert_severity{{rule=\"{}\"}} {}\n",
                rule.rule,
                rule.severity.rank()
            ));
        }
        prometheus_family(
            &mut out,
            "lixto_alert_fired_total",
            "counter",
            "Times each SLO rule started firing or escalated",
        );
        for rule in &alerts.rules {
            out.push_str(&format!(
                "lixto_alert_fired_total{{rule=\"{}\"}} {}\n",
                rule.rule, rule.fired_total
            ));
        }
        prometheus_family(
            &mut out,
            "lixto_alert_resolved_total",
            "counter",
            "Times each SLO rule cleared back to ok",
        );
        for rule in &alerts.rules {
            out.push_str(&format!(
                "lixto_alert_resolved_total{{rule=\"{}\"}} {}\n",
                rule.rule, rule.resolved_total
            ));
        }
    }
    if let Some(watches) = watches {
        let gauges = [
            (
                "lixto_watch_registered",
                "gauge",
                "Registered continuous-extraction watches",
                watches.registered as u64,
            ),
            (
                "lixto_watch_subscribers",
                "gauge",
                "Long-poll subscribers parked on watch event streams",
                watches.subscribers as u64,
            ),
            (
                "lixto_watch_webhook_deliveries_total",
                "counter",
                "Watch diff events delivered to webhooks",
                watches.webhook_deliveries,
            ),
            (
                "lixto_watch_webhook_failures_total",
                "counter",
                "Watch webhook deliveries that exhausted their retries",
                watches.webhook_failures,
            ),
        ];
        for (name, kind, help, value) in gauges {
            prometheus_metric(&mut out, name, kind, help, &value.to_string());
        }
        type WatchFamily = (
            &'static str,
            &'static str,
            &'static str,
            fn(&WatchStatus) -> u64,
        );
        let families: [WatchFamily; 4] = [
            (
                "lixto_watch_ticks_total",
                "counter",
                "Completed re-extractions per watch",
                |w| w.ticks,
            ),
            (
                "lixto_watch_events_total",
                "counter",
                "Instance-level diff events delivered per watch",
                |w| w.seq,
            ),
            (
                "lixto_watch_suppressed_total",
                "counter",
                "Unchanged ticks suppressed per watch",
                |w| w.suppressed,
            ),
            (
                "lixto_watch_errors_total",
                "counter",
                "Failed ticks per watch",
                |w| w.errors,
            ),
        ];
        for (name, kind, help, value_of) in families {
            prometheus_family(&mut out, name, kind, help);
            for watch in &watches.watches {
                out.push_str(&format!(
                    "{}{{watch=\"{}\"}} {}\n",
                    name,
                    prometheus_label_value(&watch.id),
                    value_of(watch)
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use lixto_server::{ServerConfig, WrapperRegistry};

    const WRAPPER: &str = r#"
        offer(S, X) :- document("http://shop/", S), subelem(S, (?.li, []), X).
    "#;

    fn gateway() -> (HttpGateway, Arc<ExtractionServer>) {
        let registry = Arc::new(WrapperRegistry::new());
        registry
            .register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
            .unwrap();
        let server = Arc::new(ExtractionServer::start(
            ServerConfig::default(),
            registry,
            Arc::new(lixto_elog::StaticWeb::new()),
        ));
        let gateway = HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                handler_threads: 2,
                // Generous: under full-workspace test parallelism a
                // loaded box can pause a client thread long enough for
                // a tight idle timeout to evict its keep-alive session
                // mid-test. Shutdown does not wait out idle sessions,
                // so this costs nothing.
                idle_timeout: Duration::from_secs(10),
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .unwrap();
        (gateway, server)
    }

    #[test]
    fn serves_extract_wrappers_metrics_and_health_over_keep_alive() {
        let (gateway, server) = gateway();
        let mut client = HttpClient::connect(gateway.addr()).unwrap();
        // Health.
        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        // Extract (inline document).
        let body = r#"{"wrapper":"shop","url":"http://shop/","html":"<ul><li>beans</li></ul>"}"#;
        let extract = client.post_json("/extract", body).unwrap();
        assert_eq!(extract.status, 200, "{}", extract.text());
        let parsed = extract.json().unwrap();
        assert!(parsed
            .get("xml")
            .and_then(Json::as_str)
            .unwrap()
            .contains("beans"));
        assert_eq!(parsed.get("cache_hit").and_then(Json::as_bool), Some(false));
        // Same connection (keep-alive): a repeat hits the cache.
        let repeat = client.post_json("/extract", body).unwrap();
        assert_eq!(
            repeat
                .json()
                .unwrap()
                .get("cache_hit")
                .and_then(Json::as_bool),
            Some(true)
        );
        // Wrapper deployment and listing.
        let put = client
            .put_json("/wrappers/shop", r#"{"program":"offer(S, X) :- document(\"http://shop/\", S), subelem(S, (?.li, []), X).","root":"offers_v2"}"#)
            .unwrap();
        assert_eq!(put.status, 201, "{}", put.text());
        let listing = client.get("/wrappers").unwrap();
        assert!(listing.text().contains(r#"{"name":"shop","latest":2}"#));
        // Metrics: JSON numbers agree with the in-process snapshot.
        let metrics = client.get_accept("/metrics", "application/json").unwrap();
        let snapshot = server.metrics();
        let parsed = metrics.json().unwrap();
        assert_eq!(
            parsed.get("completed").and_then(Json::as_u64),
            Some(snapshot.completed)
        );
        // Prometheus rendering carries the same counters.
        let text = client.get("/metrics").unwrap();
        assert!(text.text().contains(&format!(
            "lixto_requests_completed_total {}",
            snapshot.completed
        )));
        // Errors map to 4xx.
        assert_eq!(client.post_json("/extract", "{oops").unwrap().status, 400);
        assert_eq!(
            client
                .post_json("/extract", r#"{"wrapper":"ghost","url":"u"}"#)
                .unwrap()
                .status,
            404
        );
        assert_eq!(client.get("/no/such/path").unwrap().status, 404);
        assert_eq!(
            client
                .request("DELETE", "/wrappers", &[], None)
                .unwrap()
                .status,
            405
        );
        drop(client);
        let stats = gateway.shutdown();
        assert_eq!(stats.connections, 1, "one keep-alive connection");
        assert!(stats.requests >= 9);
        server.initiate_shutdown();
    }

    #[test]
    fn request_pipelined_behind_oversized_body_still_answered() {
        use std::io::{Read, Write};

        let registry = Arc::new(WrapperRegistry::new());
        registry
            .register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
            .unwrap();
        let server = Arc::new(ExtractionServer::start(
            ServerConfig::default(),
            registry,
            Arc::new(lixto_elog::StaticWeb::new()),
        ));
        let gateway = HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                handler_threads: 1,
                limits: crate::http::Limits {
                    max_header_bytes: 2048,
                    max_body_bytes: 64,
                },
                idle_timeout: Duration::from_millis(500),
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .unwrap();
        // One write carrying an oversized POST *and* a pipelined GET:
        // the 413 must drain only the oversized request's bytes, leaving
        // the GET to be answered on the same connection.
        let oversized_body = "x".repeat(100);
        let mut raw = std::net::TcpStream::connect(gateway.addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        raw.write_all(
            format!(
                "POST /extract HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
                oversized_body.len(),
                oversized_body
            )
            .as_bytes(),
        )
        .unwrap();
        let mut received = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match raw.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => received.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
        }
        let text = String::from_utf8_lossy(&received);
        assert!(text.contains("HTTP/1.1 413"), "first response: {text}");
        assert!(
            text.contains("HTTP/1.1 200") && text.contains(r#"{"status":"ok"}"#),
            "the pipelined GET must still be answered: {text}"
        );
        drop(raw);
        gateway.shutdown();
        server.initiate_shutdown();
    }

    #[test]
    fn admin_shutdown_unblocks_the_waiter_and_closes() {
        let (gateway, server) = gateway();
        let addr = gateway.addr();
        let trigger = std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            let response = client.post_json("/admin/shutdown", "{}").unwrap();
            assert_eq!(response.status, 200);
            assert_eq!(response.header("connection"), Some("close"));
        });
        gateway.wait_shutdown_requested();
        trigger.join().unwrap();
        gateway.shutdown();
        server.initiate_shutdown();
    }

    #[test]
    fn hundreds_of_idle_keep_alive_connections_fit_in_two_loops() {
        let registry = Arc::new(WrapperRegistry::new());
        registry
            .register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
            .unwrap();
        let server = Arc::new(ExtractionServer::start(
            ServerConfig::default(),
            registry,
            Arc::new(lixto_elog::StaticWeb::new()),
        ));
        let gateway = HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                event_loops: 2,
                // Long enough that no client of the sequential sweep
                // below is evicted as idle mid-test.
                idle_timeout: Duration::from_secs(30),
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .unwrap();
        let addr = gateway.addr();
        // Far more concurrent keep-alive sessions than the old
        // thread-per-connection model (handler_threads: 2) could hold
        // open at once.
        let mut clients: Vec<HttpClient> = (0..300)
            .map(|_| HttpClient::connect(addr).expect("connect"))
            .collect();
        // Every one of them is live: a request on each still answers.
        for client in clients.iter_mut() {
            assert_eq!(client.get("/healthz").unwrap().status, 200);
        }
        // And interleaved extraction on a few while the rest stay idle.
        let body = r#"{"wrapper":"shop","url":"http://shop/","html":"<ul><li>idle</li></ul>"}"#;
        for client in clients.iter_mut().step_by(37) {
            let response = client.post_json("/extract", body).unwrap();
            assert_eq!(response.status, 200, "{}", response.text());
        }
        drop(clients);
        let stats = gateway.shutdown();
        assert_eq!(stats.connections, 300);
        server.initiate_shutdown();
    }

    #[test]
    fn accept_backoff_doubles_caps_and_resets() {
        let mut backoff = AcceptBackoff::new(Duration::from_millis(1), Duration::from_millis(8));
        assert!(!backoff.is_backing_off());
        assert_eq!(backoff.on_error(), Duration::from_millis(1));
        assert_eq!(backoff.on_error(), Duration::from_millis(2));
        assert_eq!(backoff.on_error(), Duration::from_millis(4));
        assert_eq!(backoff.on_error(), Duration::from_millis(8));
        assert_eq!(backoff.on_error(), Duration::from_millis(8), "capped");
        assert!(backoff.is_backing_off());
        backoff.on_success();
        assert!(!backoff.is_backing_off());
        assert_eq!(
            backoff.on_error(),
            Duration::from_millis(1),
            "reset on success"
        );
        // Degenerate configuration: max below initial is raised, zero
        // initial is floored (the sleep must never be zero, or a
        // persistent error spins).
        let mut degenerate = AcceptBackoff::new(Duration::ZERO, Duration::ZERO);
        let first = degenerate.on_error();
        assert!(first > Duration::ZERO);
        assert_eq!(degenerate.on_error(), first, "max == initial");
    }

    #[test]
    fn batch_endpoint_preserves_partial_failure() {
        let (gateway, server) = gateway();
        let mut client = HttpClient::connect(gateway.addr()).unwrap();
        let batch = r#"[
            {"wrapper":"shop","url":"http://shop/","html":"<ul><li>one</li></ul>"},
            {"wrapper":"ghost","url":"http://nowhere/"},
            {"wrapper":"shop","url":"http://shop/","html":"<ul><li>one</li></ul>"}
        ]"#;
        let response = client.post_json("/extract/batch", batch).unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
        let parsed = response.json().unwrap();
        assert_eq!(parsed.get("count").and_then(Json::as_u64), Some(3));
        let items = parsed.get("items").and_then(Json::as_array).unwrap();
        assert_eq!(items[0].get("status").and_then(Json::as_u64), Some(200));
        assert_eq!(items[1].get("status").and_then(Json::as_u64), Some(404));
        assert_eq!(items[2].get("status").and_then(Json::as_u64), Some(200));
        assert!(items[0]
            .get("body")
            .and_then(|b| b.get("xml"))
            .and_then(Json::as_str)
            .unwrap()
            .contains("one"));
        // The connection survives a batch (keep-alive).
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        drop(client);
        gateway.shutdown();
        server.initiate_shutdown();
    }

    fn monitored_gateway(interval: Duration) -> (HttpGateway, Arc<ExtractionServer>) {
        let registry = Arc::new(WrapperRegistry::new());
        registry
            .register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
            .unwrap();
        let server = Arc::new(ExtractionServer::start(
            ServerConfig::default(),
            registry,
            Arc::new(lixto_elog::StaticWeb::new()),
        ));
        let gateway = HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                handler_threads: 2,
                idle_timeout: Duration::from_secs(10),
                monitor_interval: interval,
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .unwrap();
        (gateway, server)
    }

    #[test]
    fn history_and_health_report_a_healthy_gateway() {
        let (gateway, server) = monitored_gateway(Duration::from_millis(20));
        let mut client = HttpClient::connect(gateway.addr()).unwrap();
        // Wait out at least two sampler ticks.
        let deadline = Instant::now() + Duration::from_secs(10);
        let history = loop {
            let history = client.get("/metrics/history?window=60&step=10").unwrap();
            assert_eq!(history.status, 200, "{}", history.text());
            let parsed = history.json().unwrap();
            let samples = parsed.get("samples").and_then(Json::as_u64).unwrap();
            if samples >= 2 {
                break parsed;
            }
            assert!(
                Instant::now() < deadline,
                "sampler never produced 2 samples"
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        let summary = history.get("summary").unwrap();
        assert!(summary.get("fields").and_then(Json::as_array).is_some());
        // A healthy, idle gateway scores ok, with every rule listed.
        let health = client.get("/debug/health").unwrap().json().unwrap();
        assert_eq!(health.get("verdict").and_then(Json::as_str), Some("ok"));
        assert_eq!(
            health
                .get("rules")
                .and_then(Json::as_array)
                .map(|r| r.len()),
            Some(6)
        );
        // The metrics surface grows the alert series.
        let text = client.get("/metrics").unwrap();
        assert!(text.text().contains("lixto_alert_verdict 0"));
        assert!(text
            .text()
            .contains("lixto_alert_severity{rule=\"queue_saturation\"} 0"));
        let json = client.get_accept("/metrics", "application/json").unwrap();
        assert_eq!(
            json.json()
                .unwrap()
                .get("alerts")
                .and_then(|a| a.get("verdict"))
                .and_then(Json::as_str),
            Some("ok")
        );
        // Wrong method on a monitoring path is 405, not 404.
        assert_eq!(
            client
                .request("POST", "/debug/health", &[], None)
                .unwrap()
                .status,
            405
        );
        drop(client);
        gateway.shutdown();
        server.initiate_shutdown();
    }

    #[test]
    fn live_stream_delivers_bounded_events_and_terminates() {
        use std::io::{Read, Write};

        let (gateway, server) = monitored_gateway(Duration::from_millis(20));
        // HttpClient cannot read chunked bodies; speak wire-level.
        let mut stream = TcpStream::connect(gateway.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"GET /debug/live?events=2 HTTP/1.1\r\nhost: t\r\n\r\n")
            .unwrap();
        let mut raw = Vec::new();
        let mut chunk = [0u8; 4096];
        // The terminal chunk ends the body; read until the peer closes.
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("stream read failed: {e}"),
            }
        }
        let text = String::from_utf8(raw).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("transfer-encoding: chunked"), "{text}");
        assert!(text.contains("\"type\":\"subscribed\""), "{text}");
        assert_eq!(
            text.matches("\"type\":\"tick\"").count(),
            2,
            "exactly the requested events: {text}"
        );
        assert!(text.ends_with("0\r\n\r\n"), "terminal chunk: {text}");
        gateway.shutdown();
        server.initiate_shutdown();
    }

    #[test]
    fn live_stream_is_cut_loose_cleanly_by_shutdown() {
        use std::io::{Read, Write};

        // A long interval: shutdown must not wait for the next tick.
        let (gateway, server) = monitored_gateway(Duration::from_secs(60));
        let mut stream = TcpStream::connect(gateway.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"GET /debug/live HTTP/1.1\r\nhost: t\r\n\r\n")
            .unwrap();
        // Wait for the greeting so the subscription is live first.
        let mut raw = Vec::new();
        let mut chunk = [0u8; 4096];
        while !String::from_utf8_lossy(&raw).contains("subscribed") {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "stream closed before the greeting");
            raw.extend_from_slice(&chunk[..n]);
        }
        let shutdown = std::thread::spawn(move || gateway.shutdown());
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("stream read failed: {e}"),
            }
        }
        let text = String::from_utf8(raw).unwrap();
        assert!(text.ends_with("0\r\n\r\n"), "terminal chunk: {text}");
        shutdown.join().unwrap();
        server.initiate_shutdown();
    }

    #[test]
    fn disabled_monitor_hides_every_monitoring_surface() {
        let registry = Arc::new(WrapperRegistry::new());
        registry
            .register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
            .unwrap();
        let server = Arc::new(ExtractionServer::start(
            ServerConfig::default(),
            registry,
            Arc::new(lixto_elog::StaticWeb::new()),
        ));
        let gateway = HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                handler_threads: 2,
                idle_timeout: Duration::from_secs(10),
                monitor: false,
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .unwrap();
        let mut client = HttpClient::connect(gateway.addr()).unwrap();
        for path in ["/metrics/history", "/debug/health", "/debug/live"] {
            assert_eq!(client.get(path).unwrap().status, 404, "{path}");
        }
        // The /metrics surface is exactly the unmonitored rendering.
        let text = client.get("/metrics").unwrap();
        assert!(!text.text().contains("lixto_alert"));
        let json = client.get_accept("/metrics", "application/json").unwrap();
        assert!(json.json().unwrap().get("alerts").is_none());
        drop(client);
        gateway.shutdown();
        server.initiate_shutdown();
    }

    // -----------------------------------------------------------------
    // Continuous extraction: the /watches subscription layer
    // -----------------------------------------------------------------

    const WATCH_WRAPPER: &str = r#"
        offer(S, X) :- document("http://shop/", S), subelem(S, (?.li, []), X).
        name(S, X)  :- offer(_, S), subelem(S, (.b, []), X).
    "#;

    fn watch_page(items: &[&str]) -> String {
        let mut html = String::from("<html><body><ul>");
        for item in items {
            html.push_str(&format!("<li><b>{item}</b></li>"));
        }
        html.push_str("</ul></body></html>");
        html
    }

    /// A gateway over a mutable web, with the watch scheduler ticking
    /// at `tick` — the substrate for the subscription tests.
    fn watch_gateway(
        tick: Duration,
    ) -> (
        HttpGateway,
        Arc<ExtractionServer>,
        Arc<lixto_elog::SharedWeb>,
    ) {
        let registry = Arc::new(WrapperRegistry::new());
        registry
            .register_source("shop", WATCH_WRAPPER, XmlDesign::new().root("offers"))
            .unwrap();
        let web = Arc::new(lixto_elog::SharedWeb::new());
        web.put("http://shop/", watch_page(&["espresso", "grinder"]));
        let server = Arc::new(ExtractionServer::start(
            ServerConfig::default(),
            registry,
            web.clone(),
        ));
        let gateway = HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                handler_threads: 2,
                idle_timeout: Duration::from_secs(10),
                watch_tick: tick,
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .unwrap();
        (gateway, server, web)
    }

    #[test]
    fn watch_routes_register_inspect_and_delete() {
        let (gateway, server, _web) = watch_gateway(Duration::from_millis(200));
        let mut client = HttpClient::connect(gateway.addr()).unwrap();
        // A watch on an undeployed wrapper is refused up front.
        let ghost = client
            .put_json("/watches/w1", r#"{"wrapper":"ghost","url":"http://shop/"}"#)
            .unwrap();
        assert_eq!(ghost.status, 404, "{}", ghost.text());
        // Hostile ids never reach the registry (or its spool format).
        let bad = client
            .put_json(
                "/watches/sp.ace",
                r#"{"wrapper":"shop","url":"http://shop/"}"#,
            )
            .unwrap();
        assert_eq!(bad.status, 400, "{}", bad.text());
        // Register, then replace: 201 then 200, spec echoed back.
        let body = r#"{"wrapper":"shop","url":"http://shop/","interval_ms":60000}"#;
        let created = client.put_json("/watches/offers", body).unwrap();
        assert_eq!(created.status, 201, "{}", created.text());
        assert_eq!(
            created
                .json()
                .unwrap()
                .get("interval_ms")
                .and_then(Json::as_u64),
            Some(60_000)
        );
        let replaced = client.put_json("/watches/offers", body).unwrap();
        assert_eq!(replaced.status, 200, "{}", replaced.text());
        // Listing and single-watch inspection agree.
        let listing = client.get("/watches").unwrap().json().unwrap();
        assert_eq!(
            listing
                .get("watches")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
        let one = client.get("/watches/offers").unwrap().json().unwrap();
        assert_eq!(one.get("wrapper").and_then(Json::as_str), Some("shop"));
        // The metrics surface grows the watch families, both renderings.
        let text = client.get("/metrics").unwrap();
        assert!(text.text().contains("lixto_watch_registered 1"));
        assert!(text
            .text()
            .contains("lixto_watch_ticks_total{watch=\"offers\"}"));
        let json = client.get_accept("/metrics", "application/json").unwrap();
        assert_eq!(
            json.json()
                .unwrap()
                .get("watches")
                .and_then(|w| w.get("registered"))
                .and_then(Json::as_u64),
            Some(1)
        );
        // A stream on an unknown id answers a plain 404, not a stream.
        assert_eq!(client.get("/watches/ghost/events").unwrap().status, 404);
        // Wrong method is 405, not 404, while the layer runs.
        assert_eq!(
            client
                .request("POST", "/watches/offers", &[], None)
                .unwrap()
                .status,
            405
        );
        // Delete; the id is gone from every surface.
        assert_eq!(
            client
                .request("DELETE", "/watches/offers", &[], None)
                .unwrap()
                .status,
            200
        );
        assert_eq!(client.get("/watches/offers").unwrap().status, 404);
        assert_eq!(
            client
                .request("DELETE", "/watches/offers", &[], None)
                .unwrap()
                .status,
            404
        );
        drop(client);
        gateway.shutdown();
        server.initiate_shutdown();
    }

    /// The acceptance scenario end to end: a registered watch over a
    /// page that mutates once delivers exactly one instance-level diff
    /// event to a long-poll subscriber *and* a webhook sink — and
    /// nothing at all on the unchanged ticks before and after.
    #[test]
    fn watch_stream_and_webhook_deliver_exactly_one_diff_for_one_change() {
        use std::io::{Read, Write};

        let (gateway, server, web) = watch_gateway(Duration::from_millis(10));

        // A scripted webhook sink: answers every POST with 200 and
        // forwards each body. Keep-alive, like the delivery client.
        let sink = TcpListener::bind("127.0.0.1:0").unwrap();
        let sink_addr = sink.local_addr().unwrap();
        let (body_tx, body_rx) = std::sync::mpsc::channel::<String>();
        std::thread::spawn(move || {
            while let Ok((mut stream, _)) = sink.accept() {
                let tx = body_tx.clone();
                std::thread::spawn(move || {
                    let mut buf: Vec<u8> = Vec::new();
                    let mut chunk = [0u8; 4096];
                    loop {
                        let header_end = loop {
                            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                                break pos + 4;
                            }
                            match stream.read(&mut chunk) {
                                Ok(0) | Err(_) => return,
                                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                            }
                        };
                        let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
                        let length: usize = head
                            .lines()
                            .find_map(|line| {
                                let (name, value) = line.split_once(':')?;
                                name.eq_ignore_ascii_case("content-length")
                                    .then(|| value.trim().parse().ok())
                                    .flatten()
                            })
                            .unwrap_or(0);
                        while buf.len() < header_end + length {
                            match stream.read(&mut chunk) {
                                Ok(0) | Err(_) => return,
                                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                            }
                        }
                        let body = String::from_utf8_lossy(&buf[header_end..header_end + length])
                            .to_string();
                        buf.drain(..header_end + length);
                        let _ = tx.send(body);
                        if stream
                            .write_all(
                                b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 2\r\n\r\n{}",
                            )
                            .is_err()
                        {
                            return;
                        }
                    }
                });
            }
        });

        let mut client = HttpClient::connect(gateway.addr()).unwrap();
        let put = client
            .put_json(
                "/watches/offers",
                &format!(
                    r#"{{"wrapper":"shop","url":"http://shop/","interval_ms":10,"webhook":"http://{sink_addr}/hook"}}"#
                ),
            )
            .unwrap();
        assert_eq!(put.status, 201, "{}", put.text());

        // Wait for the baseline tick (the first extraction only sets
        // the reference snapshot — never an event).
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let status = client.get("/watches/offers").unwrap().json().unwrap();
            if status.get("ticks").and_then(Json::as_u64).unwrap_or(0) >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "baseline tick never ran");
            std::thread::sleep(Duration::from_millis(5));
        }

        // Subscribe, bounded to one diff event. HttpClient cannot read
        // chunked bodies; speak wire-level.
        let mut stream = TcpStream::connect(gateway.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"GET /watches/offers/events?events=1 HTTP/1.1\r\nhost: t\r\n\r\n")
            .unwrap();
        let mut raw = Vec::new();
        let mut chunk = [0u8; 4096];
        while !String::from_utf8_lossy(&raw).contains("watch_hello") {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "stream closed before the greeting");
            raw.extend_from_slice(&chunk[..n]);
        }

        // Several unchanged ticks pass: nothing is delivered anywhere.
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            body_rx.try_recv().is_err(),
            "webhook fired on an unchanged page"
        );

        // One mutation: grinder becomes kettle, mug appears.
        web.put("http://shop/", watch_page(&["espresso", "kettle", "mug"]));

        // The subscriber gets exactly one event, then the terminal
        // chunk (its ?events=1 budget is used up).
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("stream read failed: {e}"),
            }
        }
        let text = String::from_utf8(raw).unwrap();
        assert_eq!(
            text.matches("\"type\":\"watch_event\"").count(),
            1,
            "exactly one diff event: {text}"
        );
        assert!(text.contains("\"seq\":1"), "{text}");
        assert!(
            text.contains(r#"{"pattern":"name","before":"grinder","after":"kettle"}"#),
            "in-place mutation pairs as changed: {text}"
        );
        assert!(
            text.contains(r#"{"pattern":"name","text":"mug"}"#),
            "surplus instance reports as added: {text}"
        );
        assert!(text.ends_with("0\r\n\r\n"), "terminal chunk: {text}");

        // The webhook got the same event, exactly once.
        let webhook_body = body_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("webhook delivery");
        assert!(webhook_body.contains("\"type\":\"watch_event\""));
        assert!(webhook_body.contains("\"watch\":\"offers\""));
        assert!(webhook_body.contains(r#"{"pattern":"name","text":"mug"}"#));
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            body_rx.try_recv().is_err(),
            "webhook fired twice for one change"
        );

        // Counters agree: one event, suppressed ticks counted, one
        // webhook delivery, no failures.
        let status = client.get("/watches/offers").unwrap().json().unwrap();
        assert_eq!(status.get("seq").and_then(Json::as_u64), Some(1));
        assert!(status.get("suppressed").and_then(Json::as_u64).unwrap() >= 1);
        assert_eq!(status.get("errors").and_then(Json::as_u64), Some(0));
        let metrics = client
            .get_accept("/metrics", "application/json")
            .unwrap()
            .json()
            .unwrap();
        let watches = metrics.get("watches").unwrap();
        assert_eq!(
            watches.get("webhook_deliveries").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            watches.get("webhook_failures").and_then(Json::as_u64),
            Some(0)
        );

        drop(client);
        gateway.shutdown();
        server.initiate_shutdown();
    }

    #[test]
    fn watch_stream_is_cut_loose_cleanly_by_shutdown() {
        use std::io::{Read, Write};

        // A long interval: shutdown must not wait for the next tick.
        let (gateway, server, _web) = watch_gateway(Duration::from_millis(10));
        let mut client = HttpClient::connect(gateway.addr()).unwrap();
        let put = client
            .put_json(
                "/watches/offers",
                r#"{"wrapper":"shop","url":"http://shop/","interval_ms":60000}"#,
            )
            .unwrap();
        assert_eq!(put.status, 201);
        drop(client);
        let mut stream = TcpStream::connect(gateway.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"GET /watches/offers/events HTTP/1.1\r\nhost: t\r\n\r\n")
            .unwrap();
        let mut raw = Vec::new();
        let mut chunk = [0u8; 4096];
        while !String::from_utf8_lossy(&raw).contains("watch_hello") {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "stream closed before the greeting");
            raw.extend_from_slice(&chunk[..n]);
        }
        let shutdown = std::thread::spawn(move || gateway.shutdown());
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("stream read failed: {e}"),
            }
        }
        let text = String::from_utf8(raw).unwrap();
        assert!(text.ends_with("0\r\n\r\n"), "terminal chunk: {text}");
        shutdown.join().unwrap();
        server.initiate_shutdown();
    }

    #[test]
    fn disabled_watches_hide_every_watch_surface() {
        let registry = Arc::new(WrapperRegistry::new());
        registry
            .register_source("shop", WRAPPER, XmlDesign::new().root("offers"))
            .unwrap();
        let server = Arc::new(ExtractionServer::start(
            ServerConfig::default(),
            registry,
            Arc::new(lixto_elog::StaticWeb::new()),
        ));
        let gateway = HttpGateway::bind(
            "127.0.0.1:0",
            GatewayConfig {
                handler_threads: 2,
                idle_timeout: Duration::from_secs(10),
                watches: false,
                ..GatewayConfig::default()
            },
            server.clone(),
        )
        .unwrap();
        let mut client = HttpClient::connect(gateway.addr()).unwrap();
        for path in ["/watches", "/watches/x", "/watches/x/events"] {
            assert_eq!(client.get(path).unwrap().status, 404, "{path}");
        }
        assert_eq!(
            client
                .put_json("/watches/x", r#"{"wrapper":"shop","url":"u"}"#)
                .unwrap()
                .status,
            404
        );
        assert_eq!(
            client
                .request("DELETE", "/watches/x", &[], None)
                .unwrap()
                .status,
            404
        );
        // The /metrics surface is exactly the watchless rendering.
        let text = client.get("/metrics").unwrap();
        assert!(!text.text().contains("lixto_watch"));
        let json = client.get_accept("/metrics", "application/json").unwrap();
        assert!(json.json().unwrap().get("watches").is_none());
        drop(client);
        gateway.shutdown();
        server.initiate_shutdown();
    }
}
