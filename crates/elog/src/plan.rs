//! Compiled wrapper plans.
//!
//! The paper's central economics are "compile a declarative Elog wrapper
//! once, run it over many documents": the Visual Wrapper emits a program
//! a service then executes continuously (§6). The interpreted
//! [`Extractor`](crate::Extractor) re-walks the raw AST on every run —
//! re-compiling every regex, hashing variable names into `HashMap`
//! environments, and scanning the instance base linearly for parents and
//! duplicates. A [`WrapperPlan`] is the once-per-deploy artifact that
//! removes all of that from the per-document path:
//!
//! * pattern names, variable names and concept references are interned
//!   into dense `u32` ids at compile time — the evaluation environment
//!   becomes a `Vec<Option<Value>>` frame indexed by slot, with no
//!   per-binding hashing or `String` clones;
//! * every rule's parent-pattern edge is resolved to a pattern id, and an
//!   indexed rule table ([`WrapperPlan::rules_for_parent`]) replaces the
//!   per-application name scan;
//! * element-path tag regexes, `regvar` attribute patterns, `subtext`
//!   extraction regexes and syntactic concept regexes are compiled
//!   exactly once, at plan-compile time;
//! * unknown parent patterns, unbound variables, dangling concept
//!   references and malformed regexes are rejected *at compile time* with
//!   a structured [`CompileError`] — a deploy-time 400 instead of a
//!   per-request silent empty result.
//!
//! A compiled plan can additionally be run through the optimizer phase
//! ([`crate::optimize`]) that sits between `compile` and `exec`: rule
//! scheduling over the pattern-dependency DAG (acyclic wrappers run in a
//! single pass), fusion of each element-path into a precompiled
//! bit-parallel tree automaton walk, and hoisting of identical
//! sub-matchers shared across rules. The optimizer consumes exactly the
//! structures defined here ([`PlanRule`], [`PlanPath`], [`PlanStep`],
//! [`PlanCondition`]) and never rewrites them — it attaches a parallel
//! table of fused/scheduled forms the executor consults.
//!
//! Execution of a plan (see `exec`) — optimized or not — is
//! result-identical to the interpreted reference evaluator — byte for
//! byte, including instance order — which the `plan_equivalence`
//! integration test asserts across the whole workload corpus.

use std::collections::HashSet;
use std::fmt;

use lixto_regexlite::Regex;

use crate::ast::ElogProgram;

/// Dense id of a pattern name within a plan (index into
/// [`WrapperPlan::patterns`]).
pub type PatternId = u32;

/// Dense id of a rule-local variable (index into the rule's slot frame).
pub type SlotId = u32;

/// Why a program failed to compile into a [`WrapperPlan`].
///
/// Every variant carries the offending rule (0-based source order) and
/// the pattern that rule defines, so a deploy frontend can point at the
/// exact rule of a rejected wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A rule's parent atom names a pattern no rule defines.
    UnknownParentPattern {
        /// 0-based rule index in source order.
        rule: usize,
        /// The pattern the rule defines.
        pattern: String,
        /// The undefined parent pattern.
        parent: String,
    },
    /// A condition references a variable no extraction atom or earlier
    /// condition binds.
    UnboundVariable {
        /// 0-based rule index.
        rule: usize,
        /// The pattern the rule defines.
        pattern: String,
        /// The unbound variable.
        variable: String,
    },
    /// A concept condition names a concept the registry does not define.
    UnknownConcept {
        /// 0-based rule index.
        rule: usize,
        /// The pattern the rule defines.
        pattern: String,
        /// The undefined concept.
        concept: String,
    },
    /// A regex (tag test, `regvar` attribute, `subtext` pattern or
    /// syntactic concept) does not compile.
    BadRegex {
        /// 0-based rule index.
        rule: usize,
        /// The pattern the rule defines.
        pattern: String,
        /// The regex source that failed.
        regex: String,
        /// The regex engine's message.
        message: String,
    },
    /// An entry rule's `document()` URL is a variable; entry URLs must
    /// be constant.
    EntryUrlNotConstant {
        /// 0-based rule index.
        rule: usize,
        /// The pattern the rule defines.
        pattern: String,
    },
}

impl CompileError {
    /// A stable machine-readable code for the error kind.
    pub fn code(&self) -> &'static str {
        match self {
            CompileError::UnknownParentPattern { .. } => "unknown_parent_pattern",
            CompileError::UnboundVariable { .. } => "unbound_variable",
            CompileError::UnknownConcept { .. } => "unknown_concept",
            CompileError::BadRegex { .. } => "bad_regex",
            CompileError::EntryUrlNotConstant { .. } => "entry_url_not_constant",
        }
    }

    /// The 0-based source-order index of the offending rule.
    pub fn rule(&self) -> usize {
        match self {
            CompileError::UnknownParentPattern { rule, .. }
            | CompileError::UnboundVariable { rule, .. }
            | CompileError::UnknownConcept { rule, .. }
            | CompileError::BadRegex { rule, .. }
            | CompileError::EntryUrlNotConstant { rule, .. } => *rule,
        }
    }

    /// The pattern the offending rule defines.
    pub fn pattern(&self) -> &str {
        match self {
            CompileError::UnknownParentPattern { pattern, .. }
            | CompileError::UnboundVariable { pattern, .. }
            | CompileError::UnknownConcept { pattern, .. }
            | CompileError::BadRegex { pattern, .. }
            | CompileError::EntryUrlNotConstant { pattern, .. } => pattern,
        }
    }

    /// The offending identifier (parent pattern, variable, concept, or
    /// regex source), when the variant has one.
    pub fn subject(&self) -> Option<&str> {
        match self {
            CompileError::UnknownParentPattern { parent, .. } => Some(parent),
            CompileError::UnboundVariable { variable, .. } => Some(variable),
            CompileError::UnknownConcept { concept, .. } => Some(concept),
            CompileError::BadRegex { regex, .. } => Some(regex),
            CompileError::EntryUrlNotConstant { .. } => None,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownParentPattern {
                rule,
                pattern,
                parent,
            } => write!(
                f,
                "rule {rule} ({pattern:?}): unknown parent pattern {parent:?}"
            ),
            CompileError::UnboundVariable {
                rule,
                pattern,
                variable,
            } => write!(
                f,
                "rule {rule} ({pattern:?}): unbound variable {variable:?}"
            ),
            CompileError::UnknownConcept {
                rule,
                pattern,
                concept,
            } => write!(f, "rule {rule} ({pattern:?}): unknown concept {concept:?}"),
            CompileError::BadRegex {
                rule,
                pattern,
                regex,
                message,
            } => write!(
                f,
                "rule {rule} ({pattern:?}): regex {regex:?} does not compile: {message}"
            ),
            CompileError::EntryUrlNotConstant { rule, pattern } => write!(
                f,
                "rule {rule} ({pattern:?}): entry document() URL must be a constant"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// A tag test with any regex precompiled.
#[derive(Debug, Clone)]
pub enum PlanTag {
    /// Exact tag name.
    Name(String),
    /// `*` — any element.
    Any,
    /// Precompiled (case-insensitive) regex over the tag name.
    Regex(Regex),
}

/// One step of a compiled element path.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// Descend to any depth (`?.tag`) instead of one child level.
    pub descend: bool,
    /// The tag test.
    pub tag: PlanTag,
}

/// A `\var[V]` pattern compiled once: the regex plus its capture names.
/// A capture with a slot binds that variable; a capture without one must
/// still participate in the match (the interpreted semantics) but its
/// text is discarded — delimiter and context paths never bind.
#[derive(Debug, Clone)]
pub struct PlanRegvar {
    /// The compiled regex (named groups per `\var`).
    pub regex: Regex,
    /// `(group name, destination slot)` in `\var` order.
    pub captures: Vec<(String, Option<SlotId>)>,
}

/// An attribute condition with its matcher precompiled.
#[derive(Debug, Clone)]
pub struct PlanAttr {
    /// Attribute name, or `elementtext` for the text pseudo-attribute.
    pub attr: String,
    /// The match mode.
    pub matcher: PlanAttrMatch,
}

/// The compiled forms of [`AttrMode`](crate::ast::AttrMode).
#[derive(Debug, Clone)]
pub enum PlanAttrMatch {
    /// Trimmed value equals the pattern.
    Exact(String),
    /// Value contains the pattern.
    Substr(String),
    /// Value matches the precompiled `\var` regex.
    Regvar(PlanRegvar),
}

/// An element path with every matcher precompiled.
#[derive(Debug, Clone, Default)]
pub struct PlanPath {
    /// The steps, outermost first.
    pub steps: Vec<PlanStep>,
    /// Attribute conditions on the final node.
    pub attrs: Vec<PlanAttr>,
}

/// A compiled URL expression.
#[derive(Debug, Clone)]
pub enum PlanUrl {
    /// A fixed URL.
    Const(String),
    /// A slot bound by an `attrbind` condition in the same rule.
    Slot(SlotId),
}

/// A rule's parent source with the pattern edge resolved.
#[derive(Debug, Clone)]
pub enum PlanParent {
    /// Instances of another pattern, by id.
    Pattern(PatternId),
    /// An entry rule fetching a constant URL.
    Document(String),
}

/// Compiled extraction atoms.
#[derive(Debug, Clone)]
pub enum PlanExtraction {
    /// Specialization: X := S.
    Specialize,
    /// Tree extraction along a compiled path.
    Subelem(PlanPath),
    /// Sequence extraction (context / start / end delimiters).
    Subsq {
        /// Path to the node whose children are scanned.
        context: PlanPath,
        /// First-member delimiter.
        start: PlanPath,
        /// Last-member delimiter.
        end: PlanPath,
    },
    /// String extraction with the regex compiled once.
    Subtext(PlanRegvar),
    /// Attribute value extraction.
    Subatt(String),
    /// Crawl: fetch the page at the URL.
    Document(PlanUrl),
}

/// A variable reference in a condition: a frame slot, or the implicit
/// target variable `X` falling back to the candidate's text.
#[derive(Debug, Clone, Copy)]
pub enum PlanVarRef {
    /// A bound slot; unbound at runtime (an `attrbind` whose parent is
    /// not a node never fires) fails the condition.
    Slot(SlotId),
    /// A slot for a variable literally named `X`: unbound at runtime
    /// falls back to the candidate target's text, as the interpreted
    /// evaluator's `env.get("X")` miss does.
    SlotOrTarget(SlotId),
    /// The candidate target's text content (`X` when nothing binds it).
    TargetText,
}

/// A compiled concept matcher (the registry lookup and any regex
/// compilation are done once, at plan compile time).
#[derive(Debug, Clone)]
pub enum PlanConcept {
    /// Syntactic concept: the precompiled (case-insensitive) regex.
    Syntactic(Regex),
    /// Semantic concept: the lower-cased ontology members.
    Semantic(HashSet<String>),
}

impl PlanConcept {
    /// Does the concept hold for `value`? (Mirrors
    /// [`ConceptRegistry::holds`](crate::ConceptRegistry::holds).)
    pub fn holds(&self, value: &str) -> bool {
        match self {
            PlanConcept::Syntactic(re) => re.is_match(value.trim()),
            PlanConcept::Semantic(set) => set.contains(&value.trim().to_lowercase()),
        }
    }
}

/// The right-hand side of a comparison.
#[derive(Debug, Clone)]
pub enum PlanOperand {
    /// A literal from the source.
    Literal(String),
    /// A bound value.
    Var(PlanVarRef),
}

/// Compiled condition atoms.
#[derive(Debug, Clone)]
pub enum PlanCondition {
    /// `before`/`after` (and their negations) with precompiled path.
    Context {
        /// Path of the context node, searched within S.
        path: PlanPath,
        /// Minimum distance.
        min: u32,
        /// Maximum distance.
        max: u32,
        /// Bind the context node (and the path's `regvar` variables).
        bind: Option<SlotId>,
        /// `notbefore`/`notafter`.
        negated: bool,
        /// `before` when true, `after` when false.
        is_before: bool,
    },
    /// `contains` / `notcontains` on the candidate's subtree.
    Contains {
        /// Path searched within X.
        path: PlanPath,
        /// Negated form.
        negated: bool,
    },
    /// `firstsubtree`.
    FirstSubtree {
        /// The path.
        path: PlanPath,
    },
    /// Concept test on a bound value.
    Concept {
        /// The compiled concept matcher.
        concept: PlanConcept,
        /// The tested value.
        var: PlanVarRef,
        /// Negated form.
        negated: bool,
    },
    /// Comparison of two values.
    Comparison {
        /// Left value.
        left: PlanVarRef,
        /// One of `<`, `<=`, `>`, `>=`, `=`, `!=`.
        op: String,
        /// Right value.
        right: PlanOperand,
    },
    /// Pattern reference: the bound value must be an instance of the
    /// referenced pattern.
    PatternRef {
        /// Referenced pattern id.
        pattern: PatternId,
        /// The bound slot.
        var: SlotId,
    },
    /// Bind an attribute of the parent node.
    AttrBind {
        /// Attribute name.
        attr: String,
        /// Destination slot.
        var: SlotId,
    },
    /// Range criterion — handled at the rule level (see
    /// [`PlanRule::range`]); a no-op at condition position.
    Range,
}

/// One compiled rule.
#[derive(Debug, Clone)]
pub struct PlanRule {
    /// The pattern this rule defines.
    pub pattern: PatternId,
    /// Parent source with the pattern edge resolved.
    pub parent: PlanParent,
    /// Compiled extraction atom.
    pub extraction: PlanExtraction,
    /// Compiled conditions, in source order.
    pub conditions: Vec<PlanCondition>,
    /// Number of variable slots the rule's frame needs.
    pub slots: usize,
    /// Slot names (diagnostics; index = [`SlotId`]).
    pub slot_names: Vec<String>,
    /// The first range criterion `(from, to)`, hoisted out of the
    /// condition list.
    pub range: Option<(usize, usize)>,
    /// Pattern ids referenced by `PatternRef` conditions — together with
    /// the parent edge, the rule's complete dependency set, which the
    /// executor uses to skip re-evaluation when nothing it reads has
    /// changed (semi-naive fixpoint).
    pub refs: Vec<PatternId>,
}

/// A compiled, immutable, shareable wrapper: the product of
/// [`WrapperPlan::compile`](WrapperPlan::compile), executed by
/// [`Extractor::from_plan`](crate::Extractor::from_plan).
#[derive(Debug, Clone)]
pub struct WrapperPlan {
    /// The source program (kept for pretty-printing and the interpreted
    /// reference path).
    pub(crate) program: ElogProgram,
    /// Interned pattern names; index = [`PatternId`], in
    /// first-definition order.
    pub(crate) patterns: Vec<String>,
    /// Compiled rules, in source order (execution preserves source order
    /// so plan runs are instance-for-instance identical to the
    /// interpreted evaluator).
    pub(crate) rules: Vec<PlanRule>,
    /// Rule indices per parent pattern id — the indexed rule table.
    pub(crate) rules_by_parent: Vec<Vec<usize>>,
    /// Rule indices of entry (`document()`-parent) rules.
    pub(crate) entry_rules: Vec<usize>,
}

impl WrapperPlan {
    /// The interned pattern table, in first-definition order.
    pub fn patterns(&self) -> &[String] {
        &self.patterns
    }

    /// The id of `pattern`, if the program defines it.
    pub fn pattern_id(&self, pattern: &str) -> Option<PatternId> {
        self.patterns
            .iter()
            .position(|p| p == pattern)
            .map(|i| i as PatternId)
    }

    /// The compiled rules in execution (source) order.
    pub fn rules(&self) -> &[PlanRule] {
        &self.rules
    }

    /// Rule indices whose parent is `pattern` — the pre-resolved edge
    /// index of the pattern hierarchy.
    pub fn rules_for_parent(&self, pattern: PatternId) -> &[usize] {
        &self.rules_by_parent[pattern as usize]
    }

    /// Rule indices of the entry rules.
    pub fn entry_rules(&self) -> &[usize] {
        &self.entry_rules
    }

    /// The source program the plan was compiled from.
    pub fn program(&self) -> &ElogProgram {
        &self.program
    }

    /// Total slot count across rules (a size diagnostic).
    pub fn total_slots(&self) -> usize {
        self.rules.iter().map(|r| r.slots).sum()
    }
}
