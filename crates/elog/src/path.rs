//! Element-path evaluation with attribute conditions and regex variables.

use std::collections::HashMap;

use lixto_regexlite::Regex;
use lixto_tree::{Document, NodeId, NodeKind};

use crate::ast::{AttrCond, AttrMode, ElementPath, PathStep, TagTest};

/// A variable binding produced during matching.
pub type Bindings = HashMap<String, String>;

/// Match result: target node plus any string-variable bindings from
/// `regvar` attribute conditions.
#[derive(Debug, Clone)]
pub struct PathMatch {
    /// The matched node.
    pub node: NodeId,
    /// String variables bound along the way.
    pub bindings: Bindings,
}

/// Evaluate a path against a *forest context*: `roots` are the children of
/// a virtual context node (for a node target, pass its children; for a
/// sequence target, pass the members). Matches are returned in document
/// order.
pub fn eval_path(doc: &Document, roots: &[NodeId], path: &ElementPath) -> Vec<PathMatch> {
    let mut current: Vec<NodeId> = roots.to_vec();
    for (i, step) in path.steps.iter().enumerate() {
        let mut next = Vec::new();
        for &c in &current {
            step_candidates(doc, c, step, i == 0, &mut next);
        }
        // The first step matches the roots themselves (they are the
        // candidates); subsequent steps descend.
        current = next;
        if current.is_empty() {
            return Vec::new();
        }
    }
    // Dedup (descendant steps can reach a node along one path only in a
    // tree, but root lists may overlap) and order by document position.
    current.sort_by_key(|&n| doc.order().pre(n));
    current.dedup();
    // Attribute conditions on the final node.
    let mut out = Vec::new();
    'node: for n in current {
        let mut bindings = Bindings::new();
        for cond in &path.attrs {
            match check_attr(doc, n, cond) {
                Some(more) => bindings.extend(more),
                None => continue 'node,
            }
        }
        out.push(PathMatch { node: n, bindings });
    }
    out
}

/// Candidates for one step from context node `c`. For the first step the
/// context node itself is a candidate root (the step tests `c`); for later
/// steps we descend into children (`.x`) or all descendants (`?.x`).
fn step_candidates(doc: &Document, c: NodeId, step: &PathStep, first: bool, out: &mut Vec<NodeId>) {
    if first {
        // The roots ARE the candidates for the first step.
        if step.descend {
            // `?.x` from the virtual context: any descendant-or-self.
            for d in doc.descendants_or_self(c) {
                if tag_matches(doc, d, &step.tag) {
                    out.push(d);
                }
            }
        } else if tag_matches(doc, c, &step.tag) {
            out.push(c);
        }
    } else if step.descend {
        for d in doc.descendants(c) {
            if tag_matches(doc, d, &step.tag) {
                out.push(d);
            }
        }
    } else {
        for ch in doc.children(c) {
            if tag_matches(doc, ch, &step.tag) {
                out.push(ch);
            }
        }
    }
}

/// Does the node's tag satisfy the test?
pub fn tag_matches(doc: &Document, n: NodeId, test: &TagTest) -> bool {
    match test {
        TagTest::Any => doc.kind(n) == NodeKind::Element,
        TagTest::Name(name) => doc.label_str(n) == name,
        TagTest::Regex(re) => match Regex::with_options(re, true) {
            Ok(r) => r.is_full_match(doc.label_str(n)),
            Err(_) => false,
        },
    }
}

/// Check one attribute condition; `Some(bindings)` on success.
pub fn check_attr(doc: &Document, n: NodeId, cond: &AttrCond) -> Option<Bindings> {
    let value: String = if cond.attr == "elementtext" {
        doc.text_content(n)
    } else {
        doc.attr(n, &cond.attr)?.to_string()
    };
    match cond.mode {
        AttrMode::Exact => {
            if value.trim() == cond.pattern {
                Some(Bindings::new())
            } else {
                None
            }
        }
        AttrMode::Substr => {
            if value.contains(&cond.pattern) {
                Some(Bindings::new())
            } else {
                None
            }
        }
        AttrMode::Regvar => regvar_match(&cond.pattern, &value),
    }
}

/// Match a `\var[V]`-annotated pattern against a value. Each `\var[V]`
/// segment becomes a named capture group; on success all variables are
/// bound to their captures.
pub fn regvar_match(pattern: &str, value: &str) -> Option<Bindings> {
    let (regex_src, vars) = compile_regvar(pattern);
    let re = Regex::new(&regex_src).ok()?;
    let caps = re.captures(value)?;
    let mut b = Bindings::new();
    for v in vars {
        let m = caps.name(&v)?;
        b.insert(v, m.text.to_string());
    }
    Some(b)
}

/// Translate a `\var[V]` pattern into regex source with named groups.
/// `\var[V]` becomes `(?P<V>.+?)` unless followed by a refining group in
/// parentheses: `\var[V](re)` becomes `(?P<V>re)`.
pub fn compile_regvar(pattern: &str) -> (String, Vec<String>) {
    let mut out = String::new();
    let mut vars = Vec::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if pattern[byte_of(&chars, i)..].starts_with("\\var[") {
            i += 5;
            let mut name = String::new();
            while i < chars.len() && chars[i] != ']' {
                name.push(chars[i]);
                i += 1;
            }
            i += 1; // ']'
                    // Optional refining subpattern in parentheses.
            if i < chars.len() && chars[i] == '(' {
                let mut depth = 0;
                let mut sub = String::new();
                // An unbalanced refining group consumes to end of input;
                // the leftover open-paren then fails regex compilation
                // instead of panicking here.
                while i < chars.len() {
                    let c = chars[i];
                    if c == '(' {
                        depth += 1;
                        if depth == 1 {
                            i += 1;
                            continue;
                        }
                    }
                    if c == ')' {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    sub.push(c);
                    i += 1;
                }
                out.push_str(&format!("(?P<{name}>{sub})"));
            } else {
                out.push_str(&format!("(?P<{name}>.+?)"));
            }
            vars.push(name);
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    (out, vars)
}

fn byte_of(chars: &[char], i: usize) -> usize {
    chars[..i].iter().map(|c| c.len_utf8()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lixto_tree::build::from_sexp;

    fn doc() -> Document {
        from_sexp(r#"(body (table (tr (td (a href="x" "Desc")) (td "$ 10.00") (td "3"))) (hr))"#)
            .unwrap()
    }

    #[test]
    fn child_steps() {
        let d = doc();
        let roots: Vec<NodeId> = d.children(d.root()).collect();
        let p = ElementPath::children(&["table", "tr", "td"]);
        // roots = [table, hr]; first step tests the roots themselves.
        let hits = eval_path(&d, &roots, &p);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn descendant_step() {
        let d = doc();
        let roots: Vec<NodeId> = vec![d.root()];
        let p = ElementPath::anywhere("td");
        let hits = eval_path(&d, &roots, &p);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn elementtext_substr_condition() {
        let d = doc();
        let p = ElementPath::anywhere("td").with_attr("elementtext", "$", AttrMode::Substr);
        let hits = eval_path(&d, &[d.root()], &p);
        assert_eq!(hits.len(), 1);
        assert_eq!(d.text_content(hits[0].node), "$ 10.00");
    }

    #[test]
    fn attr_exact_and_missing() {
        let d = doc();
        let p = ElementPath::anywhere("a").with_attr("href", "x", AttrMode::Exact);
        assert_eq!(eval_path(&d, &[d.root()], &p).len(), 1);
        let p = ElementPath::anywhere("a").with_attr("href", "y", AttrMode::Exact);
        assert!(eval_path(&d, &[d.root()], &p).is_empty());
        let p = ElementPath::anywhere("a").with_attr("missing", "x", AttrMode::Exact);
        assert!(eval_path(&d, &[d.root()], &p).is_empty());
    }

    #[test]
    fn regvar_binds_variables() {
        let b = regvar_match(r"\var[CUR](\$|EUR)\s*\var[AMT]([0-9.]+)", "$ 10.00").unwrap();
        assert_eq!(b["CUR"], "$");
        assert_eq!(b["AMT"], "10.00");
        assert!(regvar_match(r"\var[C](\$)", "no currency").is_none());
    }

    #[test]
    fn regvar_in_elementtext() {
        let d = doc();
        let p = ElementPath::anywhere("td").with_attr(
            "elementtext",
            r"\var[Y](\$|EUR)",
            AttrMode::Regvar,
        );
        let hits = eval_path(&d, &[d.root()], &p);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].bindings["Y"], "$");
    }

    #[test]
    fn wildcard_and_regex_tags() {
        let d = doc();
        let p = ElementPath {
            steps: vec![PathStep {
                descend: true,
                tag: TagTest::Regex("t[dr]".into()),
            }],
            attrs: vec![],
        };
        assert_eq!(eval_path(&d, &[d.root()], &p).len(), 4); // 1 tr + 3 td
        let p = ElementPath {
            steps: vec![
                PathStep {
                    descend: true,
                    tag: TagTest::Name("tr".into()),
                },
                PathStep {
                    descend: false,
                    tag: TagTest::Any,
                },
            ],
            attrs: vec![],
        };
        assert_eq!(eval_path(&d, &[d.root()], &p).len(), 3); // the tds
    }

    #[test]
    fn matches_in_document_order() {
        let d = doc();
        let hits = eval_path(&d, &[d.root()], &ElementPath::anywhere("td"));
        for w in hits.windows(2) {
            assert!(d.doc_before(w[0].node, w[1].node));
        }
    }
}
