//! The Extractor: Elog program evaluation.
//!
//! "The Extractor is the Elog program interpreter that performs the actual
//! extraction based on a given Elog program" (Section 3.1). Evaluation is
//! parent-driven — each rule fires once per parent-pattern instance, which
//! is what keeps the dyadic syntax within the favourable complexity of
//! monadic datalog (Section 3.3) — and iterates to a fixpoint so that
//! recursive wrapping and crawling across documents terminate only when no
//! new instances (or pages) appear.
//!
//! Conditions are evaluated over *environment sets*: a condition that
//! binds a variable (e.g. `before(…, Y)`) forks one environment per
//! witness, so later conditions (`price(_, Y)`) quantify existentially
//! over all of them — the semantics the `<bids>` rule of Figure 5 needs.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use lixto_tree::{Document, NodeId};

use crate::ast::{Condition, ElementPath, ElogProgram, ElogRule, Extraction, ParentSpec, UrlExpr};
use crate::concepts::{compare_values, ConceptRegistry};
use crate::instances::{DocId, Instance, InstanceBase, Target};
use crate::optimize::OptimizedPlan;
use crate::path::{check_attr, eval_path, tag_matches, PathMatch};
use crate::plan::{CompileError, WrapperPlan};
use crate::web::WebSource;

/// Safety limits for the fixpoint loop.
#[derive(Debug, Clone)]
pub struct ExtractorOptions {
    /// Maximum number of fetched documents (crawl cap).
    pub max_documents: usize,
    /// Maximum number of instances.
    pub max_instances: usize,
}

impl Default for ExtractorOptions {
    fn default() -> Self {
        ExtractorOptions {
            max_documents: 128,
            max_instances: 1_000_000,
        }
    }
}

/// A value bound to an Elog variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A node of a fetched document.
    Node(DocId, NodeId),
    /// An extracted string.
    Str(String),
}

type Env = HashMap<String, Value>;

/// The result of an extraction run.
///
/// `Clone` and `PartialEq` let callers (the `lixto_server` result cache in
/// particular) store results and check that a cached result is identical
/// to a fresh run. Equality deliberately ignores [`rule_trace`]: the trace
/// is derivation *metadata* recorded only by the plan executor (the
/// interpreted walker leaves it empty), not part of the extraction
/// semantics the `plan_equivalence` suite compares.
///
/// [`rule_trace`]: ExtractionResult::rule_trace
#[derive(Debug, Clone)]
pub struct ExtractionResult {
    /// The pattern instance base.
    pub base: InstanceBase,
    /// All fetched documents (DocId indexes into this).
    pub docs: Vec<Document>,
    /// URL of each fetched document.
    pub doc_urls: Vec<String>,
    /// Distinct pattern names with at least one instance, in
    /// first-extraction order — recorded once at run time (the plan
    /// executor dedups via its pattern table) so [`patterns`] is a
    /// zero-cost accessor rather than a per-call clone-and-scan.
    ///
    /// [`patterns`]: ExtractionResult::patterns
    pub(crate) pattern_names: Vec<String>,
    /// Provenance: for each instance in [`base`](ExtractionResult::base)
    /// (parallel by index), the index of the plan rule that produced it.
    /// Filled by the plan executor; empty when the interpreted walker
    /// produced the result. Persisted by the `lixto_server` result store
    /// so cached instances can explain which rule derived them.
    pub rule_trace: Vec<u32>,
}

impl PartialEq for ExtractionResult {
    fn eq(&self, other: &ExtractionResult) -> bool {
        self.base == other.base
            && self.docs == other.docs
            && self.doc_urls == other.doc_urls
            && self.pattern_names == other.pattern_names
    }
}

impl ExtractionResult {
    /// An empty result (no documents, no instances) — a placeholder for
    /// tests and error paths.
    pub fn empty() -> ExtractionResult {
        ExtractionResult {
            base: InstanceBase::default(),
            docs: Vec::new(),
            doc_urls: Vec::new(),
            pattern_names: Vec::new(),
            rule_trace: Vec::new(),
        }
    }

    /// The plan-rule index that produced instance `i`, when known. `None`
    /// for interpreter-produced results (which record no trace) and for
    /// out-of-range indices.
    pub fn producing_rule(&self, i: usize) -> Option<u32> {
        self.rule_trace.get(i).copied()
    }

    /// Reassemble a result from externally persisted parts — the
    /// `lixto_server` result store rehydrates recovered entries through
    /// this (instances re-materialized as [`Target::Text`], documents
    /// dropped). The pattern-name order is recomputed from the base.
    ///
    /// [`Target::Text`]: crate::instances::Target::Text
    pub fn from_parts(
        base: InstanceBase,
        docs: Vec<Document>,
        doc_urls: Vec<String>,
        rule_trace: Vec<u32>,
    ) -> ExtractionResult {
        let pattern_names = pattern_names_of(&base);
        ExtractionResult {
            base,
            docs,
            doc_urls,
            pattern_names,
            rule_trace,
        }
    }

    /// Convenience: the text of every instance of `pattern`, in insertion
    /// order.
    pub fn texts_of(&self, pattern: &str) -> Vec<String> {
        self.base
            .of_pattern(pattern)
            .into_iter()
            .map(|i| self.base.text_of(i, &self.docs))
            .collect()
    }

    /// The distinct pattern names with at least one extracted instance,
    /// in first-extraction order.
    pub fn patterns(&self) -> &[String] {
        &self.pattern_names
    }
}

/// First-extraction-order pattern names of a finished base (the
/// interpreted evaluator computes this once per run; the plan executor
/// tracks it incrementally through its pattern table).
fn pattern_names_of(base: &InstanceBase) -> Vec<String> {
    let mut seen: Vec<String> = Vec::new();
    for inst in &base.instances {
        if !seen.iter().any(|p| p.as_str() == &*inst.pattern) {
            seen.push(inst.pattern.to_string());
        }
    }
    seen
}

/// How the extractor evaluates: walking the raw AST, executing a
/// precompiled plan as-is, or executing an optimized plan (scheduled,
/// path-fused, sub-matcher-hoisted — see [`crate::optimize`]).
enum Engine {
    Ast(ElogProgram),
    Plan(Arc<WrapperPlan>),
    Optimized(Arc<OptimizedPlan>),
}

/// The Elog evaluator.
///
/// [`Extractor::new`] takes a program AST; [`run`](Extractor::run)
/// compiles it into a [`WrapperPlan`] and executes the plan (falling
/// back to the interpreted reference evaluator for programs that do not
/// compile — e.g. rules whose parent pattern is undefined, which the
/// interpreter tolerates as silently-empty).
/// [`Extractor::from_plan`] skips compilation entirely: services that
/// compile a wrapper once at deploy time use it to pay only the cheap
/// execution half per document.
pub struct Extractor<'w> {
    engine: Engine,
    concepts: ConceptRegistry,
    web: &'w dyn WebSource,
    options: ExtractorOptions,
    probe: Option<&'w crate::exec::ExecProbe>,
}

impl<'w> Extractor<'w> {
    /// New extractor with built-in concepts and default limits.
    pub fn new(program: ElogProgram, web: &'w dyn WebSource) -> Extractor<'w> {
        Extractor {
            engine: Engine::Ast(program),
            concepts: ConceptRegistry::builtin(),
            web,
            options: ExtractorOptions::default(),
            probe: None,
        }
    }

    /// The compiled-plan fast path: execute an already-compiled wrapper.
    /// The plan carries its own concept matchers (baked in at compile
    /// time), so [`with_concepts`](Extractor::with_concepts) only
    /// affects the interpreted reference path.
    pub fn from_plan(plan: Arc<WrapperPlan>, web: &'w dyn WebSource) -> Extractor<'w> {
        Extractor {
            engine: Engine::Plan(plan),
            concepts: ConceptRegistry::builtin(),
            web,
            options: ExtractorOptions::default(),
            probe: None,
        }
    }

    /// The optimized fast path: execute a plan that has been through the
    /// [`crate::optimize`] phase. Services optimize a wrapper once at
    /// deploy time and pay only the (scheduled, fused, hoisted)
    /// execution per request; results are byte-identical to
    /// [`from_plan`](Extractor::from_plan) on the underlying plan.
    pub fn from_optimized(opt: Arc<OptimizedPlan>, web: &'w dyn WebSource) -> Extractor<'w> {
        Extractor {
            engine: Engine::Optimized(opt),
            concepts: ConceptRegistry::builtin(),
            web,
            options: ExtractorOptions::default(),
            probe: None,
        }
    }

    /// Replace the concept registry.
    pub fn with_concepts(mut self, concepts: ConceptRegistry) -> Self {
        self.concepts = concepts;
        self
    }

    /// Replace the safety limits.
    pub fn with_options(mut self, options: ExtractorOptions) -> Self {
        self.options = options;
        self
    }

    /// Attach an execution probe: the compiled-plan path records
    /// per-rule invocation counts, match counts and wall time into it,
    /// plus cumulative fetch/parse time. Without a probe the executor
    /// takes no clock readings. The interpreted reference path ignores
    /// the probe entirely.
    pub fn with_probe(mut self, probe: &'w crate::exec::ExecProbe) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Compile this extractor's program against its concept registry
    /// (or return the already-compiled plan).
    pub fn compile(&self) -> Result<Arc<WrapperPlan>, CompileError> {
        match &self.engine {
            Engine::Plan(plan) => Ok(plan.clone()),
            Engine::Optimized(opt) => Ok(opt.plan().clone()),
            Engine::Ast(program) => WrapperPlan::compile(program, &self.concepts).map(Arc::new),
        }
    }

    /// Compile and optimize this extractor's program (or optimize the
    /// already-compiled plan; an already-optimized plan is returned
    /// as-is). The result can be cached and re-run via
    /// [`from_optimized`](Extractor::from_optimized).
    pub fn optimize(&self) -> Result<Arc<OptimizedPlan>, CompileError> {
        match &self.engine {
            Engine::Optimized(opt) => Ok(opt.clone()),
            _ => Ok(Arc::new(crate::optimize::optimize(self.compile()?))),
        }
    }

    /// Run to fixpoint.
    ///
    /// Compiles, optimizes and executes the plan; a program the compiler
    /// rejects (see [`CompileError`]) falls back to the interpreted
    /// reference evaluator, whose semantics tolerate such programs as
    /// empty matches — `run` itself never fails. An extractor built with
    /// [`from_plan`](Extractor::from_plan) runs the plan unoptimized:
    /// that is the baseline path equivalence tests and benchmarks
    /// compare against.
    pub fn run(&self) -> ExtractionResult {
        match &self.engine {
            Engine::Plan(plan) => crate::exec::execute(plan, self.web, &self.options, self.probe),
            Engine::Optimized(opt) => {
                crate::exec::execute_optimized(opt, self.web, &self.options, self.probe)
            }
            Engine::Ast(program) => match WrapperPlan::compile(program, &self.concepts) {
                Ok(plan) => {
                    let opt = crate::optimize::optimize(Arc::new(plan));
                    crate::exec::execute_optimized(&opt, self.web, &self.options, self.probe)
                }
                Err(_) => self.interpret(program),
            },
        }
    }

    /// Run the interpreted reference evaluator (the pre-plan AST
    /// walker). Kept public for equivalence testing and benchmarking
    /// against the compiled path.
    pub fn run_interpreted(&self) -> ExtractionResult {
        match &self.engine {
            Engine::Ast(program) => self.interpret(program),
            Engine::Plan(plan) => self.interpret(plan.program()),
            Engine::Optimized(opt) => self.interpret(opt.plan().program()),
        }
    }

    fn interpret(&self, program: &ElogProgram) -> ExtractionResult {
        let mut st = State {
            base: InstanceBase::default(),
            docs: Vec::new(),
            doc_urls: Vec::new(),
            url_ids: HashMap::new(),
            failed: HashSet::new(),
        };
        loop {
            let mut changed = false;
            for rule in &program.rules {
                changed |= self.apply_rule(rule, &mut st);
                if st.base.len() >= self.options.max_instances {
                    break;
                }
            }
            if !changed || st.base.len() >= self.options.max_instances {
                break;
            }
        }
        let pattern_names = pattern_names_of(&st.base);
        ExtractionResult {
            base: st.base,
            docs: st.docs,
            doc_urls: st.doc_urls,
            pattern_names,
            rule_trace: Vec::new(),
        }
    }

    fn apply_rule(&self, rule: &ElogRule, st: &mut State) -> bool {
        // Collect the parent contexts (S).
        let parents: Vec<(Option<usize>, Target)> = match &rule.parent {
            ParentSpec::Pattern(name) => st
                .base
                .of_pattern(name)
                .into_iter()
                .map(|i| (Some(i), st.base.instances[i].target.clone()))
                .collect(),
            ParentSpec::Document(UrlExpr::Const(url)) => {
                match st.fetch(self.web, url, self.options.max_documents) {
                    Some(did) => {
                        let root = st.docs[did.0 as usize].root();
                        vec![(
                            None,
                            Target::Node {
                                doc: did,
                                node: root,
                            },
                        )]
                    }
                    None => vec![],
                }
            }
            ParentSpec::Document(UrlExpr::Var(_)) => vec![], // entry URLs must be constant
        };

        let mut changed = false;
        for (parent_idx, s_target) in parents {
            // Produce candidate targets + initial environments.
            let candidates = self.extract(rule, &s_target, st);
            // Context-condition witnesses do not depend on the candidate —
            // hoist one path evaluation per (condition, parent) instead of
            // per candidate (subsq can have O(children²) candidates).
            let witnesses: Vec<Option<Vec<PathMatch>>> = rule
                .conditions
                .iter()
                .map(|c| match c {
                    Condition::Before { path, .. } | Condition::After { path, .. } => {
                        forest_of(&s_target, &st.docs)
                            .map(|(did, roots)| eval_path(&st.docs[did.0 as usize], &roots, path))
                    }
                    _ => None,
                })
                .collect();
            // Filter by conditions; collect accepted targets in document
            // order for range criteria.
            let mut accepted: Vec<Target> = Vec::new();
            for (target, env) in candidates {
                if self.conditions_hold(rule, &s_target, &target, env, st, &witnesses) {
                    accepted.push(target);
                }
            }
            // "The (largest) sequence": among condition-satisfying subsq
            // candidates, keep only the maximal ones (not strictly
            // contained in another accepted sequence).
            if matches!(rule.extraction, Extraction::Subsq { .. }) {
                let snapshot = accepted.clone();
                accepted.retain(|t| {
                    let Target::NodeSeq { nodes, .. } = t else {
                        return true;
                    };
                    !snapshot.iter().any(|o| {
                        if let Target::NodeSeq { nodes: onodes, .. } = o {
                            onodes.len() > nodes.len() && nodes.iter().all(|n| onodes.contains(n))
                        } else {
                            false
                        }
                    })
                });
            }
            // Range criterion (1-based, per parent).
            if let Some((from, to)) = rule.conditions.iter().find_map(|c| match c {
                Condition::Range { from, to } => Some((*from, *to)),
                _ => None,
            }) {
                accepted = accepted
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| *i + 1 >= from && *i < to)
                    .map(|(_, t)| t)
                    .collect();
            }
            for target in accepted {
                let (_, new) = st.base.add(Instance {
                    pattern: rule.pattern.as_str().into(),
                    parent: parent_idx,
                    target,
                });
                changed |= new;
            }
        }
        changed
    }

    /// Apply the extraction atom, yielding (target, initial env) pairs.
    fn extract(&self, rule: &ElogRule, s: &Target, st: &mut State) -> Vec<(Target, Env)> {
        match &rule.extraction {
            Extraction::Specialize => vec![(s.clone(), Env::new())],
            Extraction::Subelem(path) => {
                let Some((did, roots)) = forest_of(s, &st.docs) else {
                    return vec![];
                };
                let doc = &st.docs[did.0 as usize];
                eval_path(doc, &roots, path)
                    .into_iter()
                    .map(|PathMatch { node, bindings }| {
                        let env: Env = bindings
                            .into_iter()
                            .map(|(k, v)| (k, Value::Str(v)))
                            .collect();
                        (Target::Node { doc: did, node }, env)
                    })
                    .collect()
            }
            Extraction::Subsq {
                context,
                start,
                end,
            } => {
                let Some((did, roots)) = forest_of(s, &st.docs) else {
                    return vec![];
                };
                let doc = &st.docs[did.0 as usize];
                let mut out = Vec::new();
                for ctx in eval_path(doc, &roots, context) {
                    let kids: Vec<NodeId> = doc.children(ctx.node).collect();
                    // All [i..=j] runs with matching delimiters; maximality
                    // is applied after conditions, in apply_rule order.
                    for i in 0..kids.len() {
                        if !member_matches(doc, kids[i], start) {
                            continue;
                        }
                        for j in i..kids.len() {
                            if member_matches(doc, kids[j], end) {
                                out.push((
                                    Target::NodeSeq {
                                        doc: did,
                                        nodes: kids[i..=j].to_vec(),
                                    },
                                    Env::new(),
                                ));
                            }
                        }
                    }
                }
                out
            }
            Extraction::Subtext(pattern) => {
                let (regex_src, vars) = crate::path::compile_regvar(pattern);
                let Ok(re) = lixto_regexlite::Regex::new(&regex_src) else {
                    return vec![];
                };
                // Only-empty patterns yield nothing (empty whole-matches
                // are discarded below) — skip the per-char-position scan.
                if re.matches_only_empty() {
                    return vec![];
                }
                let text = target_text(s, &st.docs);
                let mut out = Vec::new();
                for caps in re.captures_iter(&text) {
                    let Some(whole) = caps.get(0) else { continue };
                    if whole.text.is_empty() {
                        continue;
                    }
                    let mut env = Env::new();
                    let mut ok = true;
                    for v in &vars {
                        match caps.name(v) {
                            Some(m) => {
                                env.insert(v.clone(), Value::Str(m.text.to_string()));
                            }
                            None => ok = false,
                        }
                    }
                    if ok {
                        out.push((Target::Text(whole.text.to_string()), env));
                    }
                }
                out
            }
            Extraction::Subatt(attr) => match s {
                Target::Node { doc, node } => {
                    let d = &st.docs[doc.0 as usize];
                    match d.attr(*node, attr) {
                        Some(v) => vec![(Target::Text(v.to_string()), Env::new())],
                        None => vec![],
                    }
                }
                _ => vec![],
            },
            Extraction::Document(url_expr) => {
                // Resolve the URL: constant, or a variable bound by an
                // AttrBind/concept condition evaluated against S.
                let url = match url_expr {
                    UrlExpr::Const(u) => Some(u.clone()),
                    UrlExpr::Var(v) => {
                        // Pre-evaluate binding conditions against S.
                        let mut env = Env::new();
                        for c in &rule.conditions {
                            if let Condition::AttrBind { attr, var } = c {
                                if let Target::Node { doc, node } = s {
                                    let d = &st.docs[doc.0 as usize];
                                    if let Some(val) = d.attr(*node, attr) {
                                        env.insert(var.clone(), Value::Str(val.to_string()));
                                    }
                                }
                            }
                        }
                        env.get(v).and_then(|val| match val {
                            Value::Str(u) => Some(u.clone()),
                            Value::Node(..) => None,
                        })
                    }
                };
                let Some(url) = url else { return vec![] };
                match st.fetch(self.web, &url, self.options.max_documents) {
                    Some(did) => {
                        let root = st.docs[did.0 as usize].root();
                        vec![(
                            Target::Node {
                                doc: did,
                                node: root,
                            },
                            Env::new(),
                        )]
                    }
                    None => vec![],
                }
            }
        }
    }

    /// Evaluate Φ(S, X) with environment-set semantics.
    #[allow(clippy::too_many_arguments)]
    fn conditions_hold(
        &self,
        rule: &ElogRule,
        s: &Target,
        x: &Target,
        initial: Env,
        st: &State,
        witnesses: &[Option<Vec<PathMatch>>],
    ) -> bool {
        let mut envs = vec![initial];
        for (ci, cond) in rule.conditions.iter().enumerate() {
            if matches!(cond, Condition::Range { .. } | Condition::AttrBind { .. }) {
                // Range handled in apply_rule; AttrBind binds eagerly here.
                if let Condition::AttrBind { attr, var } = cond {
                    if let Target::Node { doc, node } = s {
                        let d = &st.docs[doc.0 as usize];
                        if let Some(v) = d.attr(*node, attr) {
                            for env in &mut envs {
                                env.insert(var.clone(), Value::Str(v.to_string()));
                            }
                        } else {
                            return false;
                        }
                    }
                }
                continue;
            }
            let mut next: Vec<Env> = Vec::new();
            for env in envs {
                next.extend(self.eval_condition(cond, s, x, env, st, witnesses[ci].as_deref()));
            }
            if next.is_empty() {
                return false;
            }
            envs = next;
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_condition(
        &self,
        cond: &Condition,
        s: &Target,
        x: &Target,
        env: Env,
        st: &State,
        hoisted: Option<&[PathMatch]>,
    ) -> Vec<Env> {
        match cond {
            Condition::Before {
                path,
                min,
                max,
                bind,
                negated,
            }
            | Condition::After {
                path,
                min,
                max,
                bind,
                negated,
            } => {
                let is_before = matches!(cond, Condition::Before { .. });
                let Some((did, roots)) = forest_of(s, &st.docs) else {
                    return vec![];
                };
                let _ = &roots;
                let doc = &st.docs[did.0 as usize];
                let Some((x_start, x_end)) = target_span(x, doc, did) else {
                    return vec![];
                };
                let all: Vec<PathMatch> = match hoisted {
                    Some(w) => w.to_vec(),
                    None => eval_path(doc, &roots, path),
                };
                let witnesses: Vec<PathMatch> = all
                    .into_iter()
                    .filter(|m| {
                        let (y_start, y_end) = node_span(doc, m.node);
                        if is_before {
                            y_end <= x_start && {
                                let d = (x_start - y_end) as u32;
                                d >= *min && d <= *max
                            }
                        } else {
                            y_start >= x_end && {
                                let d = (y_start - x_end) as u32;
                                d >= *min && d <= *max
                            }
                        }
                    })
                    .collect();
                if *negated {
                    if witnesses.is_empty() {
                        vec![env]
                    } else {
                        vec![]
                    }
                } else if let Some(v) = bind {
                    witnesses
                        .into_iter()
                        .map(|m| {
                            let mut e = env.clone();
                            e.insert(v.clone(), Value::Node(did, m.node));
                            for (k, sv) in m.bindings {
                                e.insert(k, Value::Str(sv));
                            }
                            e
                        })
                        .collect()
                } else if witnesses.is_empty() {
                    vec![]
                } else {
                    vec![env]
                }
            }
            Condition::Contains { path, negated } => {
                let Some((did, roots)) = forest_of(x, &st.docs) else {
                    return vec![];
                };
                let doc = &st.docs[did.0 as usize];
                let found = !eval_path(doc, &roots, path).is_empty();
                if found != *negated {
                    vec![env]
                } else {
                    vec![]
                }
            }
            Condition::FirstSubtree { path } => {
                let Some((did, roots)) = forest_of(s, &st.docs) else {
                    return vec![];
                };
                let doc = &st.docs[did.0 as usize];
                let matches = eval_path(doc, &roots, path);
                match (matches.first(), x) {
                    (Some(first), Target::Node { node, .. }) if first.node == *node => {
                        vec![env]
                    }
                    _ => vec![],
                }
            }
            Condition::Concept {
                concept,
                var,
                negated,
            } => {
                let value = match env.get(var) {
                    Some(Value::Str(sv)) => sv.clone(),
                    Some(Value::Node(did, node)) => st.docs[did.0 as usize].text_content(*node),
                    None if var == "X" => target_text(x, &st.docs),
                    None => return vec![],
                };
                if self.concepts.holds(concept, &value) != *negated {
                    vec![env]
                } else {
                    vec![]
                }
            }
            Condition::Comparison {
                left,
                op,
                right,
                right_is_literal,
            } => {
                let resolve = |name: &str| -> Option<String> {
                    match env.get(name) {
                        Some(Value::Str(sv)) => Some(sv.clone()),
                        Some(Value::Node(did, node)) => {
                            Some(st.docs[did.0 as usize].text_content(*node))
                        }
                        None if name == "X" => Some(target_text(x, &st.docs)),
                        None => None,
                    }
                };
                let Some(l) = resolve(left) else {
                    return vec![];
                };
                let r = if *right_is_literal {
                    right.clone()
                } else {
                    match resolve(right) {
                        Some(r) => r,
                        None => return vec![],
                    }
                };
                if compare_values(&l, op, &r) {
                    vec![env]
                } else {
                    vec![]
                }
            }
            Condition::PatternRef { pattern, var } => {
                let Some(value) = env.get(var) else {
                    return vec![];
                };
                let is_instance = st.base.instances.iter().any(|inst| {
                    &*inst.pattern == pattern.as_str()
                        && match (&inst.target, value) {
                            (Target::Node { doc, node }, Value::Node(vd, vn)) => {
                                doc == vd && node == vn
                            }
                            (Target::Text(t), Value::Str(sv)) => t == sv,
                            _ => false,
                        }
                });
                if is_instance {
                    vec![env]
                } else {
                    vec![]
                }
            }
            Condition::AttrBind { .. } | Condition::Range { .. } => vec![env],
        }
    }
}

struct State {
    base: InstanceBase,
    docs: Vec<Document>,
    doc_urls: Vec<String>,
    url_ids: HashMap<String, DocId>,
    /// URLs that failed to fetch (after the single immediate retry),
    /// pinned for the rest of the run — the same semantics as the plan
    /// executor, so results do not depend on how many fixpoint passes
    /// re-visit a fetching rule.
    failed: HashSet<String>,
}

impl State {
    fn fetch(&mut self, web: &dyn WebSource, url: &str, cap: usize) -> Option<DocId> {
        if let Some(&id) = self.url_ids.get(url) {
            return Some(id);
        }
        if self.failed.contains(url) {
            return None;
        }
        if self.docs.len() >= cap {
            return None;
        }
        let Some(html) = web.fetch(url).or_else(|| web.fetch(url)) else {
            self.failed.insert(url.to_string());
            return None;
        };
        let doc = lixto_html::parse(&html);
        let id = DocId(self.docs.len() as u32);
        self.docs.push(doc);
        self.doc_urls.push(url.to_string());
        self.url_ids.insert(url.to_string(), id);
        Some(id)
    }
}

/// Does a node satisfy a single-step delimiter path (tag test of the last
/// step plus attribute conditions)? Used by `subsq` start/end delimiters.
fn member_matches(doc: &Document, n: NodeId, path: &ElementPath) -> bool {
    let Some(last) = path.steps.last() else {
        return true;
    };
    if !tag_matches(doc, n, &last.tag) {
        return false;
    }
    path.attrs.iter().all(|c| check_attr(doc, n, c).is_some())
}

/// The forest context of a target: (document, roots). For nodes the roots
/// are the children; for sequences, the members.
pub(crate) fn forest_of(t: &Target, docs: &[Document]) -> Option<(DocId, Vec<NodeId>)> {
    match t {
        Target::Node { doc, node } => {
            let d = &docs[doc.0 as usize];
            Some((*doc, d.children(*node).collect()))
        }
        Target::NodeSeq { doc, nodes } => Some((*doc, nodes.clone())),
        Target::Text(_) => None,
    }
}

/// Text content of a target.
pub(crate) fn target_text(t: &Target, docs: &[Document]) -> String {
    match t {
        Target::Node { doc, node } => docs[doc.0 as usize].text_content(*node),
        Target::NodeSeq { doc, nodes } => {
            let d = &docs[doc.0 as usize];
            nodes.iter().map(|&n| d.text_content(n)).collect()
        }
        Target::Text(s) => s.clone(),
    }
}

/// (preorder start, subtree end) of a target — used for distances.
pub(crate) fn target_span(t: &Target, doc: &Document, expected: DocId) -> Option<(usize, usize)> {
    match t {
        Target::Node { doc: d, node } if *d == expected => Some(node_span(doc, *node)),
        Target::NodeSeq { doc: d, nodes } if *d == expected => {
            let first = nodes.first()?;
            let last = nodes.last()?;
            Some((
                doc.order().pre(*first) as usize,
                doc.order().subtree_range(*last).1,
            ))
        }
        _ => None,
    }
}

pub(crate) fn node_span(doc: &Document, n: NodeId) -> (usize, usize) {
    let (s, e) = doc.order().subtree_range(n);
    (s, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AttrMode;
    use crate::web::SinglePage;

    fn rule(
        pattern: &str,
        parent: ParentSpec,
        extraction: Extraction,
        conditions: Vec<Condition>,
    ) -> ElogRule {
        ElogRule {
            pattern: pattern.into(),
            parent,
            extraction,
            conditions,
        }
    }

    fn page(html: &str) -> SinglePage {
        SinglePage {
            url: "http://test/".into(),
            html: html.into(),
        }
    }

    fn doc_parent() -> ParentSpec {
        ParentSpec::Document(UrlExpr::Const("http://test/".into()))
    }

    #[test]
    fn subelem_with_conditions() {
        let web = page(
            "<body><table><tr><td>item</td></tr></table>\
             <table><tr><td><a href='u'>D1</a></td><td>$ 10</td></tr></table><hr></body>",
        );
        let program = ElogProgram {
            rules: vec![
                rule("page", doc_parent(), Extraction::Specialize, vec![]),
                rule(
                    "desc",
                    ParentSpec::Pattern("page".into()),
                    Extraction::Subelem(ElementPath::anywhere("td").with_attr(
                        "elementtext",
                        "D",
                        AttrMode::Substr,
                    )),
                    vec![],
                ),
            ],
        };
        let result = Extractor::new(program, &web).run();
        assert_eq!(result.texts_of("desc"), vec!["D1"]);
    }

    #[test]
    fn probe_counts_rule_invocations_and_matches() {
        let web = page(
            "<body><table><tr><td>item</td></tr></table>\
             <table><tr><td><a href='u'>D1</a></td><td>$ 10</td></tr></table><hr></body>",
        );
        let program = ElogProgram {
            rules: vec![
                rule("page", doc_parent(), Extraction::Specialize, vec![]),
                rule(
                    "cell",
                    ParentSpec::Pattern("page".into()),
                    Extraction::Subelem(ElementPath::anywhere("td")),
                    vec![],
                ),
            ],
        };
        let stats = std::sync::Arc::new(lixto_obs::RuleStats::new(vec![
            "page".to_string(),
            "cell".to_string(),
        ]));
        let probe = crate::ExecProbe::new(Some(stats.clone()));
        let plan = std::sync::Arc::new(
            WrapperPlan::compile(&program, &ConceptRegistry::builtin()).unwrap(),
        );
        let traced = Extractor::from_plan(plan.clone(), &web)
            .with_probe(&probe)
            .run();
        // The probe must not change results.
        let plain = Extractor::from_plan(plan, &web).run();
        assert_eq!(traced.base.instances, plain.base.instances);

        let snap = stats.snapshot();
        // Total matches across rules equals the instance count, and the
        // probe saw the entry fetch + parse.
        let matched: u64 = snap.iter().map(|r| r.matches).sum();
        assert_eq!(matched, traced.base.len() as u64);
        assert!(snap.iter().all(|r| r.invocations >= 1));
        assert_eq!(snap[1].matches, 3); // three <td> cells
        assert!(probe.fetch_ns() > 0);
        assert!(probe.parse_ns() > 0);
    }

    #[test]
    fn before_and_after_distances() {
        let web = page("<body><h1>head</h1><p>target</p><hr></body>");
        // p immediately after h1 (distance 0) and immediately before hr.
        let program = ElogProgram {
            rules: vec![rule(
                "x",
                doc_parent(),
                Extraction::Subelem(ElementPath::anywhere("p")),
                vec![
                    Condition::Before {
                        path: ElementPath::anywhere("h1"),
                        min: 0,
                        max: 0,
                        bind: None,
                        negated: false,
                    },
                    Condition::After {
                        path: ElementPath::anywhere("hr"),
                        min: 0,
                        max: 0,
                        bind: None,
                        negated: false,
                    },
                ],
            )],
        };
        let result = Extractor::new(program, &web).run();
        assert_eq!(result.texts_of("x"), vec!["target"]);
    }

    #[test]
    fn notbefore_excludes() {
        let web = page("<body><h1>h</h1><p>a</p><p>b</p></body>");
        // Select p's NOT immediately preceded by an h1 (only "b": "a"'s
        // subtree starts right after h1 ends).
        let program = ElogProgram {
            rules: vec![rule(
                "x",
                doc_parent(),
                Extraction::Subelem(ElementPath::anywhere("p")),
                vec![Condition::Before {
                    path: ElementPath::anywhere("h1"),
                    min: 0,
                    max: 0,
                    bind: None,
                    negated: true,
                }],
            )],
        };
        let result = Extractor::new(program, &web).run();
        assert_eq!(result.texts_of("x"), vec!["b"]);
    }

    #[test]
    fn specialization_rule_filters_parent() {
        let web = page(
            "<body><table bgcolor='green'><tr><td>g</td></tr></table>\
             <table><tr><td>w</td></tr></table></body>",
        );
        let program = ElogProgram {
            rules: vec![
                rule(
                    "table",
                    doc_parent(),
                    Extraction::Subelem(ElementPath::anywhere("table")),
                    vec![],
                ),
                // greentable(S, X) ← table(S, X), attribute condition — a
                // specialization (footnote 6), here via Contains on self.
                rule(
                    "greentable",
                    ParentSpec::Pattern("table".into()),
                    Extraction::Specialize,
                    vec![Condition::Contains {
                        path: ElementPath {
                            steps: vec![],
                            attrs: vec![],
                        },
                        negated: false,
                    }],
                ),
            ],
        };
        // Contains with an empty path matches the forest roots, i.e. the
        // children — always true; instead filter green via the pattern:
        let mut program = program;
        program.rules[1].extraction = Extraction::Specialize;
        program.rules[1].conditions = vec![Condition::Contains {
            path: ElementPath::anywhere("td").with_attr("elementtext", "g", AttrMode::Exact),
            negated: false,
        }];
        let result = Extractor::new(program, &web).run();
        assert_eq!(result.texts_of("greentable"), vec!["g"]);
        assert_eq!(result.texts_of("table").len(), 2);
    }

    #[test]
    fn subtext_binds_and_concept_checks() {
        let web = page("<body><td>price: $ 10.50 (3 bids)</td></body>");
        let program = ElogProgram {
            rules: vec![
                rule(
                    "cell",
                    doc_parent(),
                    Extraction::Subelem(ElementPath::anywhere("td")),
                    vec![],
                ),
                rule(
                    "currency",
                    ParentSpec::Pattern("cell".into()),
                    Extraction::Subtext(r"\var[Y](\$|EUR|DM)".into()),
                    vec![Condition::Concept {
                        concept: "isCurrency".into(),
                        var: "Y".into(),
                        negated: false,
                    }],
                ),
            ],
        };
        let result = Extractor::new(program, &web).run();
        assert_eq!(result.texts_of("currency"), vec!["$"]);
    }

    #[test]
    fn crawling_follows_links() {
        let mut web = crate::web::StaticWeb::new();
        web.put(
            "http://start/",
            "<body><a href='http://page2/'>next</a><p>first</p></body>",
        );
        web.put("http://page2/", "<body><p>second</p></body>");
        let program = ElogProgram {
            rules: vec![
                rule(
                    "page",
                    ParentSpec::Document(UrlExpr::Const("http://start/".into())),
                    Extraction::Specialize,
                    vec![],
                ),
                rule(
                    "link",
                    ParentSpec::Pattern("page".into()),
                    Extraction::Subelem(ElementPath::anywhere("a")),
                    vec![],
                ),
                rule(
                    "page",
                    ParentSpec::Pattern("link".into()),
                    Extraction::Document(UrlExpr::Var("U".into())),
                    vec![Condition::AttrBind {
                        attr: "href".into(),
                        var: "U".into(),
                    }],
                ),
                rule(
                    "para",
                    ParentSpec::Pattern("page".into()),
                    Extraction::Subelem(ElementPath::anywhere("p")),
                    vec![],
                ),
            ],
        };
        let result = Extractor::new(program, &web).run();
        let mut texts = result.texts_of("para");
        texts.sort();
        assert_eq!(texts, vec!["first", "second"]);
        assert_eq!(result.docs.len(), 2);
    }

    #[test]
    fn range_criterion() {
        let web = page("<ul><li>1</li><li>2</li><li>3</li><li>4</li></ul>");
        let program = ElogProgram {
            rules: vec![
                rule("page", doc_parent(), Extraction::Specialize, vec![]),
                rule(
                    "item",
                    ParentSpec::Pattern("page".into()),
                    Extraction::Subelem(ElementPath::anywhere("li")),
                    vec![Condition::Range { from: 2, to: 3 }],
                ),
            ],
        };
        let result = Extractor::new(program, &web).run();
        assert_eq!(result.texts_of("item"), vec!["2", "3"]);
    }

    #[test]
    fn pattern_reference_with_binding() {
        // bids-like: td cells that are within distance of a price cell.
        let web = page("<table><tr><td>Desc</td><td>$ 5</td><td>7</td></tr></table>");
        let mut program = ElogProgram::default();
        program.rules.push(rule(
            "row",
            doc_parent(),
            Extraction::Subelem(ElementPath::anywhere("tr")),
            vec![],
        ));
        program.rules.push(rule(
            "price",
            ParentSpec::Pattern("row".into()),
            Extraction::Subelem(ElementPath::children(&["td"]).with_attr(
                "elementtext",
                r"\var[Y](\$|EUR)",
                AttrMode::Regvar,
            )),
            vec![],
        ));
        program.rules.push(rule(
            "bids",
            ParentSpec::Pattern("row".into()),
            Extraction::Subelem(ElementPath::children(&["td"])),
            vec![
                Condition::Before {
                    path: ElementPath::children(&["td"]),
                    min: 0,
                    max: 5,
                    bind: Some("Y".into()),
                    negated: false,
                },
                Condition::PatternRef {
                    pattern: "price".into(),
                    var: "Y".into(),
                },
            ],
        ));
        let result = Extractor::new(program, &web).run();
        assert_eq!(result.texts_of("bids"), vec!["7"]);
    }

    #[test]
    fn subsq_maximal_sequences() {
        let web = page(
            "<body><table><tr><td>item</td></tr></table>\
             <table><tr><td>1</td></tr></table>\
             <table><tr><td>2</td></tr></table>\
             <hr></body>",
        );
        let program = ElogProgram {
            rules: vec![rule(
                "tableseq",
                doc_parent(),
                Extraction::Subsq {
                    context: ElementPath::children(&["body"]),
                    start: ElementPath::children(&["table"]),
                    end: ElementPath::children(&["table"]),
                },
                vec![
                    Condition::Before {
                        path: ElementPath::anywhere("table").with_attr(
                            "elementtext",
                            "item",
                            AttrMode::Substr,
                        ),
                        min: 0,
                        max: 0,
                        bind: None,
                        negated: false,
                    },
                    Condition::After {
                        path: ElementPath::anywhere("hr"),
                        min: 0,
                        max: 0,
                        bind: None,
                        negated: false,
                    },
                ],
            )],
        };
        let result = Extractor::new(program, &web).run();
        let seqs = result.base.of_pattern("tableseq");
        assert_eq!(seqs.len(), 1);
        match &result.base.instances[seqs[0]].target {
            Target::NodeSeq { nodes, .. } => assert_eq!(nodes.len(), 2),
            other => panic!("expected sequence, got {other:?}"),
        }
    }

    #[test]
    fn result_clone_eq_and_patterns() {
        let web = crate::web::SinglePage {
            url: "http://p/".into(),
            html: "<html><body><ul><li><b>x</b></li><li><b>y</b></li></ul></body></html>".into(),
        };
        let program = crate::parser::parse_program(
            r#"item(S, X) :- document("http://p/", S), subelem(S, (?.li, []), X).
               name(S, X) :- item(_, S), subelem(S, (.b, []), X)."#,
        )
        .unwrap();
        let a = Extractor::new(program.clone(), &web).run();
        let b = a.clone();
        assert_eq!(a, b);
        // A fresh run is equal too (deterministic evaluation).
        assert_eq!(a, Extractor::new(program, &web).run());
        assert_eq!(a.patterns(), ["item".to_string(), "name".to_string()]);
    }
}
