//! Pretty-printing Elog programs back to the textual dialect.

use crate::ast::{
    AttrMode, Condition, ElementPath, ElogRule, Extraction, ParentSpec, TagTest, UrlExpr,
};

/// Render a path.
pub fn path_to_string(p: &ElementPath) -> String {
    let mut s = String::from("(");
    for (i, step) in p.steps.iter().enumerate() {
        match (i == 0, step.descend) {
            (true, true) => s.push_str("?."),
            (true, false) => s.push('.'),
            (false, true) => s.push_str(".?."),
            (false, false) => s.push('.'),
        }
        match &step.tag {
            TagTest::Name(n) => s.push_str(n),
            TagTest::Any => s.push('*'),
            TagTest::Regex(r) => {
                s.push('/');
                s.push_str(r);
                s.push('/');
            }
        }
    }
    s.push_str(", [");
    for (i, a) in p.attrs.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let mode = match a.mode {
            AttrMode::Exact => "exact",
            AttrMode::Substr => "substr",
            AttrMode::Regvar => "regvar",
        };
        s.push_str(&format!("({}, \"{}\", {mode})", a.attr, a.pattern));
    }
    s.push_str("])");
    s
}

/// Render one rule.
pub fn rule_to_string(r: &ElogRule) -> String {
    let mut parts: Vec<String> = Vec::new();
    parts.push(match &r.parent {
        ParentSpec::Pattern(p) => format!("{p}(_, S)"),
        ParentSpec::Document(UrlExpr::Const(u)) => format!("document(\"{u}\", S)"),
        ParentSpec::Document(UrlExpr::Var(v)) => format!("document({v}, S)"),
    });
    match &r.extraction {
        Extraction::Subelem(p) => parts.push(format!("subelem(S, {}, X)", path_to_string(p))),
        Extraction::Subsq {
            context,
            start,
            end,
        } => parts.push(format!(
            "subsq(S, {}, {}, {}, X)",
            path_to_string(context),
            path_to_string(start),
            path_to_string(end)
        )),
        Extraction::Subtext(t) => parts.push(format!("subtext(S, \"{t}\", X)")),
        Extraction::Subatt(a) => parts.push(format!("subatt(S, {a}, X)")),
        Extraction::Document(UrlExpr::Const(u)) => parts.push(format!("document(\"{u}\", X)")),
        Extraction::Document(UrlExpr::Var(v)) => parts.push(format!("document({v}, X)")),
        Extraction::Specialize => {}
    }
    for c in &r.conditions {
        parts.push(match c {
            Condition::Before {
                path,
                min,
                max,
                bind,
                negated,
            } => format!(
                "{}(S, X, {}, {min}, {max}, {}, _)",
                if *negated { "notbefore" } else { "before" },
                path_to_string(path),
                bind.as_deref().unwrap_or("_")
            ),
            Condition::After {
                path,
                min,
                max,
                bind,
                negated,
            } => format!(
                "{}(S, X, {}, {min}, {max}, {}, _)",
                if *negated { "notafter" } else { "after" },
                path_to_string(path),
                bind.as_deref().unwrap_or("_")
            ),
            Condition::Contains { path, negated } => format!(
                "{}(X, {})",
                if *negated { "notcontains" } else { "contains" },
                path_to_string(path)
            ),
            Condition::FirstSubtree { path } => {
                format!("firstsubtree(S, X, {})", path_to_string(path))
            }
            Condition::Concept {
                concept,
                var,
                negated,
            } => {
                if *negated {
                    format!("not{}({var})", capitalize(concept))
                } else {
                    format!("{concept}({var})")
                }
            }
            Condition::Comparison {
                left,
                op,
                right,
                right_is_literal,
            } => {
                let name = match op.as_str() {
                    "<" => "lt",
                    "<=" => "le",
                    ">" => "gt",
                    ">=" => "ge",
                    "=" => "eq",
                    _ => "ne",
                };
                if *right_is_literal {
                    format!("{name}({left}, \"{right}\")")
                } else {
                    format!("{name}({left}, {right})")
                }
            }
            Condition::PatternRef { pattern, var } => format!("{pattern}(_, {var})"),
            Condition::AttrBind { attr, var } => format!("attrbind(S, {attr}, {var})"),
            Condition::Range { from, to } => format!("range({from}, {to})"),
        });
    }
    format!("{}(S, X) :- {}.", r.pattern, parts.join(", "))
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_program;

    #[test]
    fn roundtrip_through_parser() {
        let src = r#"
        rec(S, X) :- page(_, S), subelem(S, (?.table, [(bgcolor, "green", exact)]), X),
                     before(S, X, (?.h1, []), 0, 5, Y, _), notcontains(X, (.blink, [])),
                     isCurrency(Y), range(1, 10).
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2, "printed:\n{printed}");
    }

    #[test]
    fn figure5_roundtrip() {
        let p1 = parse_program(crate::parser::EBAY_PROGRAM).unwrap();
        let printed = p1.to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2, "printed:\n{printed}");
    }
}
