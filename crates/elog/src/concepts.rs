//! Concept conditions — Section 3.3(c).
//!
//! "Concept condition predicates subsume semantic concepts like
//! isCountry(X) or isCurrency(X) and syntactic ones like isDate(X) […]
//! Some predicates are built-in to enrich the system, while more can be
//! interactively added. Syntactic predicates are created as regular
//! expressions, whereas semantic ones refer to an ontological database."

use std::collections::{HashMap, HashSet};

use lixto_regexlite::Regex;

/// A concept definition.
#[derive(Debug, Clone)]
pub enum Concept {
    /// Syntactic: a regular expression the whole (trimmed) value must
    /// match somewhere.
    Syntactic(String),
    /// Semantic: membership in an ontology table (case-insensitive).
    Semantic(HashSet<String>),
}

/// Registry of named concepts.
#[derive(Debug, Clone)]
pub struct ConceptRegistry {
    concepts: HashMap<String, Concept>,
}

impl Default for ConceptRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

impl ConceptRegistry {
    /// The built-in registry: `isCurrency`, `isDate`, `isNumber`,
    /// `isPrice`, `isTime`, `isCountry`, `isCity`.
    pub fn builtin() -> ConceptRegistry {
        let mut r = ConceptRegistry {
            concepts: HashMap::new(),
        };
        r.add_syntactic("isCurrency", r"^(\$|€|£|¥|EUR|USD|GBP|DM|ATS|CHF|Euro)$");
        r.add_syntactic(
            "isDate",
            r"(\d{1,2}[./-]\d{1,2}[./-]\d{2,4})|(\d{4}-\d{2}-\d{2})",
        );
        r.add_syntactic("isTime", r"\d{1,2}:\d{2}");
        r.add_syntactic("isNumber", r"^-?\d+(\.\d+)?$");
        r.add_syntactic("isPrice", r"(\$|€|£|EUR|USD|DM)\s*\d+([.,]\d{2})?");
        r.add_semantic(
            "isCountry",
            &[
                "austria",
                "germany",
                "italy",
                "france",
                "spain",
                "switzerland",
                "usa",
                "united states",
                "uk",
                "united kingdom",
                "japan",
                "china",
            ],
        );
        r.add_semantic(
            "isCity",
            &[
                "vienna", "graz", "linz", "salzburg", "berlin", "munich", "paris", "rome",
                "london", "new york", "tokyo",
            ],
        );
        r
    }

    /// An empty registry (for tests).
    pub fn empty() -> ConceptRegistry {
        ConceptRegistry {
            concepts: HashMap::new(),
        }
    }

    /// Register a syntactic (regex) concept.
    pub fn add_syntactic(&mut self, name: &str, regex: &str) {
        self.concepts
            .insert(name.to_string(), Concept::Syntactic(regex.to_string()));
    }

    /// Register a semantic (ontology) concept.
    pub fn add_semantic(&mut self, name: &str, members: &[&str]) {
        self.concepts.insert(
            name.to_string(),
            Concept::Semantic(members.iter().map(|m| m.to_lowercase()).collect()),
        );
    }

    /// Is the concept defined?
    pub fn has(&self, name: &str) -> bool {
        self.concepts.contains_key(name)
    }

    /// The definition of `name`, if registered (plan compilation bakes
    /// the definition into the compiled wrapper).
    pub fn get(&self, name: &str) -> Option<&Concept> {
        self.concepts.get(name)
    }

    /// Every registered concept, sorted by name (deterministic — used
    /// for fingerprinting a wrapper's full semantic identity).
    pub fn entries(&self) -> Vec<(&str, &Concept)> {
        let mut out: Vec<(&str, &Concept)> =
            self.concepts.iter().map(|(n, c)| (n.as_str(), c)).collect();
        out.sort_by_key(|(n, _)| *n);
        out
    }

    /// Test a value against a concept. Unknown concepts never hold.
    pub fn holds(&self, name: &str, value: &str) -> bool {
        match self.concepts.get(name) {
            Some(Concept::Syntactic(re)) => Regex::with_options(re, true)
                .map(|r| r.is_match(value.trim()))
                .unwrap_or(false),
            Some(Concept::Semantic(set)) => set.contains(&value.trim().to_lowercase()),
            None => false,
        }
    }
}

/// Comparison support: values are compared as dates (`YYYY-MM-DD`,
/// `D.M.YYYY`, `D/M/YYYY`), else as numbers, else as strings.
pub fn compare_values(left: &str, op: &str, right: &str) -> bool {
    use std::cmp::Ordering;
    let ord = if let (Some(a), Some(b)) = (parse_date(left), parse_date(right)) {
        a.cmp(&b)
    } else if let (Ok(a), Ok(b)) = (left.trim().parse::<f64>(), right.trim().parse::<f64>()) {
        a.partial_cmp(&b).unwrap_or(Ordering::Equal)
    } else {
        left.trim().cmp(right.trim())
    };
    match op {
        "<" => ord == Ordering::Less,
        "<=" => ord != Ordering::Greater,
        ">" => ord == Ordering::Greater,
        ">=" => ord != Ordering::Less,
        "=" => ord == Ordering::Equal,
        "!=" => ord != Ordering::Equal,
        _ => false,
    }
}

/// Parse a date into (year, month, day).
pub fn parse_date(s: &str) -> Option<(u32, u32, u32)> {
    let s = s.trim();
    let iso = Regex::new(r"^(\d{4})-(\d{2})-(\d{2})$").ok()?;
    if let Some(c) = iso.captures(s) {
        return Some((
            c.get(1)?.text.parse().ok()?,
            c.get(2)?.text.parse().ok()?,
            c.get(3)?.text.parse().ok()?,
        ));
    }
    let eu = Regex::new(r"^(\d{1,2})[./](\d{1,2})[./](\d{2,4})$").ok()?;
    if let Some(c) = eu.captures(s) {
        let (d, m, y): (u32, u32, u32) = (
            c.get(1)?.text.parse().ok()?,
            c.get(2)?.text.parse().ok()?,
            c.get(3)?.text.parse().ok()?,
        );
        let y = if y < 100 { y + 2000 } else { y };
        return Some((y, m, d));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_currency_matches_figure_5_examples() {
        // "isCurrency — which matches strings like $, DM, Euro, etc."
        let r = ConceptRegistry::builtin();
        for v in ["$", "DM", "Euro", "EUR", "€"] {
            assert!(r.holds("isCurrency", v), "{v}");
        }
        assert!(!r.holds("isCurrency", "banana"));
    }

    #[test]
    fn dates_and_numbers() {
        let r = ConceptRegistry::builtin();
        assert!(r.holds("isDate", "14.06.2004"));
        assert!(r.holds("isDate", "2004-06-14"));
        assert!(!r.holds("isDate", "not a date"));
        assert!(r.holds("isNumber", "42"));
        assert!(r.holds("isNumber", "-3.5"));
        assert!(!r.holds("isNumber", "x42"));
    }

    #[test]
    fn semantic_membership_case_insensitive() {
        let r = ConceptRegistry::builtin();
        assert!(r.holds("isCountry", "Austria"));
        assert!(r.holds("isCountry", "AUSTRIA"));
        assert!(!r.holds("isCountry", "Atlantis"));
        assert!(r.holds("isCity", "Vienna"));
    }

    #[test]
    fn unknown_concept_never_holds() {
        let r = ConceptRegistry::builtin();
        assert!(!r.holds("isUnicorn", "anything"));
    }

    #[test]
    fn user_defined_concepts() {
        let mut r = ConceptRegistry::empty();
        r.add_syntactic("isFlightNo", r"^[A-Z]{2}\d{3,4}$");
        assert!(r.holds("isFlightNo", "OS123"));
        assert!(!r.holds("isFlightNo", "123OS"));
    }

    #[test]
    fn comparisons() {
        assert!(compare_values("3", "<", "10")); // numeric, not lexicographic
        assert!(compare_values("2.5", "<=", "2.5"));
        assert!(compare_values("14.06.2004", "<", "2004-06-15"));
        assert!(compare_values("abc", "<", "abd"));
        assert!(compare_values("5", "!=", "6"));
        assert!(!compare_values("5", "bogus-op", "6"));
    }
}
